//! # SharedDB
//!
//! A Rust reproduction of **"SharedDB: Killing One Thousand Queries With One
//! Stone"** (Giannikis, Alonso, Kossmann — VLDB 2012).
//!
//! SharedDB batches queries and updates and executes them through a single,
//! always-on *global query plan* of shared operators, which bounds the total
//! work independently of the number of concurrent queries and therefore gives
//! robust response-time guarantees under high load.
//!
//! This umbrella crate re-exports the member crates:
//!
//! * [`common`] — values, schemas, tuples, and the NF² data-query model.
//! * [`storage`] — the Crescando-style storage manager (ClockScan shared
//!   scans, B-tree indexes, snapshot isolation, write-ahead logging).
//! * [`core`] — shared operators, the global plan, and the batched runtime.
//! * [`cluster`] — replicated engines behind one endpoint: statement-type
//!   routing, hot-operator replication, partial-result merging (§4.5).
//! * [`sql`] — the SQL-subset front end and the global-plan compiler.
//! * [`baseline`] — query-at-a-time baseline engines used for comparison.
//! * [`tpcw`] — the TPC-W benchmark used in the paper's evaluation.
//! * [`server`] — the TCP network frontend feeding client sessions into the
//!   shared batch engine (wire protocol, admission control).
//! * [`client`] — the blocking client library (pipelining, typed results).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough: create tables,
//! register prepared statements, start the engine, and run hundreds of
//! concurrent parameterised queries through one shared plan.

pub use shareddb_baseline as baseline;
pub use shareddb_client as client;
pub use shareddb_cluster as cluster;
pub use shareddb_common as common;
pub use shareddb_core as core;
pub use shareddb_server as server;
pub use shareddb_sql as sql;
pub use shareddb_storage as storage;
pub use shareddb_tpcw as tpcw;

pub use shareddb_common::{Error, Result};

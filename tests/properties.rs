//! Property-based tests over the core data structures and invariants:
//!
//! * the NF² query-set algebra (union / intersection laws),
//! * the B+-tree index against a model (`BTreeMap`),
//! * the equivalence of the *shared* join/sort/top-N/group-by execution with
//!   per-query execution — the central correctness claim of the paper: routing
//!   a single big shared operator by query id returns exactly what each query
//!   would have computed on its own.

use proptest::prelude::*;
use shareddb::common::agg::AggregateFunction;
use shareddb::common::{QTuple, QueryId, QuerySet, SortKey, Tuple, Value};
use shareddb::core::batch::Activation;
use shareddb::core::operators::{execute_operator, ExecContext};
use shareddb::core::plan::{AggregateSpec, OperatorSpec};
use shareddb::storage::table::RowId;
use shareddb::storage::{BTreeIndex, Catalog};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

// ---------------------------------------------------------------------------
// QuerySet laws
// ---------------------------------------------------------------------------

fn qs(ids: &[u32]) -> QuerySet {
    ids.iter().copied().collect()
}

proptest! {
    #[test]
    fn queryset_union_and_intersection_match_btreeset(a in proptest::collection::vec(0u32..200, 0..40),
                                                      b in proptest::collection::vec(0u32..200, 0..40)) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let qa = qs(&a);
        let qb = qs(&b);
        let union: Vec<u32> = qa.union(&qb).iter().map(|q| q.raw()).collect();
        let expect_union: Vec<u32> = sa.union(&sb).copied().collect();
        prop_assert_eq!(union, expect_union);
        let inter: Vec<u32> = qa.intersect(&qb).iter().map(|q| q.raw()).collect();
        let expect_inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(&inter, &expect_inter);
        prop_assert_eq!(qa.intersects(&qb), !expect_inter.is_empty());
        // Commutativity.
        prop_assert_eq!(qa.intersect(&qb), qb.intersect(&qa));
        prop_assert_eq!(qa.union(&qb), qb.union(&qa));
    }

    #[test]
    fn queryset_insert_remove_contains(ops in proptest::collection::vec((0u32..100, any::<bool>()), 0..200)) {
        let mut set = QuerySet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(QueryId(id)), model.insert(id));
            } else {
                prop_assert_eq!(set.remove(QueryId(id)), model.remove(&id));
            }
        }
        let got: Vec<u32> = set.iter().map(|q| q.raw()).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// B+-tree vs model
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec((0i64..500, 0u64..50, any::<bool>()), 1..400),
                           lo in 0i64..500, len in 0i64..100) {
        let mut tree = BTreeIndex::new();
        let mut model: BTreeMap<i64, BTreeSet<u64>> = BTreeMap::new();
        for (key, row, insert) in ops {
            if insert {
                tree.insert(Value::Int(key), RowId(row));
                model.entry(key).or_default().insert(row);
            } else {
                tree.remove(&Value::Int(key), RowId(row));
                if let Some(set) = model.get_mut(&key) {
                    set.remove(&row);
                    if set.is_empty() {
                        model.remove(&key);
                    }
                }
            }
        }
        tree.check_invariants().unwrap();
        // Point lookups.
        for (key, rows) in &model {
            let got: BTreeSet<u64> = tree.get(&Value::Int(*key)).iter().map(|r| r.0).collect();
            prop_assert_eq!(&got, rows);
        }
        prop_assert_eq!(tree.entry_count(), model.values().map(|s| s.len()).sum::<usize>());
        // Range scan.
        let hi = lo + len;
        let got: Vec<i64> = tree
            .range(Bound::Included(&Value::Int(lo)), Bound::Excluded(&Value::Int(hi)))
            .into_iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        let expect: Vec<i64> = model
            .range(lo..hi)
            .flat_map(|(k, rows)| std::iter::repeat_n(*k, rows.len()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// Shared execution == per-query execution
// ---------------------------------------------------------------------------

/// Strategy: a small relation where every row is subscribed to a random
/// subset of `queries` queries.
fn annotated_rows(queries: u32) -> impl Strategy<Value = Vec<(i64, i64, Vec<u32>)>> {
    proptest::collection::vec(
        (
            0i64..20,
            0i64..50,
            proptest::collection::vec(0..queries, 0..queries as usize),
        ),
        0..60,
    )
}

fn to_qtuples(rows: &[(i64, i64, Vec<u32>)]) -> Vec<QTuple> {
    rows.iter()
        .map(|(k, v, subs)| {
            QTuple::new(
                Tuple::new(vec![Value::Int(*k), Value::Int(*v)]),
                subs.iter().map(|q| QueryId(*q + 1)).collect(),
            )
        })
        .collect()
}

fn rows_for_query(out: &[QTuple], q: u32) -> Vec<Tuple> {
    out.iter()
        .filter(|t| t.queries.contains(QueryId(q + 1)))
        .map(|t| t.tuple.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn shared_join_equals_per_query_join(left in annotated_rows(4), right in annotated_rows(4)) {
        let catalog = Catalog::new();
        let ctx = ExecContext { catalog: &catalog, snapshot: catalog.oracle().read_ts() };
        let spec = OperatorSpec::HashJoin { build_key: 0, probe_key: 0 };
        let all: Vec<(QueryId, Activation)> =
            (0..4u32).map(|q| (QueryId(q + 1), Activation::Participate)).collect();
        let shared = execute_operator(&spec, &all, vec![to_qtuples(&left), to_qtuples(&right)], &ctx).unwrap();
        for q in 0..4u32 {
            // Per-query execution: restrict the inputs to query q only.
            let lq: Vec<QTuple> = to_qtuples(&left)
                .into_iter()
                .filter(|t| t.queries.contains(QueryId(q + 1)))
                .map(|t| QTuple::new(t.tuple, QuerySet::singleton(QueryId(q + 1))))
                .collect();
            let rq: Vec<QTuple> = to_qtuples(&right)
                .into_iter()
                .filter(|t| t.queries.contains(QueryId(q + 1)))
                .map(|t| QTuple::new(t.tuple, QuerySet::singleton(QueryId(q + 1))))
                .collect();
            let solo = execute_operator(
                &spec,
                &[(QueryId(q + 1), Activation::Participate)],
                vec![lq, rq],
                &ctx,
            )
            .unwrap();
            let mut shared_rows = rows_for_query(&shared, q);
            let mut solo_rows = rows_for_query(&solo, q);
            shared_rows.sort();
            solo_rows.sort();
            prop_assert_eq!(shared_rows, solo_rows, "query {} differs", q);
        }
    }

    #[test]
    fn shared_topn_equals_per_query_topn(input in annotated_rows(3), limit in 1usize..8) {
        let catalog = Catalog::new();
        let ctx = ExecContext { catalog: &catalog, snapshot: catalog.oracle().read_ts() };
        let spec = OperatorSpec::TopN { keys: vec![SortKey::desc(1), SortKey::asc(0)] };
        let all: Vec<(QueryId, Activation)> =
            (0..3u32).map(|q| (QueryId(q + 1), Activation::TopN { limit })).collect();
        let shared = execute_operator(&spec, &all, vec![to_qtuples(&input)], &ctx).unwrap();
        for q in 0..3u32 {
            let iq: Vec<QTuple> = to_qtuples(&input)
                .into_iter()
                .filter(|t| t.queries.contains(QueryId(q + 1)))
                .map(|t| QTuple::new(t.tuple, QuerySet::singleton(QueryId(q + 1))))
                .collect();
            let solo = execute_operator(
                &spec,
                &[(QueryId(q + 1), Activation::TopN { limit })],
                vec![iq],
                &ctx,
            )
            .unwrap();
            // Top-N results are ordered: compare in order.
            prop_assert_eq!(rows_for_query(&shared, q), rows_for_query(&solo, q));
        }
    }

    #[test]
    fn shared_group_by_equals_per_query_group_by(input in annotated_rows(3)) {
        let catalog = Catalog::new();
        let ctx = ExecContext { catalog: &catalog, snapshot: catalog.oracle().read_ts() };
        let spec = OperatorSpec::GroupBy {
            group_columns: vec![0],
            aggregates: vec![
                AggregateSpec { function: AggregateFunction::Sum, column: 1, output_name: "S".into() },
                AggregateSpec { function: AggregateFunction::Count, column: 1, output_name: "C".into() },
            ],
        };
        let all: Vec<(QueryId, Activation)> =
            (0..3u32).map(|q| (QueryId(q + 1), Activation::Having { predicate: None, partial: false })).collect();
        let shared = execute_operator(&spec, &all, vec![to_qtuples(&input)], &ctx).unwrap();
        for q in 0..3u32 {
            let iq: Vec<QTuple> = to_qtuples(&input)
                .into_iter()
                .filter(|t| t.queries.contains(QueryId(q + 1)))
                .map(|t| QTuple::new(t.tuple, QuerySet::singleton(QueryId(q + 1))))
                .collect();
            let solo = execute_operator(
                &spec,
                &[(QueryId(q + 1), Activation::Having { predicate: None, partial: false })],
                vec![iq],
                &ctx,
            )
            .unwrap();
            let mut shared_rows = rows_for_query(&shared, q);
            let mut solo_rows = rows_for_query(&solo, q);
            shared_rows.sort();
            solo_rows.sort();
            prop_assert_eq!(shared_rows, solo_rows, "query {} differs", q);
        }
    }
}

// ---------------------------------------------------------------------------
// Storage: snapshot isolation under random update batches
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn old_snapshots_are_immutable(deletes in proptest::collection::vec(0i64..100, 1..20)) {
        use shareddb::common::{DataType, Expr};
        use shareddb::storage::{TableDef, UpdateOp};
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("T")
                    .column("ID", DataType::Int)
                    .column("V", DataType::Int)
                    .primary_key(&["ID"]),
            )
            .unwrap();
        catalog
            .bulk_load("T", (0..100i64).map(|i| shareddb::common::tuple![i, i]).collect())
            .unwrap();
        let before = catalog.oracle().read_ts();
        for key in deletes {
            catalog
                .apply_batch(&[(
                    "T".into(),
                    UpdateOp::Delete { predicate: Expr::col(0).eq(Expr::lit(key)) },
                )])
                .unwrap();
        }
        // The old snapshot still sees all 100 rows, regardless of what was
        // deleted afterwards.
        let table = catalog.table("T").unwrap();
        prop_assert_eq!(table.read().scan(before).count(), 100);
    }
}

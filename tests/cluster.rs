//! Engine-cluster integration tests over the wire: N engine replicas behind
//! one endpoint, statement-type routing, the scatter/merge step (snapshot
//! pinning, off-reactor merging), and the per-replica section of the `Stats`
//! frame — all through the real reactor and client library.

use shareddb::client::Connection;
use shareddb::cluster::{ClusterConfig, ClusterEngine};
use shareddb::common::{tuple, DataType, Expr, Value};
use shareddb::core::plan::{ActivationTemplate, PlanBuilder, StatementSpec, UpdateTemplate};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..300i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    ("allItems", "SELECT * FROM ITEM ORDER BY I_ID"),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
];

fn start_cluster(replicas: usize, replicate: &[&str]) -> Server {
    Server::start_sql(
        catalog(),
        WORKLOAD,
        EngineConfig::default(),
        ServerConfig {
            cluster: ClusterConfig {
                replicas,
                replicate_statements: replicate.iter().map(|s| s.to_string()).collect(),
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The acceptance shape of the PR: N replicas behind one endpoint, hot-type
/// executions spread over the engines, and the per-replica breakdown visible
/// through the `Stats` wire frame.
#[test]
fn replicated_statements_spread_and_stats_show_replicas() {
    let mut server = start_cluster(3, &["getItem"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    for i in 0..96 {
        let outcome = conn.execute(&get_item, &[Value::Int(i)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(i));
    }
    let stats = conn.stats().unwrap();
    assert_eq!(stats.queries, 96);
    assert_eq!(stats.replicas.len(), 3, "stats: {stats:?}");
    let busy = stats.replicas.iter().filter(|r| r.queries > 0).count();
    assert!(
        busy > 1,
        "hash-partitioned routing left replicas idle: {:?}",
        stats.replicas
    );
    let per_replica: u64 = stats.replicas.iter().map(|r| r.queries).sum();
    assert_eq!(per_replica, 96);
    conn.close().unwrap();
    server.shutdown();
}

/// A parameterless ordered statement on a hot route scatters over all
/// replicas with partitioned scans; the merged result that reaches the
/// client over the wire is complete and ordered.
#[test]
fn fanout_merge_is_exact_over_the_wire() {
    let mut server = start_cluster(4, &["allItems"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let all = conn.prepare("allItems").unwrap();
    let outcome = conn.execute(&all, &[]).unwrap();
    let rows = outcome.rows();
    assert_eq!(rows.len(), 300);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64), "merge broke order at {i}");
    }
    // The scatter really used every replica.
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.len(), 4);
    assert!(
        stats.replicas.iter().all(|r| r.queries == 1),
        "stats: {stats:?}"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// Updates pin to the write replica; their effects are visible to statements
/// executing on other replicas (one shared MVCC catalog).
#[test]
fn updates_are_visible_across_replicas() {
    let mut server = start_cluster(2, &["getItem"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let outcome = conn
        .query("INSERT INTO ITEM VALUES (9000, 'clustered book', 1.0)")
        .unwrap();
    assert_eq!(outcome.rows_affected(), 1);
    let get_item = conn.prepare("getItem").unwrap();
    let outcome = conn.execute(&get_item, &[Value::Int(9000)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    assert_eq!(outcome.rows()[0][1], Value::text("clustered book"));
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.iter().map(|r| r.updates).sum::<u64>(), 1);
    assert_eq!(
        stats.replicas[0].updates, 1,
        "update left the write replica"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// Property-style snapshot-pinning check: a writer thread keeps bumping every
/// row's generation column (one UPDATE statement per generation, atomic under
/// group commit), while fanned-out reads scatter over 4 replicas. Every
/// merged result must be a *single-snapshot* view: the full row set with one
/// uniform generation value — exactly what a 1-replica execution would
/// return at some commit point. Before snapshot pinning, each partition read
/// its own replica's batch snapshot and mixed generations freely under this
/// load.
#[test]
fn fanout_under_concurrent_updates_is_single_snapshot_consistent() {
    const ROWS: i64 = 256;
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("G")
                .column("ID", DataType::Int)
                .column("GEN", DataType::Int)
                .primary_key(&["ID"]),
        )
        .unwrap();
    catalog
        .bulk_load("G", (0..ROWS).map(|i| tuple![i, 0i64]).collect())
        .unwrap();
    let catalog = Arc::new(catalog);

    let mut b = PlanBuilder::new(&catalog);
    let scan = b.table_scan("G").unwrap();
    let sort = b
        .sort(scan, vec![shareddb::common::SortKey::asc(0)])
        .unwrap();
    let plan = b.build();
    let mut registry = shareddb::core::StatementRegistry::new();
    registry
        .register(
            StatementSpec::query("snap", sort)
                .activate(
                    scan,
                    ActivationTemplate::Scan {
                        predicate: Expr::lit(true),
                    },
                )
                .activate(sort, ActivationTemplate::Participate),
        )
        .unwrap();
    registry
        .register(StatementSpec::update(
            "tick",
            "G",
            UpdateTemplate::Update {
                assignments: vec![(1, Expr::param(0))],
                predicate: Expr::lit(true),
            },
        ))
        .unwrap();

    let cluster = ClusterEngine::start(
        catalog,
        plan,
        registry,
        EngineConfig::default(),
        ClusterConfig {
            replicas: 4,
            replicate_statements: vec!["snap".into()],
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    let cluster = Arc::new(cluster);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut gen = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                gen += 1;
                cluster.execute_sync("tick", &[Value::Int(gen)]).unwrap();
            }
            gen
        })
    };

    let mut distinct_generations = std::collections::HashSet::new();
    for round in 0..80 {
        let outcome = cluster.execute_sync("snap", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), ROWS as usize, "round {round}: torn row set");
        let generation = rows[0][1].clone();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64), "round {round}: order broken");
            assert_eq!(
                row[1], generation,
                "round {round}: rows from different snapshots in one \
                 fanned-out result (row {i} vs row 0)"
            );
        }
        distinct_generations.insert(format!("{generation:?}"));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let final_gen = writer.join().unwrap();
    assert!(final_gen > 0, "writer never ran");
    assert!(
        distinct_generations.len() > 1,
        "updates never interleaved with the reads — the test exercised \
         nothing (final generation {final_gen})"
    );
}

/// Per-statement cost attribution must be invariant under replication: for
/// point lookups hash-routed over 4 replicas, the cluster-merged
/// (activations, rows) per (operator, statement) pair equals the 1-replica
/// run exactly, and the merge itself is the element-wise sum of the
/// per-replica snapshots. Point lookups only — fanned-out statements
/// multiply activations by the replica count by design.
#[test]
fn attribution_merge_is_replica_count_invariant() {
    use shareddb::core::AttributionEntry;
    use std::collections::BTreeMap;

    fn attributed_work(replicas: usize) -> (Vec<AttributionEntry>, Vec<Vec<AttributionEntry>>) {
        let catalog = catalog();
        let (plan, registry) = shareddb::sql::compile_workload(&catalog, WORKLOAD).unwrap();
        let mut cluster = ClusterEngine::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ClusterConfig {
                replicas,
                replicate_statements: vec!["getItem".into()],
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        for i in 0..64i64 {
            let outcome = cluster
                .execute_sync("getItem", &[Value::Int(i * 3 % 300)])
                .unwrap();
            assert_eq!(outcome.rows().len(), 1);
        }
        let merged = cluster.attribution_stats();
        let per_replica = cluster.replica_attribution_stats();
        cluster.shutdown();
        (merged, per_replica)
    }

    // Busy time is wall clock and differs run to run; the work counters
    // (activations, rows) are deterministic.
    fn work_by_key(entries: &[AttributionEntry]) -> BTreeMap<(String, String), (u64, u64)> {
        let mut map = BTreeMap::new();
        for e in entries {
            let slot = map
                .entry((e.operator.clone(), e.statement.clone()))
                .or_insert((0, 0));
            slot.0 += e.activations;
            slot.1 += e.rows;
        }
        map
    }

    let (merged_one, _) = attributed_work(1);
    let (_, per_replica_four) = attributed_work(4);

    // The merge is exactly the element-wise sum of the replica snapshots —
    // merge the SAME snapshot the replicas reported (idle busy time keeps
    // accruing between two live snapshot calls, so those can't be compared).
    let merged_four = shareddb::core::merge_attribution(&per_replica_four);
    let flattened: Vec<AttributionEntry> = per_replica_four.iter().flatten().cloned().collect();
    assert_eq!(work_by_key(&merged_four), work_by_key(&flattened));
    let merged_busy: u128 = merged_four.iter().map(|e| e.busy.as_nanos()).sum();
    let replica_busy: u128 = flattened.iter().map(|e| e.busy.as_nanos()).sum();
    assert_eq!(
        merged_busy, replica_busy,
        "merge changed attributed busy time"
    );

    // 4 replicas did the same attributed work as 1 (idle padding aside —
    // every replica heartbeats, so idle cycles scale with the count).
    let strip_idle = |map: BTreeMap<(String, String), (u64, u64)>| {
        map.into_iter()
            .filter(|((_, statement), _)| statement != shareddb::core::IDLE_STATEMENT)
            .collect::<BTreeMap<_, _>>()
    };
    let one = strip_idle(work_by_key(&merged_one));
    let four = strip_idle(work_by_key(&merged_four));
    assert_eq!(one, four, "replication changed per-statement attribution");
    let total_activations: u64 = one.values().map(|(a, _)| a).sum();
    assert_eq!(
        total_activations, 64,
        "every lookup attributed exactly once"
    );

    // The routed lookups really spread — more than one replica shows
    // getItem attribution.
    let routed = per_replica_four
        .iter()
        .filter(|entries| {
            entries
                .iter()
                .any(|e| e.statement == "getItem" && e.activations > 0)
        })
        .count();
    assert!(routed > 1, "hash routing left attribution on one replica");
}

/// Off-reactor merge: a multi-megabyte fanned-out merged result must not
/// stall an unrelated connection's ping. The merge runs on the cluster's
/// worker pool; the reactor only ships the already-merged bytes.
#[test]
fn huge_fanout_merge_does_not_block_ping() {
    const ROWS: i64 = 8_000;
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("BIG")
                .column("ID", DataType::Int)
                .column("PAD", DataType::Text)
                .primary_key(&["ID"]),
        )
        .unwrap();
    let pad = "x".repeat(256);
    catalog
        .bulk_load("BIG", (0..ROWS).map(|i| tuple![i, pad.clone()]).collect())
        .unwrap();
    let mut server = Server::start_sql(
        Arc::new(catalog),
        &[("bigSort", "SELECT * FROM BIG ORDER BY ID")],
        EngineConfig::default(),
        ServerConfig {
            cluster: ClusterConfig {
                replicas: 4,
                replicate_statements: vec!["bigSort".into()],
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let heavy = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).unwrap();
            let big = conn.prepare("bigSort").unwrap();
            let mut merged = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let outcome = conn.execute(&big, &[]).unwrap();
                assert_eq!(outcome.rows().len(), ROWS as usize);
                merged += 1;
            }
            let _ = conn.close();
            merged
        })
    };

    // Concurrent light path: pings must keep completing promptly while ~2 MB
    // merges run back to back. The bound is deliberately generous (CI noise);
    // the regression this guards against is a reactor wedged for the whole
    // merge + encode of the big result, which showed up as multi-second
    // stalls.
    let mut conn = Connection::connect(addr).unwrap();
    let mut worst = std::time::Duration::ZERO;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
    let mut pings = 0u32;
    while std::time::Instant::now() < deadline {
        let begun = std::time::Instant::now();
        conn.ping().unwrap();
        worst = worst.max(begun.elapsed());
        pings += 1;
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let merged = heavy.join().unwrap();
    assert!(merged > 0, "no big merge ever completed");
    assert!(pings > 50, "ping loop starved entirely ({pings} pings)");
    assert!(
        worst < std::time::Duration::from_secs(2),
        "ping stalled {worst:?} behind a fanned-out merge ({merged} merges)"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// `replicas: 1` (the default) keeps the classic single-engine behaviour:
/// one replica entry in the stats, everything served by it.
#[test]
fn single_replica_default_is_unchanged() {
    let mut server = start_cluster(1, &[]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 7").unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.len(), 1);
    assert_eq!(stats.replicas[0].queries, stats.queries);
    conn.close().unwrap();
    server.shutdown();
}

/// Two-level composition: cluster fanout over replicas whose engines each
/// split their shared scans into segments. A fanned-out AVG group-by is
/// partially aggregated per replica AND segment-parallel inside each — the
/// replica's per-batch segment merge must preserve sum/count partials (not
/// finalize them) so the cluster merge still recombines exactly.
#[test]
fn fanout_composes_with_segmented_replicas() {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("SEG")
                .column("S_ID", DataType::Int)
                .column("S_GRP", DataType::Text)
                .column("S_VAL", DataType::Float)
                .primary_key(&["S_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "SEG",
            (0..240i64)
                .map(|i| tuple![i, format!("g{}", i % 3), i as f64])
                .collect(),
        )
        .unwrap();
    let mut server = Server::start_sql(
        Arc::new(catalog),
        &[(
            "avgByGrp",
            "SELECT S_GRP, AVG(S_VAL) FROM SEG GROUP BY S_GRP",
        )],
        EngineConfig::default().scan_segments(2),
        ServerConfig {
            cluster: ClusterConfig {
                replicas: 3,
                replicate_statements: vec!["avgByGrp".into()],
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let avg = conn.prepare("avgByGrp").unwrap();
    let outcome = conn.execute(&avg, &[]).unwrap();
    let mut rows = outcome.rows().to_vec();
    rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
    assert_eq!(rows.len(), 3, "rows: {rows:?}");
    // Group g{k} holds values k, k+3, ..., 237+k — exactly 80 of them, so
    // AVG(g{k}) = k + 3 * 79 / 2. Exact equality: sum/count partials must
    // survive both merge levels (6 partial fragments per group).
    for (k, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::text(format!("g{k}")));
        assert_eq!(row[1], Value::Float(k as f64 + 118.5), "group g{k}");
    }
    // The scatter really spanned every (segmented) replica.
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.len(), 3);
    assert!(
        stats.replicas.iter().all(|r| r.queries == 1),
        "stats: {stats:?}"
    );
    conn.close().unwrap();
    server.shutdown();
}

//! Engine-cluster integration tests over the wire: N engine replicas behind
//! one endpoint, statement-type routing, the scatter/merge step, and the
//! per-replica section of the `Stats` frame — all through the real reactor
//! and client library.

use shareddb::client::Connection;
use shareddb::cluster::ClusterConfig;
use shareddb::common::{tuple, DataType, Value};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..300i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    ("allItems", "SELECT * FROM ITEM ORDER BY I_ID"),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
];

fn start_cluster(replicas: usize, replicate: &[&str]) -> Server {
    Server::start_sql(
        catalog(),
        WORKLOAD,
        EngineConfig::default(),
        ServerConfig {
            cluster: ClusterConfig {
                replicas,
                replicate_statements: replicate.iter().map(|s| s.to_string()).collect(),
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The acceptance shape of the PR: N replicas behind one endpoint, hot-type
/// executions spread over the engines, and the per-replica breakdown visible
/// through the `Stats` wire frame.
#[test]
fn replicated_statements_spread_and_stats_show_replicas() {
    let mut server = start_cluster(3, &["getItem"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    for i in 0..96 {
        let outcome = conn.execute(&get_item, &[Value::Int(i)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(i));
    }
    let stats = conn.stats().unwrap();
    assert_eq!(stats.queries, 96);
    assert_eq!(stats.replicas.len(), 3, "stats: {stats:?}");
    let busy = stats.replicas.iter().filter(|r| r.queries > 0).count();
    assert!(
        busy > 1,
        "hash-partitioned routing left replicas idle: {:?}",
        stats.replicas
    );
    let per_replica: u64 = stats.replicas.iter().map(|r| r.queries).sum();
    assert_eq!(per_replica, 96);
    conn.close().unwrap();
    server.shutdown();
}

/// A parameterless ordered statement on a hot route scatters over all
/// replicas with partitioned scans; the merged result that reaches the
/// client over the wire is complete and ordered.
#[test]
fn fanout_merge_is_exact_over_the_wire() {
    let mut server = start_cluster(4, &["allItems"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let all = conn.prepare("allItems").unwrap();
    let outcome = conn.execute(&all, &[]).unwrap();
    let rows = outcome.rows();
    assert_eq!(rows.len(), 300);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64), "merge broke order at {i}");
    }
    // The scatter really used every replica.
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.len(), 4);
    assert!(
        stats.replicas.iter().all(|r| r.queries == 1),
        "stats: {stats:?}"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// Updates pin to the write replica; their effects are visible to statements
/// executing on other replicas (one shared MVCC catalog).
#[test]
fn updates_are_visible_across_replicas() {
    let mut server = start_cluster(2, &["getItem"]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let outcome = conn
        .query("INSERT INTO ITEM VALUES (9000, 'clustered book', 1.0)")
        .unwrap();
    assert_eq!(outcome.rows_affected(), 1);
    let get_item = conn.prepare("getItem").unwrap();
    let outcome = conn.execute(&get_item, &[Value::Int(9000)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    assert_eq!(outcome.rows()[0][1], Value::text("clustered book"));
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.iter().map(|r| r.updates).sum::<u64>(), 1);
    assert_eq!(
        stats.replicas[0].updates, 1,
        "update left the write replica"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// `replicas: 1` (the default) keeps the classic single-engine behaviour:
/// one replica entry in the stats, everything served by it.
#[test]
fn single_replica_default_is_unchanged() {
    let mut server = start_cluster(1, &[]);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 7").unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let stats = conn.stats().unwrap();
    assert_eq!(stats.replicas.len(), 1);
    assert_eq!(stats.replicas[0].queries, stats.queries);
    conn.close().unwrap();
    server.shutdown();
}

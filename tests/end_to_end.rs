//! Cross-crate integration tests: the full stack (storage → global plan →
//! batched engine → TPC-W workload) plus result parity between SharedDB and
//! the query-at-a-time baseline.

use shareddb::baseline::EngineProfile;
use shareddb::common::Value;
use shareddb::core::EngineConfig;
use shareddb::tpcw::{
    build_catalog, run_workload, BaselineSystem, DriverConfig, Mix, ParamGenerator, SharedDbSystem,
    TpcwDatabase, TpcwScale, ALL_INTERACTIONS, SUBJECTS,
};
use std::sync::Arc;
use std::time::Duration;

fn tiny_scale() -> TpcwScale {
    TpcwScale::tiny()
}

#[test]
fn every_web_interaction_executes_on_shareddb() {
    let scale = tiny_scale();
    let catalog = Arc::new(build_catalog(&scale).unwrap());
    let db = SharedDbSystem::new(catalog, EngineConfig::default()).unwrap();
    let generator = ParamGenerator::new(&scale);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    for interaction in ALL_INTERACTIONS {
        for _ in 0..3 {
            for call in generator.calls(interaction, &mut rng) {
                db.execute(call.statement, &call.params, Duration::from_secs(30))
                    .unwrap_or_else(|e| {
                        panic!("{} failed on {}: {e}", interaction.name(), call.statement)
                    });
            }
        }
    }
}

#[test]
fn every_web_interaction_executes_on_both_baselines() {
    let scale = tiny_scale();
    for profile in [EngineProfile::Basic, EngineProfile::Tuned] {
        let catalog = Arc::new(build_catalog(&scale).unwrap());
        let db = BaselineSystem::new(catalog, profile, 8);
        let generator = ParamGenerator::new(&scale);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(43);
        for interaction in ALL_INTERACTIONS {
            for call in generator.calls(interaction, &mut rng) {
                db.execute(call.statement, &call.params, Duration::from_secs(30))
                    .unwrap_or_else(|e| {
                        panic!("{} failed on {}: {e}", interaction.name(), call.statement)
                    });
            }
        }
    }
}

#[test]
fn shared_and_baseline_return_identical_read_results() {
    let scale = tiny_scale();
    let catalog = Arc::new(build_catalog(&scale).unwrap());
    let shared = SharedDbSystem::new(Arc::clone(&catalog), EngineConfig::default()).unwrap();
    let baseline = BaselineSystem::new(Arc::clone(&catalog), EngineProfile::Tuned, 4);

    // Identical row counts for a spectrum of read statements and parameters.
    let cases: Vec<(&str, Vec<Value>)> = vec![
        ("getItemById", vec![Value::Int(3)]),
        ("getBook", vec![Value::Int(11)]),
        ("getCustomerByUname", vec![Value::text("UNAME5")]),
        ("doSubjectSearch", vec![Value::text(SUBJECTS[2])]),
        ("doTitleSearch", vec![Value::text("%BOOK 4%")]),
        ("doAuthorSearch", vec![Value::text("ALAST1%")]),
        ("getNewProducts", vec![Value::text(SUBJECTS[7])]),
        (
            "getBestSellers",
            vec![Value::text(SUBJECTS[0]), Value::Int(0)],
        ),
        ("getCart", vec![Value::Int(1)]),
        ("getCustomerOrder", vec![Value::Int(2)]),
    ];
    for (statement, params) in cases {
        let a = shared
            .execute(statement, &params, Duration::from_secs(30))
            .unwrap();
        let b = baseline
            .execute(statement, &params, Duration::from_secs(30))
            .unwrap();
        assert_eq!(a, b, "row count mismatch for {statement}");
    }
}

#[test]
fn concurrent_mixed_workload_is_robust() {
    let scale = tiny_scale();
    let catalog = Arc::new(build_catalog(&scale).unwrap());
    let db = SharedDbSystem::new(catalog, EngineConfig::default()).unwrap();
    let config = DriverConfig {
        mix: Mix::Shopping,
        emulated_browsers: 100,
        think_time: Duration::from_millis(100),
        duration: Duration::from_millis(600),
        client_threads: 8,
        time_limit_scale: 1.0,
        seed: 5,
    };
    let report = run_workload(&db, &scale, &config);
    assert!(report.attempted >= 10, "report: {report:?}");
    assert_eq!(report.failed, 0, "report: {report:?}");
    assert!(report.successful > 0);
    // The engine really batched work.
    let stats = db.engine().stats();
    assert!(stats.batches > 0);
    assert!(stats.queries + stats.updates >= report.successful);
}

#[test]
fn updates_are_visible_across_engines_sharing_a_catalog() {
    // SharedDB and the baseline run over the SAME catalog: an update executed
    // through one engine must be visible to the other (single storage layer,
    // snapshot isolation).
    let scale = tiny_scale();
    let catalog = Arc::new(build_catalog(&scale).unwrap());
    let shared = SharedDbSystem::new(Arc::clone(&catalog), EngineConfig::default()).unwrap();
    let baseline = BaselineSystem::new(Arc::clone(&catalog), EngineProfile::Tuned, 2);

    // Insert a cart line through SharedDB, read it through the baseline.
    shared
        .execute(
            "addToCart",
            &[
                Value::Int(777_001),
                Value::Int(777_000),
                Value::Int(1),
                Value::Int(3),
            ],
            Duration::from_secs(10),
        )
        .unwrap();
    let rows = baseline
        .execute("getCart", &[Value::Int(777_000)], Duration::from_secs(10))
        .unwrap();
    assert_eq!(rows, 1);

    // Delete it through the baseline, observe through SharedDB.
    baseline
        .execute("clearCart", &[Value::Int(777_000)], Duration::from_secs(10))
        .unwrap();
    let rows = shared
        .execute("getCart", &[Value::Int(777_000)], Duration::from_secs(10))
        .unwrap();
    assert_eq!(rows, 0);
}

//! Runs the SQL conformance corpus (`tests/sql_corpus/`) under `cargo test`,
//! so tier-1 verification covers exactly what the CI `sql-conformance` lane
//! gates on. The corpus compiles into ONE shared global plan and executes
//! against the fixed dataset described in `shareddb_bench::conformance`.

use std::path::Path;

#[test]
fn sql_corpus_conforms() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql_corpus");
    let report = shareddb_bench::conformance::run_corpus(&dir).expect("corpus run");
    assert!(
        report.ok(),
        "SQL corpus drift:\n{}",
        report.failures.join("\n")
    );
    // The corpus must keep covering the breadth it was written for; a lane
    // that silently lost its cases would otherwise pass forever.
    assert!(
        report.passed.len() >= 18,
        "corpus shrank to {} cases",
        report.passed.len()
    );
}

/// The EXPLAIN golden set: every positive case's rendered plan text (operator
/// subtree + sharing sets against the one shared corpus plan) must match the
/// checked-in `tests/sql_corpus/explain.golden`. Regenerate with
/// `UPDATE_EXPLAIN_GOLDEN=1` after an intentional planner change.
#[test]
fn sql_corpus_explain_matches_golden() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql_corpus");
    let report = shareddb_bench::conformance::run_explain_golden(&dir).expect("golden run");
    assert!(
        report.ok(),
        "EXPLAIN golden drift:\n{}",
        report.failures.join("\n")
    );
}

//! Network-frontend integration tests: concurrent client connections sharing
//! one `QueryBatch`, client pipelining, admission-control backpressure and
//! graceful drain — the socket → session → admission queue → batch →
//! Γ(query_id) path end to end.

use shareddb::client::{Connection, Outcome};
use shareddb::common::{tuple, DataType, Error, Value};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..200i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    (
        "itemsCheaperThan",
        "SELECT * FROM ITEM WHERE I_COST < ? ORDER BY I_COST LIMIT 10",
    ),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
];

fn start_server(engine_config: EngineConfig, server_config: ServerConfig) -> Server {
    Server::start_sql(catalog(), WORKLOAD, engine_config, server_config).unwrap()
}

/// Acceptance criterion: concurrent connections issuing queries in the same
/// heartbeat window are answered from a single `QueryBatch`, observable via
/// `EngineStats`.
#[test]
fn concurrent_connections_share_one_batch() {
    const CLIENTS: usize = 8;
    // Paced (non-eager) heartbeat: statements arriving within one window form
    // one batch.
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: Duration::from_millis(250),
        ..EngineConfig::default()
    };
    let mut server = start_server(engine_config, ServerConfig::default());
    let addr = server.local_addr();

    // Warm up every connection (prepares the statement, completes one batch)
    // so the measured phase contains nothing but the concurrent queries.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).unwrap();
            let get_item = conn.prepare("getItem").unwrap();
            let warmup = conn.execute(&get_item, &[Value::Int(0)]).unwrap();
            assert_eq!(warmup.rows().len(), 1);
            barrier.wait(); // all warmed up
            barrier.wait(); // measured phase begins
            let outcome = conn.execute(&get_item, &[Value::Int(i as i64)]).unwrap();
            assert_eq!(outcome.rows().len(), 1);
            assert_eq!(outcome.rows()[0][0], Value::Int(i as i64));
            conn.close().unwrap();
        }));
    }
    barrier.wait(); // warmups done
    let before = server.engine_stats().unwrap();
    barrier.wait(); // go
    for t in threads {
        t.join().unwrap();
    }
    let after = server.engine_stats().unwrap();
    let queries = after.queries - before.queries;
    let batches = after.batches - before.batches;
    assert_eq!(queries, CLIENTS as u64);
    // Strictly fewer batches than queries ⇒ by pigeonhole at least one batch
    // answered ≥ 2 queries from different sockets. With the paced heartbeat
    // the common case is a single batch for all eight.
    assert!(
        batches < queries,
        "no batching across connections: {batches} batches for {queries} queries"
    );
    server.shutdown();
}

/// One connection pipelines many statements; responses come back in order and
/// far fewer batches than statements are executed.
#[test]
fn pipelined_submissions_batch_and_preserve_order() {
    const PIPELINE: usize = 100;
    let server_config = ServerConfig {
        max_inflight_per_session: PIPELINE + 1,
        ..ServerConfig::default()
    };
    let mut server = start_server(EngineConfig::default(), server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    assert_eq!(get_item.param_count, 1);

    let tickets: Vec<_> = (0..PIPELINE)
        .map(|i| conn.submit(&get_item, &[Value::Int(i as i64)]).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = conn.wait(ticket).unwrap();
        match outcome {
            Outcome::Rows(rs) => {
                assert_eq!(rs.rows.len(), 1);
                assert_eq!(rs.rows[0][0], Value::Int(i as i64));
                assert_eq!(rs.columns[0].1, DataType::Int);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = conn.stats().unwrap();
    assert_eq!(stats.queries, PIPELINE as u64);
    assert!(
        stats.batches < PIPELINE as u64,
        "pipelined statements did not batch: {stats:?}"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// Acceptance criterion: backpressure rejects cleanly (retryable error) at the
/// configured limits, and graceful drain fails in-flight work with a clean
/// shutdown error instead of dropping the socket.
#[test]
fn backpressure_rejects_with_retryable_error() {
    // A glacial heartbeat keeps everything in flight for the whole test.
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: Duration::from_secs(30),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        max_inflight_per_session: 4,
        drain_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();

    // Arm the heartbeat pacing: the engine's very first batch runs
    // immediately, so complete one statement before the burst — everything
    // submitted afterwards stays queued for the full (glacial) heartbeat.
    conn.execute(&get_item, &[Value::Int(0)]).unwrap();

    // 4 admitted + 2 rejected by the per-session in-flight cap.
    let tickets: Vec<_> = (0..6)
        .map(|i| conn.submit(&get_item, &[Value::Int(i)]).unwrap())
        .collect();
    // Rejections are counted server-side without waiting for the batch.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().rejected < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, 2, "stats: {stats:?}");
    assert_eq!(stats.requests, 7, "stats: {stats:?}");

    // Graceful drain: the admitted statements are *executed* as the engine's
    // final batch, the rejected ones fail with the retryable overload error —
    // all delivered in submission order over the still-open socket.
    server.shutdown();
    let mut outcomes = Vec::new();
    for ticket in tickets {
        outcomes.push(conn.wait(ticket));
    }
    for outcome in &outcomes[..4] {
        match outcome {
            Ok(o) => assert_eq!(o.rows().len(), 1),
            Err(e) => panic!("drain should answer admitted work, got {e:?}"),
        }
    }
    for outcome in &outcomes[4..] {
        match outcome {
            Err(e) => {
                assert!(e.is_retryable(), "expected retryable rejection, got {e:?}");
                assert!(matches!(e, Error::Overloaded(_)));
            }
            Ok(o) => panic!("expected rejection, got {o:?}"),
        }
    }
}

/// Global queue-depth backpressure (as opposed to the per-session cap).
#[test]
fn queue_depth_backpressure_rejects() {
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: Duration::from_secs(30),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        max_queue_depth: 2,
        max_inflight_per_session: 1024,
        drain_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    // Arm the heartbeat pacing (see backpressure_rejects_with_retryable_error).
    conn.execute(&get_item, &[Value::Int(0)]).unwrap();
    for i in 0..8 {
        conn.submit(&get_item, &[Value::Int(i)]).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().rejected == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        server.stats().rejected >= 1,
        "queue-depth limit never rejected: {:?}",
        server.stats()
    );
    server.shutdown();
}

/// Ad-hoc SQL over the wire: auto-parameterised against the compiled
/// statement types; unknown types are rejected.
#[test]
fn adhoc_sql_matches_compiled_statement_types() {
    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).unwrap();

    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 17").unwrap();
    assert_eq!(outcome.rows().len(), 1);
    assert_eq!(outcome.rows()[0][1], Value::text("title17"));

    // Same type, different constant, different spelling.
    let outcome = conn.query("select * from item where i_id = 23").unwrap();
    assert_eq!(outcome.rows()[0][0], Value::Int(23));

    // Updates run through the same path.
    let outcome = conn
        .query("INSERT INTO ITEM VALUES (900, 'net book', 5.0)")
        .unwrap();
    assert_eq!(outcome.rows_affected(), 1);
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 900").unwrap();
    assert_eq!(outcome.rows()[0][1], Value::text("net book"));

    // A statement type that is not part of the plan is rejected.
    let err = conn
        .query("SELECT * FROM ITEM WHERE I_TITLE = 'title1'")
        .unwrap_err();
    assert!(matches!(err, Error::UnknownStatement(_)), "{err:?}");

    // Unknown prepared statements are rejected too.
    assert!(matches!(
        conn.prepare("noSuchStatement"),
        Err(Error::UnknownStatement(_))
    ));
    conn.close().unwrap();
    server.shutdown();
}

/// The ORDER BY / LIMIT path works over the wire with typed decoding.
#[test]
fn sorted_limited_results_decode_with_schema() {
    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let cheaper = conn.prepare("itemsCheaperThan").unwrap();
    let outcome = conn.execute(&cheaper, &[Value::Float(10.0)]).unwrap();
    match outcome {
        Outcome::Rows(rs) => {
            assert_eq!(rs.len(), 10);
            assert_eq!(rs.columns.len(), 3);
            assert_eq!(rs.columns[2].1, DataType::Float);
            let costs: Vec<f64> = rs.rows.iter().map(|r| r[2].as_float().unwrap()).collect();
            assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        }
        other => panic!("unexpected {other:?}"),
    }
    conn.close().unwrap();
    server.shutdown();
}

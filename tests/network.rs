//! Network-frontend integration tests: concurrent client connections sharing
//! one `QueryBatch`, client pipelining, admission-control backpressure and
//! graceful drain — the socket → session → admission queue → batch →
//! Γ(query_id) path end to end.

use shareddb::client::{Connection, Outcome};
use shareddb::common::{tuple, DataType, Error, Value};
use shareddb::core::{EngineConfig, HeartbeatPolicy};
use shareddb::server::protocol::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..200i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    (
        "itemsCheaperThan",
        "SELECT * FROM ITEM WHERE I_COST < ? ORDER BY I_COST LIMIT 10",
    ),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
    (
        "itemValue",
        "SELECT I_ID, I_COST * 2 FROM ITEM WHERE I_ID = ?",
    ),
];

fn start_server(engine_config: EngineConfig, server_config: ServerConfig) -> Server {
    Server::start_sql(catalog(), WORKLOAD, engine_config, server_config).unwrap()
}

/// Acceptance criterion: concurrent connections issuing queries in the same
/// heartbeat window are answered from a single `QueryBatch`, observable via
/// `EngineStats`.
#[test]
fn concurrent_connections_share_one_batch() {
    const CLIENTS: usize = 8;
    // Paced (non-eager) heartbeat: statements arriving within one window form
    // one batch.
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: HeartbeatPolicy::Fixed(Duration::from_millis(250)),
        ..EngineConfig::default()
    };
    let mut server = start_server(engine_config, ServerConfig::default());
    let addr = server.local_addr();

    // Warm up every connection (prepares the statement, completes one batch)
    // so the measured phase contains nothing but the concurrent queries.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).unwrap();
            let get_item = conn.prepare("getItem").unwrap();
            let warmup = conn.execute(&get_item, &[Value::Int(0)]).unwrap();
            assert_eq!(warmup.rows().len(), 1);
            barrier.wait(); // all warmed up
            barrier.wait(); // measured phase begins
            let outcome = conn.execute(&get_item, &[Value::Int(i as i64)]).unwrap();
            assert_eq!(outcome.rows().len(), 1);
            assert_eq!(outcome.rows()[0][0], Value::Int(i as i64));
            conn.close().unwrap();
        }));
    }
    barrier.wait(); // warmups done
    let before = server.engine_stats().unwrap();
    barrier.wait(); // go
    for t in threads {
        t.join().unwrap();
    }
    let after = server.engine_stats().unwrap();
    let queries = after.queries - before.queries;
    let batches = after.batches - before.batches;
    assert_eq!(queries, CLIENTS as u64);
    // Strictly fewer batches than queries ⇒ by pigeonhole at least one batch
    // answered ≥ 2 queries from different sockets. With the paced heartbeat
    // the common case is a single batch for all eight.
    assert!(
        batches < queries,
        "no batching across connections: {batches} batches for {queries} queries"
    );
    server.shutdown();
}

/// One connection pipelines many statements; responses come back in order and
/// far fewer batches than statements are executed.
#[test]
fn pipelined_submissions_batch_and_preserve_order() {
    const PIPELINE: usize = 100;
    let server_config = ServerConfig {
        max_inflight_per_session: PIPELINE + 1,
        ..ServerConfig::default()
    };
    let mut server = start_server(EngineConfig::default(), server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    assert_eq!(get_item.param_count, 1);

    let tickets: Vec<_> = (0..PIPELINE)
        .map(|i| conn.submit(&get_item, &[Value::Int(i as i64)]).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = conn.wait(ticket).unwrap();
        match outcome {
            Outcome::Rows(rs) => {
                assert_eq!(rs.rows.len(), 1);
                assert_eq!(rs.rows[0][0], Value::Int(i as i64));
                assert_eq!(rs.columns[0].1, DataType::Int);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = conn.stats().unwrap();
    assert_eq!(stats.queries, PIPELINE as u64);
    assert!(
        stats.batches < PIPELINE as u64,
        "pipelined statements did not batch: {stats:?}"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// Acceptance criterion: backpressure rejects cleanly (retryable error) at the
/// configured limits, and graceful drain fails in-flight work with a clean
/// shutdown error instead of dropping the socket.
#[test]
fn backpressure_rejects_with_retryable_error() {
    // A glacial heartbeat keeps everything in flight for the whole test.
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: HeartbeatPolicy::Fixed(Duration::from_secs(30)),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        max_inflight_per_session: 4,
        drain_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();

    // Arm the heartbeat pacing: the engine's very first batch runs
    // immediately, so complete one statement before the burst — everything
    // submitted afterwards stays queued for the full (glacial) heartbeat.
    conn.execute(&get_item, &[Value::Int(0)]).unwrap();

    // 4 admitted + 2 rejected by the per-session in-flight cap.
    let tickets: Vec<_> = (0..6)
        .map(|i| conn.submit(&get_item, &[Value::Int(i)]).unwrap())
        .collect();
    // Rejections are counted server-side without waiting for the batch.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().rejected < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, 2, "stats: {stats:?}");
    assert_eq!(stats.requests, 7, "stats: {stats:?}");

    // Graceful drain: the admitted statements are *executed* as the engine's
    // final batch, the rejected ones fail with the retryable overload error —
    // all delivered in submission order over the still-open socket.
    server.shutdown();
    let mut outcomes = Vec::new();
    for ticket in tickets {
        outcomes.push(conn.wait(ticket));
    }
    for outcome in &outcomes[..4] {
        match outcome {
            Ok(o) => assert_eq!(o.rows().len(), 1),
            Err(e) => panic!("drain should answer admitted work, got {e:?}"),
        }
    }
    for outcome in &outcomes[4..] {
        match outcome {
            Err(e) => {
                assert!(e.is_retryable(), "expected retryable rejection, got {e:?}");
                assert!(matches!(e, Error::Overloaded(_)));
            }
            Ok(o) => panic!("expected rejection, got {o:?}"),
        }
    }
}

/// Global queue-depth backpressure (as opposed to the per-session cap).
#[test]
fn queue_depth_backpressure_rejects() {
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: HeartbeatPolicy::Fixed(Duration::from_secs(30)),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        max_queue_depth: 2,
        max_inflight_per_session: 1024,
        drain_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let get_item = conn.prepare("getItem").unwrap();
    // Arm the heartbeat pacing (see backpressure_rejects_with_retryable_error).
    conn.execute(&get_item, &[Value::Int(0)]).unwrap();
    for i in 0..8 {
        conn.submit(&get_item, &[Value::Int(i)]).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().rejected == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        server.stats().rejected >= 1,
        "queue-depth limit never rejected: {:?}",
        server.stats()
    );
    server.shutdown();
}

/// Ad-hoc SQL over the wire: auto-parameterised against the compiled
/// statement types; unknown types are rejected.
#[test]
fn adhoc_sql_matches_compiled_statement_types() {
    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).unwrap();

    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 17").unwrap();
    assert_eq!(outcome.rows().len(), 1);
    assert_eq!(outcome.rows()[0][1], Value::text("title17"));

    // Same type, different constant, different spelling.
    let outcome = conn.query("select * from item where i_id = 23").unwrap();
    assert_eq!(outcome.rows()[0][0], Value::Int(23));

    // Updates run through the same path.
    let outcome = conn
        .query("INSERT INTO ITEM VALUES (900, 'net book', 5.0)")
        .unwrap();
    assert_eq!(outcome.rows_affected(), 1);
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 900").unwrap();
    assert_eq!(outcome.rows()[0][1], Value::text("net book"));

    // Expression projections match their statement type over the wire and
    // evaluate per row.
    let outcome = conn
        .query("select i_id, i_cost * 2 from item where i_id = 30")
        .unwrap();
    assert_eq!(outcome.rows().len(), 1);
    assert_eq!(outcome.rows()[0][1], Value::Int(60)); // cost 30 % 50 = 30

    // A statement type that is not part of the plan is rejected.
    let err = conn
        .query("SELECT * FROM ITEM WHERE I_TITLE = 'title1'")
        .unwrap_err();
    assert!(matches!(err, Error::UnknownStatement(_)), "{err:?}");

    // Unknown prepared statements are rejected too.
    assert!(matches!(
        conn.prepare("noSuchStatement"),
        Err(Error::UnknownStatement(_))
    ));
    conn.close().unwrap();
    server.shutdown();
}

/// Regression test for the admission TOCTOU: the queue-depth check and the
/// enqueue used to be separate steps, so N concurrent sessions could overshoot
/// the bound by N−1. The bound is now enforced under the engine's queue lock;
/// hammering it from many connections must never push the queue past the
/// limit — observed continuously by a sampler while the hammer runs.
#[test]
fn admission_queue_bound_is_never_exceeded() {
    const CONNS: usize = 8;
    const PER_CONN: i64 = 16;
    const DEPTH: usize = 4;
    // A glacial heartbeat keeps everything queued for the whole test.
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: HeartbeatPolicy::Fixed(Duration::from_secs(30)),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        max_queue_depth: DEPTH,
        max_inflight_per_session: 1024,
        drain_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let addr = server.local_addr();

    // Arm the heartbeat pacing: the engine's very first batch runs
    // immediately; everything submitted afterwards stays queued.
    {
        let mut conn = Connection::connect(addr).unwrap();
        let get_item = conn.prepare("getItem").unwrap();
        conn.execute(&get_item, &[Value::Int(0)]).unwrap();
        conn.close().unwrap();
    }

    let stop_sampler = Arc::new(AtomicBool::new(false));
    let max_queued = Arc::new(AtomicU64::new(0));
    let submitted = Arc::new(Barrier::new(CONNS + 1));
    let observed = std::thread::scope(|scope| {
        // Sampler: watches the queue depth over its own stats connection for
        // the whole hammer phase.
        {
            let stop = Arc::clone(&stop_sampler);
            let max_queued = Arc::clone(&max_queued);
            scope.spawn(move || {
                let mut conn = match Connection::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                while !stop.load(Ordering::Acquire) {
                    match conn.stats() {
                        Ok(stats) => {
                            max_queued.fetch_max(stats.queued, Ordering::AcqRel);
                        }
                        Err(_) => return, // server draining
                    }
                }
            });
        }
        // Hammer: every connection fires its whole pipeline as fast as it
        // can, racing the others for the DEPTH admission slots.
        let go = Arc::new(Barrier::new(CONNS));
        for _ in 0..CONNS {
            let go = Arc::clone(&go);
            let submitted = Arc::clone(&submitted);
            scope.spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                let get_item = conn.prepare("getItem").unwrap();
                go.wait();
                let tickets: Vec<_> = (0..PER_CONN)
                    .map(|i| conn.submit(&get_item, &[Value::Int(i)]).unwrap())
                    .collect();
                submitted.wait();
                // Redeem after the drain delivers: admitted statements come
                // back as rows (final batch), the rest as retryable
                // rejections — never anything else.
                for ticket in tickets {
                    match conn.wait(ticket) {
                        Ok(outcome) => assert_eq!(outcome.rows().len(), 1),
                        Err(e) => {
                            assert!(matches!(e, Error::Overloaded(_)), "unexpected {e:?}")
                        }
                    }
                }
            });
        }
        submitted.wait();

        // The barrier only means "written to the sockets" — poll until the
        // server has processed all 128 submissions (plus the arming one).
        let expected_requests = (CONNS as u64) * (PER_CONN as u64) + 1;
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().requests < expected_requests && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Capture now, assert after shutdown: a failed assert inside the
        // scope would leave the submitters blocked on their tickets forever.
        let queued_at_peak = server.queued();
        let stats = server.stats();
        stop_sampler.store(true, Ordering::Release);
        server.shutdown();
        (queued_at_peak, stats)
    });
    let (queued_at_peak, stats) = observed;
    // All 128 submissions were in and nothing had drained (glacial
    // heartbeat): the queue must hold exactly DEPTH, every submission beyond
    // that must have been rejected, and no sampled instant may ever have seen
    // the queue above the bound.
    assert_eq!(stats.requests, (CONNS as u64) * (PER_CONN as u64) + 1);
    assert_eq!(queued_at_peak, DEPTH, "bound overshot: {stats:?}");
    assert_eq!(
        stats.rejected,
        (CONNS as u64) * (PER_CONN as u64) - DEPTH as u64,
        "stats: {stats:?}"
    );
    assert!(
        max_queued.load(Ordering::Acquire) <= DEPTH as u64,
        "sampler saw the queue above the bound: {} > {DEPTH}",
        max_queued.load(Ordering::Acquire)
    );
}

/// Graceful shutdown under load: a client with queries in flight is drained
/// (its admitted work is answered by the final batch) and a client stalled
/// mid-frame is cleanly disconnected — neither can make shutdown hang.
#[test]
fn shutdown_drains_inflight_and_closes_stalled_clients() {
    run_shutdown_under_load(false);
}

/// The same shutdown-under-load scenario through the portable
/// adaptive-parking poller (`ServerConfig::force_portable_poller`): drain
/// signalling and stalled-client handling must not depend on epoll.
#[test]
fn shutdown_under_load_portable_poller() {
    run_shutdown_under_load(true);
}

fn run_shutdown_under_load(force_portable_poller: bool) {
    let engine_config = EngineConfig {
        eager_heartbeat: false,
        heartbeat: HeartbeatPolicy::Fixed(Duration::from_secs(30)),
        ..EngineConfig::default()
    };
    let server_config = ServerConfig {
        drain_timeout: Duration::from_millis(200),
        force_portable_poller,
        ..ServerConfig::default()
    };
    let mut server = start_server(engine_config, server_config);
    let addr = server.local_addr();

    // Client A: pipelined queries in flight behind the glacial heartbeat.
    let mut a = Connection::connect(addr).unwrap();
    let get_item = a.prepare("getItem").unwrap();
    a.execute(&get_item, &[Value::Int(0)]).unwrap(); // arm pacing
    let tickets: Vec<_> = (1..4)
        .map(|i| a.submit(&get_item, &[Value::Int(i)]).unwrap())
        .collect();

    // Client B: greets, then stalls in the middle of a frame forever.
    let mut b = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut b,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client_name: "staller".into(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut b).unwrap().unwrap(),
        Frame::HelloOk { .. }
    ));
    // Length prefix announcing 32 body bytes, then only 3 of them.
    b.write_all(&[32, 0, 0, 0, 0x02, 0xab, 0xcd]).unwrap();
    b.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the server read it

    let started = Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "shutdown hung for {elapsed:?}"
    );

    // A's admitted work was executed as the engine's final batch and
    // delivered over the still-open socket.
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = a.wait(ticket).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(i as i64 + 1));
    }

    // B was cleanly disconnected (EOF or reset), not left hanging.
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_frame(&mut b) {
        Ok(None) | Err(_) => {}
        Ok(Some(frame)) => panic!("stalled client got a frame: {frame:?}"),
    }
}

/// The reactor's incremental decoder reassembles frames that arrive one byte
/// at a time, and the keepalive no-op round-trips both raw and through the
/// client library.
#[test]
fn byte_dribbled_frames_reassemble_and_ping_round_trips() {
    run_frame_reassembly(false);
}

/// Frame reassembly through the portable poller: the incremental decoder
/// must behave identically when readiness comes from the adaptive parking
/// loop instead of epoll.
#[test]
fn byte_dribbled_frames_reassemble_portable_poller() {
    run_frame_reassembly(true);
}

fn run_frame_reassembly(force_portable_poller: bool) {
    let mut server = start_server(
        EngineConfig::default(),
        ServerConfig {
            force_portable_poller,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Client-library keepalive.
    let mut conn = Connection::connect(addr).unwrap();
    conn.ping().unwrap();
    conn.close().unwrap();

    // Raw socket, frames dribbled byte by byte (every write is its own TCP
    // segment thanks to TCP_NODELAY, so the server sees partial frames).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let frames = [
        Frame::Hello {
            version: PROTOCOL_VERSION,
            client_name: "dribble".into(),
        },
        Frame::Ping { request_id: 1 },
        Frame::Query {
            request_id: 2,
            sql: "SELECT * FROM ITEM WHERE I_ID = 11".into(),
        },
    ];
    for frame in &frames {
        for byte in frame.encode() {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
        }
    }
    assert!(matches!(
        read_frame(&mut stream).unwrap().unwrap(),
        Frame::HelloOk { .. }
    ));
    assert!(matches!(
        read_frame(&mut stream).unwrap().unwrap(),
        Frame::Pong { request_id: 1 }
    ));
    match read_frame(&mut stream).unwrap().unwrap() {
        Frame::ResultChunk { rows, .. } => {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], Value::Int(11));
        }
        other => panic!("unexpected {other:?}"),
    }
    write_frame(&mut stream, &Frame::Goodbye).unwrap();
    assert!(matches!(
        read_frame(&mut stream).unwrap().unwrap(),
        Frame::GoodbyeOk
    ));
    server.shutdown();
}

/// Hostile or broken peers are dropped cleanly and never destabilise the
/// reactor: garbage bytes, an absurd declared frame length, a foreign
/// protocol version — after each, a healthy client still gets answers.
#[test]
fn hostile_clients_are_dropped_cleanly() {
    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    let addr = server.local_addr();

    let expect_dropped = |mut s: TcpStream| {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match read_frame(&mut s) {
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => panic!("hostile client got a frame: {frame:?}"),
        }
    };

    // Garbage bytes instead of a frame (first 4 bytes declare a bogus
    // 0x21626d6f-byte length — far past MAX_FRAME_LEN).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"ombo jumbo!").unwrap();
    expect_dropped(s);

    // An explicit 0xFFFFFFFF declared frame length.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0xff, 0xff, 0xff, 0xff, 0x06]).unwrap();
    expect_dropped(s);

    // A frame that is valid wire format but not a legal first frame.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, &Frame::Ping { request_id: 1 }).unwrap();
    expect_dropped(s);

    // A foreign protocol version gets an UNSUPPORTED error, then the close.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        &Frame::Hello {
            version: 99,
            client_name: "from-the-future".into(),
        },
    )
    .unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_frame(&mut s).unwrap().unwrap() {
        Frame::Error {
            code, retryable, ..
        } => {
            assert_eq!(code, 13); // UNSUPPORTED
            assert!(!retryable);
        }
        other => panic!("unexpected {other:?}"),
    }
    expect_dropped(s);

    // The server is still healthy for well-behaved clients.
    let mut conn = Connection::connect(addr).unwrap();
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 3").unwrap();
    assert_eq!(outcome.rows().len(), 1);
    conn.close().unwrap();
    // The reactor reaps the closed connections asynchronously; none of the
    // hostile ones may leak a session slot.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().sessions_active > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_active, 0, "leaked sessions: {stats:?}");
    server.shutdown();
}

/// An idle server parks in the poller with no timers armed: it must burn
/// (almost) no CPU. Ignored by default because it measures process-wide CPU
/// time and would be perturbed by concurrently running tests — run it alone:
/// `cargo test --test network -- --ignored idle_server`.
#[test]
#[ignore]
fn idle_server_uses_no_cpu() {
    fn process_cpu() -> Duration {
        let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
        // utime and stime are fields 14 and 15 (1-based); counting from the
        // closing paren of the comm field they are at offsets 11 and 12.
        let after_comm = stat.rsplit(')').next().unwrap();
        let fields: Vec<&str> = after_comm.split_whitespace().collect();
        let ticks: u64 = fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap();
        Duration::from_millis(ticks * 10) // 100 Hz clock
    }

    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    // A connected but idle session keeps the reactor's conn map non-empty.
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    conn.ping().unwrap();

    let before = process_cpu();
    std::thread::sleep(Duration::from_secs(2));
    let used = process_cpu() - before;
    assert!(
        used < Duration::from_millis(100),
        "idle server burned {used:?} of CPU in 2s"
    );
    conn.close().unwrap();
    server.shutdown();
}

/// The ORDER BY / LIMIT path works over the wire with typed decoding.
#[test]
fn sorted_limited_results_decode_with_schema() {
    let mut server = start_server(EngineConfig::default(), ServerConfig::default());
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let cheaper = conn.prepare("itemsCheaperThan").unwrap();
    let outcome = conn.execute(&cheaper, &[Value::Float(10.0)]).unwrap();
    match outcome {
        Outcome::Rows(rs) => {
            assert_eq!(rs.len(), 10);
            assert_eq!(rs.columns.len(), 3);
            assert_eq!(rs.columns[2].1, DataType::Float);
            let costs: Vec<f64> = rs.rows.iter().map(|r| r[2].as_float().unwrap()).collect();
            assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        }
        other => panic!("unexpected {other:?}"),
    }
    conn.close().unwrap();
    server.shutdown();
}

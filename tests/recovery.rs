//! Durability integration tests: framed-WAL recovery, checkpointing, torn-tail
//! truncation, and crash-consistent restart of the always-on plan (Crescando
//! keeps all data in main memory but supports full recovery by checkpointing
//! and logging, Section 4.4).

use proptest::prelude::*;
use shareddb::common::{tuple, DataType, Expr, Value};
use shareddb::server::{Server, ServerConfig};
use shareddb::sql::compile_workload;
use shareddb::storage::wal::{
    committed_ops, FaultConfig, FaultSink, FileSink, MemorySink, SyncPolicy, Wal, FRAME_HEADER_LEN,
    FRAME_MAGIC, WAL_FORMAT_VERSION,
};
use shareddb::storage::{Catalog, TableDef, UpdateOp, WAL_FILE};
use std::path::PathBuf;
use std::sync::Arc;

fn item_def() -> TableDef {
    TableDef::new("ITEM")
        .column("I_ID", DataType::Int)
        .column("I_TITLE", DataType::Text)
        .column("I_COST", DataType::Float)
        .primary_key(&["I_ID"])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shareddb-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All live rows of a table at the latest snapshot, sorted for multiset
/// comparison.
fn live_rows(catalog: &Catalog, table: &str) -> Vec<Vec<Value>> {
    let handle = catalog.table(table).unwrap();
    let t = handle.read();
    let mut rows: Vec<Vec<Value>> = t
        .scan(catalog.snapshot())
        .map(|(_, r)| r.values().to_vec())
        .collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn checkpoint_then_recover_matches_original_state() {
    let dir = temp_dir("recovery");

    let catalog = Catalog::new();
    catalog.create_table(item_def()).unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..500i64)
                .map(|i| tuple![i, format!("t{i}"), i as f64])
                .collect(),
        )
        .unwrap();
    // Mutate: delete cheap items, reprice one.
    catalog
        .apply_batch(&[
            (
                "ITEM".into(),
                UpdateOp::Delete {
                    predicate: Expr::col(2).lt(Expr::lit(100.0f64)),
                },
            ),
            (
                "ITEM".into(),
                UpdateOp::Update {
                    assignments: vec![(2, Expr::lit(999.0f64))],
                    predicate: Expr::col(0).eq(Expr::lit(400i64)),
                },
            ),
        ])
        .unwrap();
    let live_before = catalog.table("ITEM").unwrap().read().live_count();
    let info = catalog.checkpoint(&dir).unwrap();
    assert_eq!(info.rows, live_before);

    // "Crash" and recover into a fresh catalog.
    let recovered = Catalog::new();
    recovered.create_table(item_def()).unwrap();
    let report = recovered.recover(&dir).unwrap();
    assert_eq!(report.checkpoint_rows, live_before);
    assert_eq!(report.replayed_batches, 0);

    let table = recovered.table("ITEM").unwrap();
    let snapshot = recovered.oracle().read_ts();
    let t = table.read();
    assert_eq!(t.live_count(), 400);
    let repriced = t
        .scan(snapshot)
        .find(|(_, r)| r[0] == Value::Int(400))
        .map(|(_, r)| r[2].clone())
        .unwrap();
    assert_eq!(repriced, Value::Float(999.0));
    drop(t);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_records_batches_in_commit_order() {
    let catalog = Catalog::with_wal(Wal::new(Box::new(MemorySink::new())));
    catalog.create_table(item_def()).unwrap();
    for i in 0..5i64 {
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("t{i}"), 1.0f64],
                },
            )])
            .unwrap();
    }
    let dir = temp_dir("wal-order");
    let path = dir.join("replay.wal");
    let file_catalog = Catalog::with_wal(Wal::new(Box::new(FileSink::create(&path).unwrap())));
    file_catalog.create_table(item_def()).unwrap();
    for i in 0..5i64 {
        file_catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("t{i}"), 1.0f64],
                },
            )])
            .unwrap();
    }
    file_catalog.wal().sync().unwrap();
    let records = FileSink::read_all(&path).unwrap();
    // 5 batches × (BEGIN + 1 op + COMMIT).
    assert_eq!(records.len(), 15);
    let committed = committed_ops(&records);
    assert_eq!(committed.len(), 5);
    assert!(committed.windows(2).all(|w| w[0].0 < w[1].0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: `FileSink::read_all` used to fail hard when the final record
/// was truncated mid-write. A torn tail is the *normal* crash outcome; it
/// must read as "the log ends here", never as an error.
#[test]
fn read_all_survives_mid_record_truncation() {
    let dir = temp_dir("torn-read");
    let path = dir.join(WAL_FILE);

    let catalog = Catalog::with_wal(Wal::new(Box::new(FileSink::create(&path).unwrap())));
    catalog.create_table(item_def()).unwrap();
    for i in 0..4i64 {
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("title-{i}"), i as f64],
                },
            )])
            .unwrap();
    }
    catalog.wal().sync().unwrap();
    let full = FileSink::read_all(&path).unwrap();
    assert_eq!(full.len(), 12);

    // Truncate mid-way through the final frame, as a crash during a write
    // would. Every prefix length must still read cleanly.
    let len = std::fs::metadata(&path).unwrap().len();
    for cut in [len - 3, len - FRAME_HEADER_LEN as u64 / 2, len / 2] {
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let records = FileSink::read_all(&path).unwrap();
        assert!(records.len() < full.len());
        // Only whole committed batches survive.
        for (_, ops) in committed_ops(&records) {
            assert!(!ops.is_empty());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped bit in a record body must be caught by the CRC and cut the log
/// there — the batches before it recover, the corrupt one never half-applies.
#[test]
fn recover_cuts_log_at_crc_corruption() {
    let dir = temp_dir("crc-cut");

    let catalog = Catalog::new();
    catalog.create_table(item_def()).unwrap();
    catalog.recover(&dir).unwrap();
    for i in 0..6i64 {
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("t{i}"), i as f64],
                },
            )])
            .unwrap();
    }
    drop(catalog);

    // Flip one bit in the last quarter of the log.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let victim = bytes.len() - bytes.len() / 8;
    bytes[victim] ^= 0x10;
    std::fs::write(&wal_path, &bytes).unwrap();

    let reborn = Catalog::new();
    reborn.create_table(item_def()).unwrap();
    let report = reborn.recover(&dir).unwrap();
    let torn = report.torn_tail.expect("corruption must be detected");
    assert!(torn.offset <= victim as u64);
    assert!(report.replayed_batches < 6);
    let live = reborn.table("ITEM").unwrap().read().live_count();
    assert_eq!(live, report.replayed_batches);
    // The file was physically truncated back to the valid prefix, so a
    // second recovery sees a clean log and the same state.
    assert!(std::fs::metadata(&wal_path).unwrap().len() <= victim as u64);
    let again = Catalog::new();
    again.create_table(item_def()).unwrap();
    let second = again.recover(&dir).unwrap();
    assert!(second.torn_tail.is_none());
    assert_eq!(second.replayed_batches, report.replayed_batches);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-injecting sink drops everything past a byte cut, exactly like a
/// kernel that never saw the tail of a buffered write.
#[test]
fn fault_sink_partial_write_recovers_prefix() {
    let dir = temp_dir("fault-sink");
    let path = dir.join(WAL_FILE);

    // First find the healthy log length for this op sequence.
    let healthy = {
        let catalog = Catalog::with_wal(Wal::new(Box::new(FileSink::create(&path).unwrap())));
        catalog.create_table(item_def()).unwrap();
        for i in 0..5i64 {
            catalog
                .apply_batch(&[(
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![i, "x", 0.0f64],
                    },
                )])
                .unwrap();
        }
        catalog.wal().sync().unwrap();
        std::fs::metadata(&path).unwrap().len()
    };
    std::fs::remove_file(&path).unwrap();

    // Re-run the same sequence through a sink that drops the last 40%.
    let cut = healthy - healthy * 2 / 5;
    let sink = FaultSink::new(
        Box::new(FileSink::create(&path).unwrap()),
        FaultConfig {
            drop_after: Some(cut),
            flip_bit_at: None,
        },
    );
    let catalog = Catalog::with_wal(Wal::new(Box::new(sink)));
    catalog.create_table(item_def()).unwrap();
    for i in 0..5i64 {
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, "x", 0.0f64],
                },
            )])
            .unwrap();
    }
    catalog.wal().sync().unwrap();
    drop(catalog);

    let reborn = Catalog::new();
    reborn.create_table(item_def()).unwrap();
    let report = reborn.recover(&dir).unwrap();
    assert!(report.replayed_batches < 5);
    assert_eq!(
        reborn.table("ITEM").unwrap().read().live_count(),
        report.replayed_batches
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property: recovery always lands on a committed-batch prefix
// ---------------------------------------------------------------------------

/// One randomly generated update batch. `target` indexes previously inserted
/// ids so updates/deletes hit real rows about half the time.
fn build_batch(kind: u8, target: u8, value: i32, next_id: &mut i64) -> Vec<(String, UpdateOp)> {
    let op = match kind % 3 {
        0 => {
            let id = *next_id;
            *next_id += 1;
            UpdateOp::Insert {
                values: tuple![id, format!("r{id}"), value as f64],
            }
        }
        1 => UpdateOp::Update {
            assignments: vec![(2, Expr::lit(value as f64))],
            predicate: Expr::col(0).eq(Expr::lit(target as i64)),
        },
        _ => UpdateOp::Delete {
            predicate: Expr::col(0).eq(Expr::lit(target as i64)),
        },
    };
    vec![("ITEM".into(), op)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op batches → checkpoint at a random position → random tail
    /// corruption (none / truncate / bit flip) → recover. The recovered
    /// state must equal the in-memory oracle that applied exactly the first
    /// `checkpoint + replayed` batches: recovery never invents rows, never
    /// applies half a batch, never reorders.
    #[test]
    fn recovery_is_a_committed_prefix(
        ops in proptest::collection::vec((0u8..255, 0u8..30, -100i32..100), 4..28),
        ckpt_frac in 0u8..101,
        corruption in 0u8..3,
        cut_frac in 50u8..100,
    ) {
        let dir = temp_dir("prop");

        // Durable life: apply every batch, checkpointing part-way through.
        let durable = Catalog::new();
        durable.create_table(item_def()).unwrap();
        durable.recover(&dir).unwrap();
        let ckpt_at = ops.len() * ckpt_frac as usize / 100;
        let mut next_id = 1000i64;
        let mut batches = Vec::new();
        for (i, (kind, target, value)) in ops.iter().enumerate() {
            if i == ckpt_at {
                durable.checkpoint(&dir).unwrap();
            }
            let batch = build_batch(*kind, *target, *value, &mut next_id);
            durable.apply_batch(&batch).unwrap();
            batches.push(batch);
        }
        durable.wal().sync().unwrap();
        drop(durable);

        // Corrupt the tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = bytes.len() * cut_frac as usize / 100;
        match corruption {
            1 if cut < bytes.len() => {
                let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
                file.set_len(cut as u64).unwrap();
            }
            2 if cut < bytes.len() => {
                let mut mutated = bytes.clone();
                mutated[cut] ^= 0x04;
                std::fs::write(&wal_path, &mutated).unwrap();
            }
            _ => {}
        }

        // Recover and compare against the oracle prefix.
        let recovered = Catalog::new();
        recovered.create_table(item_def()).unwrap();
        let report = recovered.recover(&dir).unwrap();
        // `ckpt_at == ops.len()` means the checkpoint was never written (the
        // loop finished first), so the whole prefix comes from replay.
        let ckpt_batches = if ckpt_at < batches.len() { ckpt_at } else { 0 };
        let prefix = ckpt_batches + report.replayed_batches;
        prop_assert!(prefix <= batches.len());

        let oracle = Catalog::new();
        oracle.create_table(item_def()).unwrap();
        let mut oracle_next = 1000i64;
        for (kind, target, value) in ops.iter().take(prefix) {
            oracle.apply_batch(&build_batch(*kind, *target, *value, &mut oracle_next)).unwrap();
        }
        prop_assert_eq!(live_rows(&recovered, "ITEM"), live_rows(&oracle, "ITEM"));

        // Uncorrupted logs must recover everything.
        if corruption == 0 {
            prop_assert_eq!(prefix, batches.len());
            prop_assert!(report.torn_tail.is_none());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Recovery × the always-on plan
// ---------------------------------------------------------------------------

/// Recovery restores data, not plans — the global plan is recompiled from
/// the workload and must come out identical: same operators, same sharing
/// sets, same EXPLAIN rendering.
#[test]
fn recovery_preserves_explain_output() {
    let dir = temp_dir("explain");
    let statements: Vec<(&str, &str)> = vec![
        ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
        ("listCheap", "SELECT * FROM ITEM WHERE I_COST < ?"),
        ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
    ];

    let catalog = Arc::new(Catalog::new());
    catalog.create_table(item_def()).unwrap();
    catalog.recover(&dir).unwrap();
    catalog
        .apply_batch(&[(
            "ITEM".into(),
            UpdateOp::Insert {
                values: tuple![7i64, "x", 1.0f64],
            },
        )])
        .unwrap();
    let (plan, registry) = compile_workload(&catalog, &statements).unwrap();
    let before: Vec<String> = (0..statements.len())
        .map(|i| shareddb::core::render_explain_text(&plan, &registry, i, None))
        .collect();
    drop(plan);
    drop(registry);

    let reborn = Arc::new(Catalog::new());
    reborn.create_table(item_def()).unwrap();
    reborn.recover(&dir).unwrap();
    let (plan2, registry2) = compile_workload(&reborn, &statements).unwrap();
    let after: Vec<String> = (0..statements.len())
        .map(|i| shareddb::core::render_explain_text(&plan2, &registry2, i, None))
        .collect();
    assert_eq!(before, after);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-stack restart: a durable server is shut down, a new process-worth of
/// state is rebuilt from the data directory, and the re-warmed global plan
/// answers queries over the recovered rows.
#[test]
fn durable_server_restart_serves_recovered_data() {
    let dir = temp_dir("server-restart");
    let statements: Vec<(&str, &str)> = vec![
        ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
        ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
    ];
    let durable_config = || ServerConfig {
        data_dir: Some(dir.clone()),
        wal_sync: SyncPolicy::Always,
        ..ServerConfig::default()
    };

    // First life: seed via bulk load (unlogged), insert via the wire.
    {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        catalog
            .bulk_load("ITEM", vec![tuple![1i64, "seed", 1.0f64]])
            .unwrap();
        let mut server = Server::start_sql(
            Arc::new(catalog),
            &statements,
            Default::default(),
            durable_config(),
        )
        .unwrap();
        let mut conn = shareddb::client::Connection::connect(server.local_addr()).unwrap();
        let add = conn.prepare("addItem").unwrap();
        for i in 2..10i64 {
            conn.execute(
                &add,
                &[Value::Int(i), Value::text("wire"), Value::Float(i as f64)],
            )
            .unwrap();
        }
        conn.close().unwrap();
        server.shutdown();
    }

    // Second life: fresh catalog, same schema, same data dir.
    {
        let catalog = Catalog::new();
        catalog.create_table(item_def()).unwrap();
        let mut server = Server::start_sql(
            Arc::new(catalog),
            &statements,
            Default::default(),
            durable_config(),
        )
        .unwrap();
        let report = server.recovery_report().expect("durable server");
        // The startup compaction of the first life checkpointed the seed, so
        // it is back even though bulk loads never hit the WAL.
        assert!(report.checkpoint_rows + report.replayed_ops >= 9);
        let metrics = server.metrics_text();
        assert!(metrics.contains("shareddb_wal_last_lsn"));
        assert!(metrics.contains("shareddb_recovery_checkpoint_rows"));

        let mut conn = shareddb::client::Connection::connect(server.local_addr()).unwrap();
        let get = conn.prepare("getItem").unwrap();
        for i in 1..10i64 {
            let outcome = conn.execute(&get, &[Value::Int(i)]).unwrap();
            assert_eq!(outcome.rows().len(), 1, "row {i} lost across restart");
        }
        // And the recovered server still accepts new writes.
        let add = conn.prepare("addItem").unwrap();
        conn.execute(
            &add,
            &[Value::Int(99), Value::text("new"), Value::Float(9.0)],
        )
        .unwrap();
        let outcome = conn.execute(&get, &[Value::Int(99)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        conn.close().unwrap();
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The documented format is the implemented format
// ---------------------------------------------------------------------------

/// Spot-checks `docs/WAL_FORMAT.md` against the implementation constants so
/// the spec cannot silently drift: magic, version, header length, CRC check
/// value.
#[test]
fn wal_format_doc_matches_implementation() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/WAL_FORMAT.md"))
        .expect("docs/WAL_FORMAT.md must exist");

    assert_eq!(&FRAME_MAGIC, b"SDBW");
    assert!(doc.contains("`SDBW`"), "doc must state the magic bytes");
    assert!(
        doc.contains("0x53 0x44 0x42 0x57"),
        "doc must spell the magic out in hex"
    );
    assert_eq!(WAL_FORMAT_VERSION, 1);
    assert!(
        doc.contains(&format!("version is `{WAL_FORMAT_VERSION}`")),
        "doc must state the current format version"
    );
    assert_eq!(FRAME_HEADER_LEN, 22);
    assert!(
        doc.contains(&format!("{FRAME_HEADER_LEN}-byte header")),
        "doc must state the header length"
    );
    // The CRC variant is pinned by its check value.
    assert_eq!(shareddb::common::crc32(b"123456789"), 0xCBF4_3926);
    assert!(
        doc.contains("0xCBF43926"),
        "doc must pin the CRC-32 check value"
    );
}

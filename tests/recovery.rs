//! Durability integration tests: checkpoint + write-ahead-log recovery of the
//! storage layer (Crescando keeps all data in main memory but supports full
//! recovery by checkpointing and logging, Section 4.4).

use shareddb::common::{tuple, DataType, Expr, Value};
use shareddb::storage::wal::{FileSink, MemorySink, Wal};
use shareddb::storage::{Catalog, TableDef, UpdateOp};

fn item_def() -> TableDef {
    TableDef::new("ITEM")
        .column("I_ID", DataType::Int)
        .column("I_TITLE", DataType::Text)
        .column("I_COST", DataType::Float)
        .primary_key(&["I_ID"])
}

#[test]
fn checkpoint_then_recover_matches_original_state() {
    let dir = std::env::temp_dir().join(format!("shareddb-it-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("it.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let catalog = Catalog::new();
    catalog.create_table(item_def()).unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..500i64)
                .map(|i| tuple![i, format!("t{i}"), i as f64])
                .collect(),
        )
        .unwrap();
    // Mutate: delete cheap items, reprice one.
    catalog
        .apply_batch(&[
            (
                "ITEM".into(),
                UpdateOp::Delete {
                    predicate: Expr::col(2).lt(Expr::lit(100.0f64)),
                },
            ),
            (
                "ITEM".into(),
                UpdateOp::Update {
                    assignments: vec![(2, Expr::lit(999.0f64))],
                    predicate: Expr::col(0).eq(Expr::lit(400i64)),
                },
            ),
        ])
        .unwrap();
    let live_before = catalog.table("ITEM").unwrap().read().live_count();
    let written = catalog.checkpoint(&ckpt).unwrap();
    assert_eq!(written, live_before);

    // "Crash" and recover into a fresh catalog.
    let recovered = Catalog::new();
    recovered.create_table(item_def()).unwrap();
    let restored = recovered.restore_checkpoint(&ckpt).unwrap();
    assert_eq!(restored, live_before);

    let table = recovered.table("ITEM").unwrap();
    let snapshot = recovered.oracle().read_ts();
    let t = table.read();
    assert_eq!(t.live_count(), 400);
    let repriced = t
        .scan(snapshot)
        .find(|(_, r)| r[0] == Value::Int(400))
        .map(|(_, r)| r[2].clone())
        .unwrap();
    assert_eq!(repriced, Value::Float(999.0));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn wal_records_batches_in_commit_order() {
    let catalog = Catalog::with_wal(Wal::new(Box::new(MemorySink::new())));
    catalog.create_table(item_def()).unwrap();
    for i in 0..5i64 {
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("t{i}"), 1.0f64],
                },
            )])
            .unwrap();
    }
    // The WAL cannot be introspected through the public API other than by
    // verifying recovery works end-to-end via a file sink, so re-log to a file
    // and read it back.
    let dir = std::env::temp_dir().join(format!("shareddb-it-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.wal");
    let _ = std::fs::remove_file(&path);
    let file_catalog = Catalog::with_wal(Wal::new(Box::new(FileSink::create(&path).unwrap())));
    file_catalog.create_table(item_def()).unwrap();
    for i in 0..5i64 {
        file_catalog
            .apply_batch(&[(
                "ITEM".into(),
                UpdateOp::Insert {
                    values: tuple![i, format!("t{i}"), 1.0f64],
                },
            )])
            .unwrap();
    }
    let records = FileSink::read_all(&path).unwrap();
    // 5 batches × (BEGIN + 1 op + COMMIT).
    assert_eq!(records.len(), 15);
    let committed = shareddb::storage::wal::committed_ops(&records);
    assert_eq!(committed.len(), 5);
    assert!(committed.windows(2).all(|w| w[0].0 < w[1].0));
    let _ = std::fs::remove_file(&path);
}

//! Segment-parallel execution equivalence over the SQL conformance corpus.
//!
//! The central invariant of the `scan_segments` refactor: splitting a shared
//! scan into N hash segments executed on the engine's worker pool and
//! recombining the partials per batch is **invisible** — every
//! fanout-eligible statement shape of `tests/sql_corpus/` returns exactly
//! what a 1-segment engine returns, even while writers mutate the tables
//! concurrently. Both engines share one catalog (one MVCC timestamp oracle),
//! and each comparison round pins both executions to one snapshot — the same
//! mechanism the cluster layer uses to make fanout single-snapshot
//! consistent, exercised here one level down.

use shareddb::common::Value;
use shareddb::core::scatter::scatter_spec;
use shareddb::core::{Engine, EngineConfig, SubmitOptions};
use shareddb::sql::SqlCompiler;
use shareddb::storage::Catalog;
use shareddb_bench::conformance::{corpus_catalog, load_corpus, Case, Expectation};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The corpus' positive cases plus a writer statement and an
/// aggregate-control statement, compiled into one shared plan.
fn build_engine(catalog: &Arc<Catalog>, cases: &[Case], segments: usize) -> Engine {
    let mut compiler = SqlCompiler::new(catalog);
    for case in cases {
        compiler
            .add_statement(&case.name, &case.sql)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
    }
    compiler
        .add_statement("bumpOrder", "UPDATE ORDERS SET O_TOTAL = ? WHERE O_ID = ?")
        .unwrap();
    compiler
        .add_statement(
            "orderTotals",
            "SELECT O_STATUS, SUM(O_TOTAL) FROM ORDERS GROUP BY O_STATUS",
        )
        .unwrap();
    let (plan, registry) = compiler.finish();
    Engine::start(
        Arc::clone(catalog),
        plan,
        registry,
        EngineConfig::default().scan_segments(segments),
    )
    .unwrap()
}

fn sorted_rows(outcome: &shareddb::core::QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome.rows().iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn segmented_corpus_matches_unsegmented_under_concurrent_writers() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql_corpus");
    let cases: Vec<Case> = load_corpus(&dir)
        .expect("load corpus")
        .into_iter()
        .filter(|c| matches!(c.expect, Expectation::Rows { .. }))
        .collect();
    let catalog = corpus_catalog();
    // Two engines over ONE catalog: a shared timestamp oracle makes pinned
    // snapshots comparable across them. Writes go through `baseline` only.
    let baseline = build_engine(&catalog, &cases, 1);
    let segmented = build_engine(&catalog, &cases, 4);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let catalog = Arc::clone(&catalog);
        let cases = cases.clone();
        let engine = build_engine(&catalog, &cases, 1);
        std::thread::spawn(move || {
            let mut i: i64 = 0;
            while !stop.load(Ordering::Relaxed) {
                engine
                    .execute_sync(
                        "bumpOrder",
                        &[Value::Float((i % 100) as f64), Value::Int(i % 60)],
                    )
                    .unwrap();
                i += 1;
            }
            i
        })
    };

    // Negative control material: unpinned reads of the mutated aggregate on
    // the segmented engine must observe the writer's interleaving.
    let mut unpinned_observations = std::collections::HashSet::new();

    let mut compared = 0usize;
    for round in 0..25 {
        for case in &cases {
            // Pin both executions to one snapshot; under concurrent writes
            // this is the only way the comparison is meaningful — and it is
            // exactly what cluster fanout does per scattered execution.
            let snapshot = catalog.snapshot();
            let opts = || SubmitOptions {
                pinned_snapshot: Some(snapshot),
                ..SubmitOptions::default()
            };
            let want = baseline
                .submit(&case.name, &case.params, opts())
                .unwrap()
                .wait()
                .unwrap();
            let got = segmented
                .submit(&case.name, &case.params, opts())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                sorted_rows(&want),
                sorted_rows(&got),
                "case {} diverged at round {round}",
                case.name
            );
            compared += 1;
        }
        let control = segmented.execute_sync("orderTotals", &[]).unwrap();
        unpinned_observations.insert(sorted_rows(&control).join("|"));
    }
    stop.store(true, Ordering::Relaxed);
    let writes = writer.join().unwrap();

    assert!(compared >= 25 * 10, "corpus shrank: {compared} comparisons");
    assert!(writes > 0, "writer never ran");
    // Negative control: the writer's updates were observable to unpinned
    // segmented reads — i.e. the equality above is load-bearing, not an
    // artifact of a quiescent catalog.
    assert!(
        unpinned_observations.len() > 1,
        "concurrent writer was never observed; negative control failed"
    );
}

/// The corpus' fanout-eligible shapes actually take the segment lane: the
/// walker recognises a healthy subset of the corpus (join chains, grouped
/// aggregates with HAVING, ordered scans), and the segmented engine records
/// per-segment work for them.
#[test]
fn corpus_has_fanout_eligible_shapes_and_segments_fire() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql_corpus");
    let cases: Vec<Case> = load_corpus(&dir)
        .expect("load corpus")
        .into_iter()
        .filter(|c| matches!(c.expect, Expectation::Rows { .. }))
        .collect();
    let catalog = corpus_catalog();
    let mut compiler = SqlCompiler::new(&catalog);
    for case in &cases {
        compiler.add_statement(&case.name, &case.sql).unwrap();
    }
    let (plan, registry) = compiler.finish();
    let eligible: Vec<String> = registry
        .iter()
        .filter(|s| scatter_spec(&catalog, &plan, s).is_some())
        .map(|s| s.name.clone())
        .collect();
    assert!(
        eligible.len() >= 4,
        "only {} fanout-eligible corpus shapes: {eligible:?}",
        eligible.len()
    );

    let engine = Engine::start(
        Arc::clone(&catalog),
        plan,
        registry,
        EngineConfig::default().scan_segments(3),
    )
    .unwrap();
    for case in &cases {
        engine.execute_sync(&case.name, &case.params).unwrap();
    }
    let segment_stats = engine.segment_stats();
    assert_eq!(segment_stats.len(), 3);
    for s in &segment_stats {
        assert!(
            s.batches >= 1,
            "segment {} never executed for the corpus",
            s.segment
        );
        assert!(s.execute.count >= 1);
    }
}

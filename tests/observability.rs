//! End-to-end observability tests: the `/metrics` Prometheus endpoint served
//! on the binary-protocol port, typed phase-percentile accessors over the
//! wire stats reply, the slow-query log, and stats reset.

use shareddb::client::{Connection, Phase, StatsPhases};
use shareddb::common::{tuple, DataType, Value};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..200i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
];

fn start_server(engine_config: EngineConfig) -> Server {
    Server::start_sql(catalog(), WORKLOAD, engine_config, ServerConfig::default()).unwrap()
}

/// One raw HTTP exchange against the server's wire port; returns the full
/// response (status line, headers, body).
fn http_exchange(addr: std::net::SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// The wire port answers plain HTTP GETs with a well-formed Prometheus text
/// exposition carrying nonzero phase histograms, while binary-protocol
/// sessions stay connected; the typed client accessors see the same phases.
#[test]
fn metrics_endpoint_serves_phase_histograms() {
    const QUERIES: usize = 32;
    let mut server = start_server(EngineConfig::default());
    let addr = server.local_addr();

    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        let outcome = conn
            .execute(&prepared, &[Value::Int(i as i64 % 200)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 1);
    }

    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "unexpected status: {}",
        response.lines().next().unwrap_or("")
    );
    let body = response.split_once("\r\n\r\n").unwrap().1;

    // Well-formed exposition: every line is a comment or `name[{labels}] value`
    // with a parseable numeric value.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed exposition line: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample in line: {line:?}"
        );
        assert!(
            series.chars().next().unwrap().is_ascii_alphabetic(),
            "bad series name in line: {line:?}"
        );
    }
    // The phase histograms for the exercised statement are present and
    // nonzero, on the replica, and the frontend flush phase exists.
    let count_of = |needle: &str| -> u64 {
        body.lines()
            .find(|l| l.contains(needle) && l.contains("_count"))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    for phase in ["admission", "batch_wait", "execute", "total"] {
        let series = format!("replica=\"0\",statement=\"getItem\",phase=\"{phase}\"");
        assert_eq!(count_of(&series), QUERIES as u64, "phase {phase}");
    }
    assert_eq!(
        count_of("replica=\"frontend\",statement=\"getItem\",phase=\"flush\""),
        QUERIES as u64
    );
    assert!(body.contains("shareddb_metrics_scrapes 1"));

    // The still-open binary session keeps working after the scrape, and its
    // typed stats accessors agree with the exposition.
    let outcome = conn.execute(&prepared, &[Value::Int(7)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let stats = conn.stats().unwrap();
    let execute = stats
        .replica_phase(0, "getItem", Phase::Execute)
        .expect("execute phase");
    assert_eq!(execute.count, QUERIES as u64 + 1);
    assert!(execute.p50 <= execute.p95);
    assert!(execute.p95 <= execute.p99);
    assert!(execute.p99 <= execute.max);
    assert!(execute.mean <= execute.max);
    let flush = stats
        .cluster_phase("getItem", Phase::Flush)
        .expect("flush phase");
    assert!(flush.count >= QUERIES as u64);
    assert!(stats.replica_phase(0, "getItem", Phase::Scatter).is_none());

    let _ = conn.close();
    server.shutdown();
}

/// Malformed HTTP on the shared port gets clean error responses without
/// disturbing binary sessions: 404 unknown path, 405 non-GET, 400 garbled
/// request line, 400 oversized header block.
#[test]
fn metrics_endpoint_rejects_malformed_http() {
    let mut server = start_server(EngineConfig::default());
    let addr = server.local_addr();

    // A live binary session that must survive all the HTTP noise below.
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();

    let not_found = http_exchange(addr, b"GET /other HTTP/1.1\r\n\r\n");
    assert!(not_found.starts_with("HTTP/1.1 404"), "{not_found}");

    let bad_method = http_exchange(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.1 405"), "{bad_method}");

    let garbled = http_exchange(addr, b"GET /metrics BADPROTO\r\n\r\n");
    assert!(garbled.starts_with("HTTP/1.1 400"), "{garbled}");

    let no_slash = http_exchange(addr, b"GET metrics HTTP/1.1\r\n\r\n");
    assert!(no_slash.starts_with("HTTP/1.1 400"), "{no_slash}");

    // Header block larger than the 8 KiB cap, never terminated: the server
    // answers 400 instead of buffering forever.
    let mut oversized = b"GET /metrics HTTP/1.1\r\n".to_vec();
    while oversized.len() <= 9 * 1024 {
        oversized.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let too_large = http_exchange(addr, &oversized);
    assert!(too_large.starts_with("HTTP/1.1 400"), "{too_large}");

    // HEAD is allowed and returns headers only.
    let head = http_exchange(addr, b"HEAD /metrics HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(head.split_once("\r\n\r\n").unwrap().1, "");

    let outcome = conn.execute(&prepared, &[Value::Int(3)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let _ = conn.close();
    server.shutdown();
}

/// The slow-query log fires exactly once per offending statement — every
/// execution with a sub-microsecond threshold, none with a huge one — and
/// each record carries the full phase breakdown.
#[test]
fn slow_query_log_fires_exactly_for_offenders() {
    const QUERIES: usize = 12;

    // Threshold below any possible latency: every statement is an offender.
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_nanos(1))));
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        conn.execute(&prepared, &[Value::Int(i as i64)]).unwrap();
    }
    let (count, records) = server.slow_queries().unwrap();
    assert_eq!(count, QUERIES as u64);
    assert_eq!(records.len(), QUERIES);
    for record in &records {
        assert_eq!(record.statement, "getItem");
        assert!(record.total >= record.batch_wait);
        assert!(record.total >= record.execute);
        assert!(record.total >= Duration::from_nanos(1));
    }
    // The exposition carries the counter.
    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert!(response.contains(&format!("shareddb_slow_queries {QUERIES}")));
    let _ = conn.close();
    server.shutdown();

    // Threshold far above anything this test can produce: log stays empty.
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_secs(3600))));
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        conn.execute(&prepared, &[Value::Int(i as i64)]).unwrap();
    }
    let (count, records) = server.slow_queries().unwrap();
    assert_eq!(count, 0);
    assert!(records.is_empty());
    let _ = conn.close();
    server.shutdown();
}

/// `reset_stats` zeroes engine counters, phase histograms and the frontend
/// flush table, so bench sweep points measure only their own window.
#[test]
fn reset_stats_clears_every_surface() {
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_nanos(1))));
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..8 {
        conn.execute(&prepared, &[Value::Int(i)]).unwrap();
    }
    assert!(server.engine_stats().unwrap().queries >= 8);
    assert!(!server.flush_phase_stats().is_empty());

    server.reset_stats();

    let stats = server.engine_stats().unwrap();
    assert_eq!(stats.queries, 0);
    assert_eq!(stats.batches, 0);
    assert!(stats.histogram.is_empty());
    assert!(server.flush_phase_stats().is_empty());
    assert_eq!(server.slow_queries().unwrap().0, 0);
    let phases = server.replica_phase_stats().unwrap();
    assert!(phases.iter().all(|statements| statements.is_empty()));

    // The engine keeps serving after a reset, and new work is counted fresh.
    conn.execute(&prepared, &[Value::Int(1)]).unwrap();
    assert_eq!(server.engine_stats().unwrap().queries, 1);
    let _ = conn.close();
    server.shutdown();
}

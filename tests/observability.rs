//! End-to-end observability tests: the `/metrics` Prometheus endpoint served
//! on the binary-protocol port, typed phase-percentile accessors over the
//! wire stats reply, the slow-query log, and stats reset.

use shareddb::client::{Connection, Phase, StatsPhases};
use shareddb::common::{tuple, DataType, Value};
use shareddb::core::EngineConfig;
use shareddb::server::{Server, ServerConfig};
use shareddb::storage::{Catalog, TableDef};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog
        .create_table(
            TableDef::new("ITEM")
                .column("I_ID", DataType::Int)
                .column("I_TITLE", DataType::Text)
                .column("I_COST", DataType::Float)
                .primary_key(&["I_ID"]),
        )
        .unwrap();
    catalog
        .bulk_load(
            "ITEM",
            (0..200i64)
                .map(|i| tuple![i, format!("title{i}"), (i % 50) as f64])
                .collect(),
        )
        .unwrap();
    Arc::new(catalog)
}

const WORKLOAD: &[(&str, &str)] = &[
    ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
    ("addItem", "INSERT INTO ITEM VALUES (?, ?, ?)"),
];

fn start_server(engine_config: EngineConfig) -> Server {
    Server::start_sql(catalog(), WORKLOAD, engine_config, ServerConfig::default()).unwrap()
}

/// One raw HTTP exchange against the server's wire port; returns the full
/// response (status line, headers, body).
fn http_exchange(addr: std::net::SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// The wire port answers plain HTTP GETs with a well-formed Prometheus text
/// exposition carrying nonzero phase histograms, while binary-protocol
/// sessions stay connected; the typed client accessors see the same phases.
#[test]
fn metrics_endpoint_serves_phase_histograms() {
    const QUERIES: usize = 32;
    let mut server = start_server(EngineConfig::default());
    let addr = server.local_addr();

    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        let outcome = conn
            .execute(&prepared, &[Value::Int(i as i64 % 200)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 1);
    }

    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "unexpected status: {}",
        response.lines().next().unwrap_or("")
    );
    let body = response.split_once("\r\n\r\n").unwrap().1;

    // Well-formed exposition: every line is a comment or `name[{labels}] value`
    // with a parseable numeric value.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed exposition line: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample in line: {line:?}"
        );
        assert!(
            series.chars().next().unwrap().is_ascii_alphabetic(),
            "bad series name in line: {line:?}"
        );
    }
    // The phase histograms for the exercised statement are present and
    // nonzero, on the replica, and the frontend flush phase exists.
    let count_of = |needle: &str| -> u64 {
        body.lines()
            .find(|l| l.contains(needle) && l.contains("_count"))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    for phase in ["admission", "batch_wait", "execute", "total"] {
        let series = format!("replica=\"0\",statement=\"getItem\",phase=\"{phase}\"");
        assert_eq!(count_of(&series), QUERIES as u64, "phase {phase}");
    }
    assert_eq!(
        count_of("replica=\"frontend\",statement=\"getItem\",phase=\"flush\""),
        QUERIES as u64
    );
    assert!(body.contains("shareddb_metrics_scrapes 1"));

    // The still-open binary session keeps working after the scrape, and its
    // typed stats accessors agree with the exposition.
    let outcome = conn.execute(&prepared, &[Value::Int(7)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let stats = conn.stats().unwrap();
    let execute = stats
        .replica_phase(0, "getItem", Phase::Execute)
        .expect("execute phase");
    assert_eq!(execute.count, QUERIES as u64 + 1);
    assert!(execute.p50 <= execute.p95);
    assert!(execute.p95 <= execute.p99);
    assert!(execute.p99 <= execute.max);
    assert!(execute.mean <= execute.max);
    let flush = stats
        .cluster_phase("getItem", Phase::Flush)
        .expect("flush phase");
    assert!(flush.count >= QUERIES as u64);
    assert!(stats.replica_phase(0, "getItem", Phase::Scatter).is_none());

    let _ = conn.close();
    server.shutdown();
}

/// Malformed HTTP on the shared port gets clean error responses without
/// disturbing binary sessions: 404 unknown path, 405 non-GET, 400 garbled
/// request line, 400 oversized header block.
#[test]
fn metrics_endpoint_rejects_malformed_http() {
    let mut server = start_server(EngineConfig::default());
    let addr = server.local_addr();

    // A live binary session that must survive all the HTTP noise below.
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();

    let not_found = http_exchange(addr, b"GET /other HTTP/1.1\r\n\r\n");
    assert!(not_found.starts_with("HTTP/1.1 404"), "{not_found}");

    let bad_method = http_exchange(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.1 405"), "{bad_method}");

    let garbled = http_exchange(addr, b"GET /metrics BADPROTO\r\n\r\n");
    assert!(garbled.starts_with("HTTP/1.1 400"), "{garbled}");

    let no_slash = http_exchange(addr, b"GET metrics HTTP/1.1\r\n\r\n");
    assert!(no_slash.starts_with("HTTP/1.1 400"), "{no_slash}");

    // Header block larger than the 8 KiB cap, never terminated: the server
    // answers 400 instead of buffering forever.
    let mut oversized = b"GET /metrics HTTP/1.1\r\n".to_vec();
    while oversized.len() <= 9 * 1024 {
        oversized.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let too_large = http_exchange(addr, &oversized);
    assert!(too_large.starts_with("HTTP/1.1 400"), "{too_large}");

    // HEAD is allowed and returns headers only.
    let head = http_exchange(addr, b"HEAD /metrics HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(head.split_once("\r\n\r\n").unwrap().1, "");

    let outcome = conn.execute(&prepared, &[Value::Int(3)]).unwrap();
    assert_eq!(outcome.rows().len(), 1);
    let _ = conn.close();
    server.shutdown();
}

/// The slow-query log fires exactly once per offending statement — every
/// execution with a sub-microsecond threshold, none with a huge one — and
/// each record carries the full phase breakdown.
#[test]
fn slow_query_log_fires_exactly_for_offenders() {
    const QUERIES: usize = 12;

    // Threshold below any possible latency: every statement is an offender.
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_nanos(1))));
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        conn.execute(&prepared, &[Value::Int(i as i64)]).unwrap();
    }
    let (count, records) = server.slow_queries().unwrap();
    assert_eq!(count, QUERIES as u64);
    assert_eq!(records.len(), QUERIES);
    for record in &records {
        assert_eq!(record.statement, "getItem");
        assert!(record.total >= record.batch_wait);
        assert!(record.total >= record.execute);
        assert!(record.total >= Duration::from_nanos(1));
    }
    // The exposition carries the counter.
    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert!(response.contains(&format!("shareddb_slow_queries {QUERIES}")));
    let _ = conn.close();
    server.shutdown();

    // Threshold far above anything this test can produce: log stays empty.
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_secs(3600))));
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..QUERIES {
        conn.execute(&prepared, &[Value::Int(i as i64)]).unwrap();
    }
    let (count, records) = server.slow_queries().unwrap();
    assert_eq!(count, 0);
    assert!(records.is_empty());
    let _ = conn.close();
    server.shutdown();
}

/// EXPLAIN / EXPLAIN ANALYZE over the wire: the dedicated frame returns the
/// statement's slice of the live global plan with sharing sets, and ANALYZE
/// folds in runtime counters plus per-statement-type cost attribution. The
/// textual `EXPLAIN <stmt>` form through the ordinary query path returns the
/// same rendering as a one-column result set.
#[test]
fn explain_analyze_shows_shared_scan_with_attributed_costs() {
    const SHARED: &[(&str, &str)] = &[
        ("getItem", "SELECT * FROM ITEM WHERE I_ID = ?"),
        ("cheapItems", "SELECT * FROM ITEM WHERE I_COST < ?"),
        ("titledItems", "SELECT * FROM ITEM WHERE I_TITLE = ?"),
    ];
    let mut server = Server::start_sql(
        catalog(),
        SHARED,
        EngineConfig::default(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let cheap = conn.prepare("cheapItems").unwrap();
    let titled = conn.prepare("titledItems").unwrap();
    for i in 0..12i64 {
        conn.execute(&cheap, &[Value::Float(5.0)]).unwrap();
        conn.execute(&titled, &[Value::text(format!("title{i}"))])
            .unwrap();
    }

    // Static EXPLAIN: plan shape + sharing sets, no runtime numbers needed.
    let explain = conn.explain("cheapItems", false).unwrap();
    assert_eq!(explain.statement, "cheapItems");
    assert!(!explain.analyze);
    assert!(!explain.nodes.is_empty());
    assert_eq!(
        explain.text.lines().next().unwrap_or(""),
        "statement cheapItems: query"
    );
    // Both full-scan statement types share ITEM's scan operator.
    let scan_op = explain
        .shared_nodes()
        .iter()
        .find(|n| n.sharing.iter().any(|s| s == "titledItems"))
        .map(|n| n.operator)
        .unwrap_or_else(|| panic!("no operator shared with titledItems in {explain:?}"));
    assert!(explain.sharing_factor(scan_op) >= 2);

    // EXPLAIN ANALYZE: live counters and attribution on the same operator.
    let explain = conn.explain("cheapItems", true).unwrap();
    assert!(explain.analyze);
    let scan = explain.node(scan_op).expect("same operator under analyze");
    assert!(scan.cycles > 0, "no heartbeat cycles recorded: {scan:?}");
    assert!(scan.tuples > 0, "shared scan produced no tuples: {scan:?}");
    for statement in ["cheapItems", "titledItems"] {
        let cost = scan
            .attributed
            .iter()
            .find(|c| c.statement == statement)
            .unwrap_or_else(|| panic!("no attribution for {statement} on {scan:?}"));
        assert!(cost.activations >= 12, "{statement}: {cost:?}");
        assert!(cost.rows > 0, "{statement}: {cost:?}");
    }
    // Attribution is a decomposition of the operator's busy time: the
    // per-statement parts (plus idle) sum back to the total. The two
    // snapshots are taken microseconds apart, so allow a small skew on top
    // of per-entry truncation.
    let attributed_total: u64 = scan.attributed.iter().map(|c| c.busy_us).sum();
    let delta = attributed_total.abs_diff(scan.busy_us);
    assert!(
        delta <= 5_000,
        "attributed busy {attributed_total}us drifted from operator busy {}us",
        scan.busy_us
    );
    // The rendered text carries the attribution lines.
    assert!(
        explain.text.contains("attributed cheapItems:"),
        "{}",
        explain.text
    );

    // Textual EXPLAIN through the ordinary query path: one PLAN column, one
    // row per rendered line, resolved by statement name...
    let outcome = conn.query("EXPLAIN cheapItems").unwrap();
    let lines: Vec<String> = outcome
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Text(t) => t.to_string(),
            other => panic!("non-text PLAN cell {other:?}"),
        })
        .collect();
    assert_eq!(
        lines.first().map(String::as_str),
        Some("statement cheapItems: query")
    );
    // ...or by ad-hoc SQL text canonicalised onto a known statement type.
    conn.query("SELECT * FROM ITEM WHERE I_ID = 42").unwrap();
    let outcome = conn
        .query("EXPLAIN SELECT * FROM ITEM WHERE I_ID = 13")
        .unwrap();
    assert!(!outcome.rows().is_empty());
    // Unknown text is a clean error, not a wedge.
    assert!(conn.query("EXPLAIN doesNotExist").is_err());
    let outcome = conn.query("SELECT * FROM ITEM WHERE I_ID = 7").unwrap();
    assert_eq!(
        outcome.rows().len(),
        1,
        "session broken after EXPLAIN error"
    );

    let _ = conn.close();
    server.shutdown();
}

/// Statement names carrying quotes and backslashes must be escaped in every
/// label of the exposition — a raw `"` inside a label value breaks the whole
/// scrape for the collector.
#[test]
fn metrics_escape_labels_with_quotes_and_backslashes() {
    const NAME: &str = "weird\"stmt\\name";
    let mut server = Server::start_sql(
        catalog(),
        &[(NAME, "SELECT * FROM ITEM WHERE I_ID = ?")],
        EngineConfig::default(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare(NAME).unwrap();
    for i in 0..4 {
        conn.execute(&prepared, &[Value::Int(i)]).unwrap();
    }
    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let body = response.split_once("\r\n\r\n").unwrap().1;
    let escaped = "statement=\"weird\\\"stmt\\\\name\"";
    assert!(
        body.contains(escaped),
        "escaped statement label missing from exposition"
    );
    assert!(
        !body.contains(NAME),
        "raw unescaped statement name leaked into the exposition"
    );
    let _ = conn.close();
    server.shutdown();
}

/// Slow-query records carry the routed replica and the segment-lane count:
/// on a 3-replica cluster with a sub-microsecond threshold, the offenders
/// land on more than one replica and every record reports its lanes.
#[test]
fn slow_query_records_carry_replica_and_segments() {
    use shareddb::cluster::ClusterConfig;
    let mut server = Server::start_sql(
        catalog(),
        WORKLOAD,
        EngineConfig::default().slow_query(Some(Duration::from_nanos(1))),
        ServerConfig {
            cluster: ClusterConfig {
                replicas: 3,
                replicate_statements: vec!["getItem".into()],
                ..ClusterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..48 {
        conn.execute(&prepared, &[Value::Int(i)]).unwrap();
    }
    let (count, records) = server.slow_queries().unwrap();
    assert_eq!(count, 48);
    let mut replicas_seen = std::collections::HashSet::new();
    for record in &records {
        assert!(record.replica < 3, "replica out of range: {record:?}");
        assert!(record.segments >= 1, "no segment count: {record:?}");
        replicas_seen.insert(record.replica);
    }
    assert!(
        replicas_seen.len() > 1,
        "hash routing left every slow record on one replica: {replicas_seen:?}"
    );
    let _ = conn.close();
    server.shutdown();
}

/// The PR's acceptance shape on `/metrics`: with two statement types sharing
/// one scan, the exposition carries the sharing factor, a per-type attributed
/// busy series for both types on that operator, and the attributed parts sum
/// back to `shareddb_operator_busy_us` within snapshot skew; the batch
/// occupancy summary is present and counted.
#[test]
fn attributed_busy_sums_to_operator_busy_in_metrics() {
    const SHARED: &[(&str, &str)] = &[
        ("cheapItems", "SELECT * FROM ITEM WHERE I_COST < ?"),
        ("titledItems", "SELECT * FROM ITEM WHERE I_TITLE = ?"),
    ];
    let mut server = Server::start_sql(
        catalog(),
        SHARED,
        EngineConfig::default(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let cheap = conn.prepare("cheapItems").unwrap();
    let titled = conn.prepare("titledItems").unwrap();
    for i in 0..24i64 {
        conn.execute(&cheap, &[Value::Float(10.0)]).unwrap();
        conn.execute(&titled, &[Value::text(format!("title{i}"))])
            .unwrap();
    }

    let response = http_exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let body = response.split_once("\r\n\r\n").unwrap().1;

    // Pull a label value out of a series line (no escaping in this fixture).
    fn label<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(&format!("{key}=\""))? + key.len() + 2;
        let end = start + line[start..].find('"')?;
        Some(&line[start..end])
    }
    fn value(line: &str) -> u64 {
        line.rsplit_once(' ')
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("bad sample line {line:?}"))
    }

    use std::collections::HashMap;
    let mut busy: HashMap<String, u64> = HashMap::new();
    let mut attributed: HashMap<String, u64> = HashMap::new();
    let mut types_on: HashMap<String, Vec<String>> = HashMap::new();
    let mut sharing: HashMap<String, u64> = HashMap::new();
    for line in body.lines() {
        if line.starts_with("shareddb_operator_busy_us{") {
            *busy
                .entry(label(line, "operator").unwrap().into())
                .or_default() += value(line);
        } else if line.starts_with("shareddb_attributed_busy_us{") {
            let op: String = label(line, "operator").unwrap().into();
            *attributed.entry(op.clone()).or_default() += value(line);
            types_on
                .entry(op)
                .or_default()
                .push(label(line, "stmt_type").unwrap().into());
        } else if line.starts_with("shareddb_operator_sharing_factor{") {
            sharing.insert(label(line, "operator").unwrap().into(), value(line));
        }
    }

    // At least one operator is shared by both statement types with nonzero
    // per-type attributed busy time — the scan they both activate.
    let shared_scan = types_on
        .iter()
        .find(|(_, types)| {
            types.contains(&"cheapItems".to_string()) && types.contains(&"titledItems".to_string())
        })
        .map(|(op, _)| op.clone())
        .unwrap_or_else(|| panic!("no operator attributed to both types: {types_on:?}"));
    assert!(
        sharing.get(&shared_scan).copied().unwrap_or(0) >= 2,
        "sharing factor missing for {shared_scan}: {sharing:?}"
    );
    for line in body.lines() {
        if line.starts_with("shareddb_attributed_busy_us{")
            && label(line, "operator") == Some(&shared_scan)
            && label(line, "stmt_type") != Some("_idle")
        {
            assert!(value(line) > 0, "zero attributed busy: {line}");
        }
    }

    // Decomposition: per operator, attributed parts sum back to the
    // operator's busy counter (truncation + the µs-scale gap between the
    // two snapshots inside one scrape).
    assert!(!attributed.is_empty());
    for (op, total) in &attributed {
        let operator_busy = *busy
            .get(op)
            .unwrap_or_else(|| panic!("attributed {op} has no busy series"));
        assert!(
            total.abs_diff(operator_busy) <= 5_000,
            "{op}: attributed {total}us vs operator busy {operator_busy}us"
        );
    }

    // Batch occupancy summary: present, counted, and a plausible mean.
    let occupancy_count = body
        .lines()
        .find(|l| l.starts_with("shareddb_batch_occupancy_count{replica=\"0\"}"))
        .map(value)
        .expect("batch occupancy count missing");
    assert!(occupancy_count > 0);
    let occupancy_sum = body
        .lines()
        .find(|l| l.starts_with("shareddb_batch_occupancy_sum{replica=\"0\"}"))
        .map(value)
        .expect("batch occupancy sum missing");
    assert!(occupancy_sum >= 48, "48 statements ran: {occupancy_sum}");

    let _ = conn.close();
    server.shutdown();
}

/// `reset_stats` zeroes engine counters, phase histograms and the frontend
/// flush table, so bench sweep points measure only their own window.
#[test]
fn reset_stats_clears_every_surface() {
    let mut server =
        start_server(EngineConfig::default().slow_query(Some(Duration::from_nanos(1))));
    let addr = server.local_addr();
    let mut conn = Connection::connect(addr).unwrap();
    let prepared = conn.prepare("getItem").unwrap();
    for i in 0..8 {
        conn.execute(&prepared, &[Value::Int(i)]).unwrap();
    }
    assert!(server.engine_stats().unwrap().queries >= 8);
    assert!(!server.flush_phase_stats().is_empty());

    server.reset_stats();

    let stats = server.engine_stats().unwrap();
    assert_eq!(stats.queries, 0);
    assert_eq!(stats.batches, 0);
    assert!(stats.histogram.is_empty());
    assert!(server.flush_phase_stats().is_empty());
    assert_eq!(server.slow_queries().unwrap().0, 0);
    let phases = server.replica_phase_stats().unwrap();
    assert!(phases.iter().all(|statements| statements.is_empty()));

    // The engine keeps serving after a reset, and new work is counted fresh.
    conn.execute(&prepared, &[Value::Int(1)]).unwrap();
    assert_eq!(server.engine_stats().unwrap().queries, 1);
    let _ = conn.close();
    server.shutdown();
}

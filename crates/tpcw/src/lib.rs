//! # shareddb-tpcw
//!
//! The TPC-W benchmark used in the paper's evaluation (Section 5): an online
//! bookstore with fourteen web interactions, three workload mixes and a
//! WIPS (successful Web Interactions Per Second) metric.
//!
//! * [`schema`] — the base tables, indexes and the synthetic data generator.
//! * [`plans`] — the SharedDB global plan (Figure 6) and the equivalent
//!   per-query plans for the query-at-a-time baselines, registered under
//!   identical statement names.
//! * [`workload`] — the fourteen web interactions, the Browsing / Shopping /
//!   Ordering mixes, and parameter generation.
//! * [`driver`] — emulated-browser workload driver measuring WIPS under
//!   response-time limits, with adapters for SharedDB and the baselines.
//! * [`remote`] — a driver adapter running the workload over the
//!   `shareddb-server` wire protocol instead of in-process.

pub mod driver;
pub mod plans;
pub mod remote;
pub mod schema;
pub mod workload;

pub use driver::{
    run_single_interaction, run_workload, BaselineSystem, DriverConfig, DriverReport,
    SharedDbSystem, TpcwDatabase,
};
pub use plans::{build_shared_plan, register_baseline_statements, statement_names, PAGE_SIZE};
pub use remote::RemoteSystem;
pub use schema::{build_catalog, create_schema, load_data, TpcwScale, SUBJECTS};
pub use workload::{Mix, ParamGenerator, StatementCall, WebInteraction, ALL_INTERACTIONS};

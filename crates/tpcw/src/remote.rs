//! TPC-W over the network: a [`TpcwDatabase`] adapter backed by the
//! `shareddb-client` wire protocol, so the workload driver exercises the full
//! socket → session → admission queue → batch → Γ(query_id) path instead of
//! calling the engine in-process.
//!
//! The adapter keeps a pool of connections (the driver calls
//! [`TpcwDatabase::execute`] from many client threads) with per-connection
//! prepared-statement caches, and honours the wire protocol's backpressure
//! contract: a *retryable* rejection is retried with a short backoff until the
//! interaction's deadline expires.

use crate::driver::TpcwDatabase;
use shareddb_client::{Connection, Outcome, Prepared};
use shareddb_common::{Error, Result, Value};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct PooledConnection {
    conn: Connection,
    prepared: HashMap<String, Prepared>,
}

/// A TPC-W system-under-test reached over the SharedDB wire protocol.
pub struct RemoteSystem {
    addr: SocketAddr,
    pool: Mutex<Vec<PooledConnection>>,
}

impl RemoteSystem {
    /// Creates an adapter for the server at `addr`. The first connection is
    /// opened eagerly so an unreachable or refusing server surfaces as an
    /// error here (propagated through the driver's setup) instead of a panic
    /// in the middle of the run; further connections are opened lazily, one
    /// per concurrently executing driver thread.
    pub fn connect(addr: SocketAddr) -> Result<RemoteSystem> {
        let probe = PooledConnection {
            conn: Connection::connect_named(addr, "tpcw-driver")?,
            prepared: HashMap::new(),
        };
        Ok(RemoteSystem {
            addr,
            pool: Mutex::new(vec![probe]),
        })
    }

    fn checkout(&self) -> Result<PooledConnection> {
        if let Some(pooled) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(pooled);
        }
        Ok(PooledConnection {
            conn: Connection::connect_named(self.addr, "tpcw-driver")?,
            prepared: HashMap::new(),
        })
    }

    fn checkin(&self, pooled: PooledConnection) {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(pooled);
    }
}

impl TpcwDatabase for RemoteSystem {
    fn system_name(&self) -> String {
        "SharedDB/net".to_string()
    }

    fn execute(&self, statement: &str, params: &[Value], deadline: Duration) -> Result<usize> {
        let started = Instant::now();
        let mut pooled = self.checkout()?;
        let prepared = match pooled.prepared.get(statement) {
            Some(p) => p.clone(),
            None => {
                let p = pooled.conn.prepare(statement)?;
                pooled.prepared.insert(statement.to_string(), p.clone());
                p
            }
        };
        loop {
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                return Err(Error::DeadlineExceeded);
            }
            match pooled
                .conn
                .execute_with_deadline(&prepared, params, remaining)
            {
                Ok(Outcome::Rows(rs)) => {
                    self.checkin(pooled);
                    return Ok(rs.len());
                }
                Ok(Outcome::Updated { .. }) => {
                    self.checkin(pooled);
                    return Ok(0);
                }
                // Backpressure: back off briefly and retry within the deadline.
                Err(e) if e.is_retryable() => {
                    std::thread::sleep(Duration::from_millis(1).min(remaining));
                    continue;
                }
                Err(Error::DeadlineExceeded) => {
                    // The connection may have a response in flight; drop it.
                    return Err(Error::DeadlineExceeded);
                }
                Err(e) => {
                    if e.is_user_error() {
                        // The connection is still in sync; keep it.
                        self.checkin(pooled);
                    }
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, DriverConfig};
    use crate::plans::build_shared_plan;
    use crate::schema::{build_catalog, TpcwScale};
    use crate::workload::Mix;
    use shareddb_core::EngineConfig;
    use shareddb_server::{Server, ServerConfig};
    use std::sync::Arc;

    fn start_server() -> Server {
        let scale = TpcwScale::tiny();
        let catalog = Arc::new(build_catalog(&scale).unwrap());
        let (plan, registry) = build_shared_plan(&catalog).unwrap();
        Server::start(
            catalog,
            plan,
            registry,
            EngineConfig::default(),
            ServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn tpcw_point_query_over_the_wire() {
        let mut server = start_server();
        let db = RemoteSystem::connect(server.local_addr()).unwrap();
        let rows = db
            .execute("getItemById", &[Value::Int(1)], Duration::from_secs(10))
            .unwrap();
        assert_eq!(rows, 1);
        assert_eq!(db.system_name(), "SharedDB/net");
        server.shutdown();
    }

    #[test]
    fn tpcw_mix_runs_over_the_wire() {
        let mut server = start_server();
        let scale = TpcwScale::tiny();
        let db = RemoteSystem::connect(server.local_addr()).unwrap();
        let config = DriverConfig {
            mix: Mix::Shopping,
            emulated_browsers: 40,
            think_time: Duration::from_millis(100),
            duration: Duration::from_millis(500),
            client_threads: 4,
            time_limit_scale: 1.0,
            seed: 21,
        };
        let report = run_workload(&db, &scale, &config);
        assert!(report.attempted > 0);
        assert!(report.successful > 0, "report: {report:?}");
        assert_eq!(report.failed, 0, "report: {report:?}");
        // The server really batched the concurrent interactions.
        let stats = server.engine_stats().unwrap();
        assert!(stats.batches > 0);
        assert!(stats.queries + stats.updates >= report.successful);
        server.shutdown();
    }

    /// A refused connection is a clean error from `connect`, not a panic in
    /// the driver.
    #[test]
    fn refused_connection_is_an_error() {
        // Bind a listener to reserve a free port, then drop it so the
        // connection is refused.
        let addr = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        match RemoteSystem::connect(addr) {
            Err(Error::Io(_)) => {}
            Err(other) => panic!("expected an I/O error, got {other:?}"),
            Ok(_) => panic!("connect to a closed port succeeded"),
        }
    }
}

//! The workload driver: emulated browsers, offered-load control and WIPS
//! measurement.
//!
//! The paper's clients are emulated browsers (EBs) with an exponentially
//! distributed think time (mean 7 s) issuing web interactions against the
//! database tier; the metric is the number of *successful* web interactions
//! per second (WIPS), where an interaction only counts if it finishes within
//! its TPC-W response-time limit (Section 5.1).
//!
//! The reproduction uses an open-loop driver: the offered load implied by a
//! number of EBs (`EBs / think_time`) is translated into a target arrival
//! rate, and a pool of client threads issues interactions on that schedule.
//! Interactions that miss their (scaled) response-time limit count as timed
//! out. This preserves the quantity the figures plot — successful throughput
//! as a function of offered load — without emulating a multi-machine client
//! tier (see DESIGN.md, substitutions).

use crate::plans;
use crate::schema::TpcwScale;
use crate::workload::{Mix, ParamGenerator, WebInteraction};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shareddb_baseline::{ClassicEngine, EngineProfile};
use shareddb_common::{Result, Value};
use shareddb_core::{Engine, EngineConfig};
use shareddb_storage::Catalog;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A database system under test: SharedDB or one of the baselines.
pub trait TpcwDatabase: Send + Sync {
    /// Human-readable system name used in reports.
    fn system_name(&self) -> String;
    /// Executes one prepared statement and returns the number of result rows
    /// (0 for updates). Must respect the deadline.
    fn execute(&self, statement: &str, params: &[Value], deadline: Duration) -> Result<usize>;
}

/// SharedDB adapter.
pub struct SharedDbSystem {
    engine: Engine,
}

impl SharedDbSystem {
    /// Builds the TPC-W global plan over `catalog` and starts the engine.
    pub fn new(catalog: Arc<Catalog>, config: EngineConfig) -> Result<Self> {
        let (plan, registry) = plans::build_shared_plan(&catalog)?;
        let engine = Engine::start(catalog, plan, registry, config)?;
        Ok(SharedDbSystem { engine })
    }

    /// Access to the underlying engine (statistics, plan inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl TpcwDatabase for SharedDbSystem {
    fn system_name(&self) -> String {
        "SharedDB".to_string()
    }
    fn execute(&self, statement: &str, params: &[Value], deadline: Duration) -> Result<usize> {
        let handle = self.engine.execute(statement, params)?;
        let outcome = handle.wait_timeout(deadline)?;
        Ok(outcome.rows().len())
    }
}

/// Query-at-a-time baseline adapter.
pub struct BaselineSystem {
    engine: ClassicEngine,
}

impl BaselineSystem {
    /// Starts a baseline engine with the given profile and worker count and
    /// registers the TPC-W statements.
    pub fn new(catalog: Arc<Catalog>, profile: EngineProfile, workers: usize) -> Self {
        let engine = ClassicEngine::start(catalog, profile, workers);
        plans::register_baseline_statements(&engine);
        BaselineSystem { engine }
    }

    /// Access to the underlying engine.
    pub fn engine(&self) -> &ClassicEngine {
        &self.engine
    }
}

impl TpcwDatabase for BaselineSystem {
    fn system_name(&self) -> String {
        self.engine.profile().system_name().to_string()
    }
    fn execute(&self, statement: &str, params: &[Value], deadline: Duration) -> Result<usize> {
        let handle = self.engine.execute(statement, params)?;
        let rows = handle.wait_timeout(deadline)?;
        Ok(rows.len())
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Workload mix.
    pub mix: Mix,
    /// Number of emulated browsers generating load.
    pub emulated_browsers: usize,
    /// Mean think time of one emulated browser. The TPC-W value is 7 s; the
    /// reproduction scales it down so laptop-scale runs exercise the same
    /// offered-load range in seconds instead of hours.
    pub think_time: Duration,
    /// Measurement duration.
    pub duration: Duration,
    /// Number of client worker threads issuing interactions.
    pub client_threads: usize,
    /// Scale factor applied to the TPC-W response-time limits (1.0 keeps the
    /// 3–5 s limits of the specification).
    pub time_limit_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            mix: Mix::Shopping,
            emulated_browsers: 100,
            think_time: Duration::from_millis(100),
            duration: Duration::from_secs(2),
            client_threads: 16,
            time_limit_scale: 1.0,
            seed: 1,
        }
    }
}

impl DriverConfig {
    /// Offered load in web interactions per second implied by the EB count
    /// and think time.
    pub fn offered_rate(&self) -> f64 {
        self.emulated_browsers as f64 / self.think_time.as_secs_f64()
    }
}

/// Result of one driver run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// System under test.
    pub system: String,
    /// Mix used.
    pub mix: &'static str,
    /// Emulated browsers.
    pub emulated_browsers: usize,
    /// Offered interactions per second.
    pub offered_rate: f64,
    /// Successful web interactions per second (the WIPS metric).
    pub wips: f64,
    /// Attempted interactions.
    pub attempted: u64,
    /// Successful interactions (within the response-time limit).
    pub successful: u64,
    /// Interactions that missed their deadline.
    pub timed_out: u64,
    /// Interactions that failed with an error.
    pub failed: u64,
    /// Mean latency of successful interactions.
    pub mean_latency: Duration,
}

/// Runs one measurement of a system under the given configuration.
pub fn run_workload(
    db: &dyn TpcwDatabase,
    scale: &TpcwScale,
    config: &DriverConfig,
) -> DriverReport {
    let generator = Arc::new(ParamGenerator::new(scale));
    let attempted = Arc::new(AtomicU64::new(0));
    let successful = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let latency_nanos = Arc::new(AtomicU64::new(0));
    let schedule_slot = Arc::new(AtomicUsize::new(0));

    let interarrival = Duration::from_secs_f64(1.0 / config.offered_rate().max(1e-6));
    let start = Instant::now();
    let deadline_scale = config.time_limit_scale.max(0.01);

    std::thread::scope(|scope| {
        for thread_idx in 0..config.client_threads.max(1) {
            let generator = Arc::clone(&generator);
            let attempted = Arc::clone(&attempted);
            let successful = Arc::clone(&successful);
            let timed_out = Arc::clone(&timed_out);
            let failed = Arc::clone(&failed);
            let latency_nanos = Arc::clone(&latency_nanos);
            let schedule_slot = Arc::clone(&schedule_slot);
            let config = config.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed + thread_idx as u64);
                loop {
                    let elapsed = start.elapsed();
                    if elapsed >= config.duration {
                        break;
                    }
                    // Claim the next slot of the arrival schedule.
                    let slot = schedule_slot.fetch_add(1, Ordering::Relaxed);
                    let scheduled = interarrival.mul_f64(slot as f64);
                    if scheduled > config.duration {
                        break;
                    }
                    if scheduled > elapsed {
                        std::thread::sleep(scheduled - elapsed);
                    }
                    let interaction = config.mix.sample(&mut rng);
                    let limit = interaction.time_limit().mul_f64(deadline_scale);
                    let calls = generator.calls(interaction, &mut rng);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    let begun = Instant::now();
                    let mut ok = true;
                    let mut err = false;
                    for call in calls {
                        let remaining = limit.saturating_sub(begun.elapsed());
                        if remaining.is_zero() {
                            ok = false;
                            break;
                        }
                        match db.execute(call.statement, &call.params, remaining) {
                            Ok(_) => {}
                            Err(shareddb_common::Error::DeadlineExceeded) => {
                                ok = false;
                                break;
                            }
                            Err(_) => {
                                ok = false;
                                err = true;
                                break;
                            }
                        }
                    }
                    let latency = begun.elapsed();
                    if ok && latency <= limit {
                        successful.fetch_add(1, Ordering::Relaxed);
                        latency_nanos.fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
                    } else if err {
                        failed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let successful_count = successful.load(Ordering::Relaxed);
    DriverReport {
        system: db.system_name(),
        mix: config.mix.name(),
        emulated_browsers: config.emulated_browsers,
        offered_rate: config.offered_rate(),
        wips: successful_count as f64 / elapsed,
        attempted: attempted.load(Ordering::Relaxed),
        successful: successful_count,
        timed_out: timed_out.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        mean_latency: Duration::from_nanos(
            latency_nanos
                .load(Ordering::Relaxed)
                .checked_div(successful_count)
                .unwrap_or(0),
        ),
    }
}

/// Runs a single-interaction workload (used by the Figure 9 harness): only
/// `interaction` is issued, as fast as the client threads can.
pub fn run_single_interaction(
    db: &dyn TpcwDatabase,
    scale: &TpcwScale,
    interaction: WebInteraction,
    duration: Duration,
    client_threads: usize,
    time_limit_scale: f64,
) -> DriverReport {
    let generator = Arc::new(ParamGenerator::new(scale));
    let attempted = Arc::new(AtomicU64::new(0));
    let successful = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let latency_nanos = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for thread_idx in 0..client_threads.max(1) {
            let generator = Arc::clone(&generator);
            let attempted = Arc::clone(&attempted);
            let successful = Arc::clone(&successful);
            let timed_out = Arc::clone(&timed_out);
            let failed = Arc::clone(&failed);
            let latency_nanos = Arc::clone(&latency_nanos);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + thread_idx as u64);
                while start.elapsed() < duration {
                    let limit = interaction.time_limit().mul_f64(time_limit_scale.max(0.01));
                    let calls = generator.calls(interaction, &mut rng);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    let begun = Instant::now();
                    let mut ok = true;
                    let mut err = false;
                    for call in calls {
                        let remaining = limit.saturating_sub(begun.elapsed());
                        if remaining.is_zero() {
                            ok = false;
                            break;
                        }
                        match db.execute(call.statement, &call.params, remaining) {
                            Ok(_) => {}
                            Err(shareddb_common::Error::DeadlineExceeded) => {
                                ok = false;
                                break;
                            }
                            Err(_) => {
                                ok = false;
                                err = true;
                                break;
                            }
                        }
                    }
                    let latency = begun.elapsed();
                    if ok && latency <= limit {
                        successful.fetch_add(1, Ordering::Relaxed);
                        latency_nanos.fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
                    } else if err {
                        failed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let successful_count = successful.load(Ordering::Relaxed);
    DriverReport {
        system: db.system_name(),
        mix: interaction.name(),
        emulated_browsers: client_threads,
        offered_rate: f64::INFINITY,
        wips: successful_count as f64 / elapsed,
        attempted: attempted.load(Ordering::Relaxed),
        successful: successful_count,
        timed_out: timed_out.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        mean_latency: Duration::from_nanos(
            latency_nanos
                .load(Ordering::Relaxed)
                .checked_div(successful_count)
                .unwrap_or(0),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::build_catalog;

    fn catalog() -> Arc<Catalog> {
        Arc::new(build_catalog(&TpcwScale::tiny()).unwrap())
    }

    #[test]
    fn shareddb_system_runs_the_shopping_mix() {
        let catalog = catalog();
        let scale = TpcwScale::tiny();
        let db = SharedDbSystem::new(catalog, EngineConfig::default()).unwrap();
        let config = DriverConfig {
            mix: Mix::Shopping,
            emulated_browsers: 50,
            think_time: Duration::from_millis(100),
            duration: Duration::from_millis(500),
            client_threads: 4,
            time_limit_scale: 1.0,
            seed: 11,
        };
        let report = run_workload(&db, &scale, &config);
        assert_eq!(report.system, "SharedDB");
        assert!(report.attempted > 0);
        assert!(report.successful > 0, "report: {report:?}");
        assert_eq!(report.failed, 0, "report: {report:?}");
        assert!(report.wips > 0.0);
    }

    #[test]
    fn baseline_system_runs_the_ordering_mix() {
        let catalog = catalog();
        let scale = TpcwScale::tiny();
        let db = BaselineSystem::new(catalog, EngineProfile::Tuned, 4);
        let config = DriverConfig {
            mix: Mix::Ordering,
            emulated_browsers: 50,
            think_time: Duration::from_millis(100),
            duration: Duration::from_millis(500),
            client_threads: 4,
            time_limit_scale: 1.0,
            seed: 12,
        };
        let report = run_workload(&db, &scale, &config);
        assert!(report.successful > 0, "report: {report:?}");
        assert_eq!(report.failed, 0, "report: {report:?}");
        assert_eq!(report.system, "SystemX-like");
    }

    #[test]
    fn single_interaction_driver_counts_bestsellers() {
        let catalog = catalog();
        let scale = TpcwScale::tiny();
        let db = SharedDbSystem::new(catalog, EngineConfig::default()).unwrap();
        let report = run_single_interaction(
            &db,
            &scale,
            WebInteraction::BestSellers,
            Duration::from_millis(300),
            2,
            1.0,
        );
        assert!(report.successful > 0, "report: {report:?}");
        assert_eq!(report.mix, "BestSellers");
    }

    #[test]
    fn offered_rate_computation() {
        let config = DriverConfig {
            emulated_browsers: 700,
            think_time: Duration::from_secs(7),
            ..Default::default()
        };
        assert!((config.offered_rate() - 100.0).abs() < 1e-9);
    }
}

//! TPC-W schema and data generation.
//!
//! TPC-W models an online bookstore (Section 5.1 of the paper). This module
//! creates the base tables and secondary indexes and bulk-loads synthetic data
//! at a configurable scale. The default scale is laptop-sized; the shape of
//! the benchmark (cardinalities relative to the number of items, the 24
//! subjects, the customer/order ratios) follows the TPC-W specification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shareddb_common::{tuple, DataType, Result, Tuple, Value};
use shareddb_storage::{Catalog, IndexDef, TableDef};

/// The 24 book subjects of the TPC-W specification.
pub const SUBJECTS: [&str; 24] = [
    "ARTS",
    "BIOGRAPHIES",
    "BUSINESS",
    "CHILDREN",
    "COMPUTERS",
    "COOKING",
    "HEALTH",
    "HISTORY",
    "HOME",
    "HUMOR",
    "LITERATURE",
    "MYSTERY",
    "NON-FICTION",
    "PARENTING",
    "POLITICS",
    "REFERENCE",
    "RELIGION",
    "ROMANCE",
    "SELF-HELP",
    "SCIENCE-NATURE",
    "SCIENCE-FICTION",
    "SPORTS",
    "YOUTH",
    "TRAVEL",
];

/// Scale configuration of the generated database.
#[derive(Debug, Clone)]
pub struct TpcwScale {
    /// Number of items (books). TPC-W uses 1k/10k/100k/1M/10M.
    pub items: usize,
    /// Number of registered customers (TPC-W: 2880 per emulated browser, here
    /// simply configurable; default 2.88 × items).
    pub customers: usize,
    /// Number of historical orders (TPC-W: 0.9 × customers).
    pub orders: usize,
    /// Number of pre-existing shopping carts.
    pub carts: usize,
    /// RNG seed for reproducible data sets.
    pub seed: u64,
}

impl Default for TpcwScale {
    fn default() -> Self {
        TpcwScale::with_items(1_000)
    }
}

impl TpcwScale {
    /// Creates a scale proportional to an item count, following the TPC-W
    /// ratios.
    pub fn with_items(items: usize) -> Self {
        let items = items.max(100);
        TpcwScale {
            items,
            customers: (items as f64 * 2.88) as usize,
            orders: ((items as f64 * 2.88) * 0.9) as usize,
            carts: items / 2,
            seed: 42,
        }
    }

    /// A tiny scale for unit tests.
    pub fn tiny() -> Self {
        TpcwScale {
            items: 100,
            customers: 288,
            orders: 259,
            carts: 50,
            seed: 7,
        }
    }

    /// Number of authors (TPC-W: items / 4, at least 25).
    pub fn authors(&self) -> usize {
        (self.items / 4).max(25)
    }

    /// Number of addresses (2 per customer).
    pub fn addresses(&self) -> usize {
        self.customers * 2
    }

    /// Number of countries (fixed at 92 in TPC-W).
    pub fn countries(&self) -> usize {
        92
    }

    /// Average number of order lines per order (TPC-W: ~3).
    pub fn order_lines_per_order(&self) -> usize {
        3
    }
}

/// Creates the nine base tables of the benchmark plus secondary indexes.
pub fn create_schema(catalog: &Catalog) -> Result<()> {
    catalog.create_table(
        TableDef::new("COUNTRY")
            .column("CO_ID", DataType::Int)
            .column("CO_NAME", DataType::Text)
            .primary_key(&["CO_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ADDRESS")
            .column("ADDR_ID", DataType::Int)
            .column("ADDR_STREET", DataType::Text)
            .column("ADDR_CITY", DataType::Text)
            .column("ADDR_CO_ID", DataType::Int)
            .primary_key(&["ADDR_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("CUSTOMER")
            .column("C_ID", DataType::Int)
            .column("C_UNAME", DataType::Text)
            .column("C_FNAME", DataType::Text)
            .column("C_LNAME", DataType::Text)
            .column("C_ADDR_ID", DataType::Int)
            .column("C_DISCOUNT", DataType::Float)
            .column("C_LAST_LOGIN", DataType::Date)
            .primary_key(&["C_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("AUTHOR")
            .column("A_ID", DataType::Int)
            .column("A_FNAME", DataType::Text)
            .column("A_LNAME", DataType::Text)
            .primary_key(&["A_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ITEM")
            .column("I_ID", DataType::Int)
            .column("I_TITLE", DataType::Text)
            .column("I_A_ID", DataType::Int)
            .column("I_SUBJECT", DataType::Text)
            .column("I_COST", DataType::Float)
            .column("I_PUB_DATE", DataType::Date)
            .column("I_STOCK", DataType::Int)
            .column("I_RELATED1", DataType::Int)
            .primary_key(&["I_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ORDERS")
            .column("O_ID", DataType::Int)
            .column("O_C_ID", DataType::Int)
            .column("O_DATE", DataType::Date)
            .column("O_TOTAL", DataType::Float)
            .column("O_STATUS", DataType::Text)
            .primary_key(&["O_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("ORDER_LINE")
            .column("OL_ID", DataType::Int)
            .column("OL_O_ID", DataType::Int)
            .column("OL_I_ID", DataType::Int)
            .column("OL_QTY", DataType::Int)
            .primary_key(&["OL_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("CC_XACTS")
            .column("CX_O_ID", DataType::Int)
            .column("CX_TYPE", DataType::Text)
            .column("CX_AMOUNT", DataType::Float)
            .column("CX_DATE", DataType::Date)
            .primary_key(&["CX_O_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("SHOPPING_CART")
            .column("SC_ID", DataType::Int)
            .column("SC_DATE", DataType::Date)
            .primary_key(&["SC_ID"]),
    )?;
    catalog.create_table(
        TableDef::new("SHOPPING_CART_LINE")
            .column("SCL_ID", DataType::Int)
            .column("SCL_SC_ID", DataType::Int)
            .column("SCL_I_ID", DataType::Int)
            .column("SCL_QTY", DataType::Int)
            .primary_key(&["SCL_ID"]),
    )?;

    // Secondary indexes for the access paths used by the workload ("we built
    // all the necessary indexes", Section 5.2 — the same indexes serve both
    // SharedDB and the baselines).
    let indexes = [
        ("COUNTRY_PK", "COUNTRY", "CO_ID"),
        ("ADDRESS_PK", "ADDRESS", "ADDR_ID"),
        ("CUSTOMER_PK", "CUSTOMER", "C_ID"),
        ("CUSTOMER_UNAME", "CUSTOMER", "C_UNAME"),
        ("AUTHOR_PK", "AUTHOR", "A_ID"),
        ("AUTHOR_LNAME", "AUTHOR", "A_LNAME"),
        ("ITEM_PK", "ITEM", "I_ID"),
        ("ITEM_SUBJECT", "ITEM", "I_SUBJECT"),
        ("ITEM_AUTHOR", "ITEM", "I_A_ID"),
        ("ORDERS_PK", "ORDERS", "O_ID"),
        ("ORDERS_CUSTOMER", "ORDERS", "O_C_ID"),
        ("ORDER_LINE_ORDER", "ORDER_LINE", "OL_O_ID"),
        ("ORDER_LINE_ITEM", "ORDER_LINE", "OL_I_ID"),
        ("SCL_CART", "SHOPPING_CART_LINE", "SCL_SC_ID"),
    ];
    for (name, table, column) in indexes {
        catalog.create_index(IndexDef {
            name: name.into(),
            table: table.into(),
            column: column.into(),
        })?;
    }
    Ok(())
}

/// Bulk-loads a synthetic TPC-W data set at the given scale. Returns the total
/// number of loaded rows.
pub fn load_data(catalog: &Catalog, scale: &TpcwScale) -> Result<usize> {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let mut total = 0usize;

    // COUNTRY
    let countries: Vec<Tuple> = (0..scale.countries() as i64)
        .map(|i| tuple![i, format!("COUNTRY_{i}")])
        .collect();
    total += catalog.bulk_load("COUNTRY", countries)?;

    // ADDRESS
    let addresses: Vec<Tuple> = (0..scale.addresses() as i64)
        .map(|i| {
            tuple![
                i,
                format!("{} Main Street", i),
                format!("CITY_{}", i % 500),
                rng.gen_range(0..scale.countries() as i64)
            ]
        })
        .collect();
    total += catalog.bulk_load("ADDRESS", addresses)?;

    // CUSTOMER
    let customers: Vec<Tuple> = (0..scale.customers as i64)
        .map(|i| {
            tuple![
                i,
                customer_uname(i),
                format!("FIRST{i}"),
                format!("LAST{}", i % 1000),
                rng.gen_range(0..scale.addresses() as i64),
                (rng.gen_range(0..50) as f64) / 100.0,
                Value::Date(15_000 + rng.gen_range(0..365))
            ]
        })
        .collect();
    total += catalog.bulk_load("CUSTOMER", customers)?;

    // AUTHOR
    let authors: Vec<Tuple> = (0..scale.authors() as i64)
        .map(|i| tuple![i, format!("AFIRST{i}"), author_lname(i)])
        .collect();
    total += catalog.bulk_load("AUTHOR", authors)?;

    // ITEM
    let items: Vec<Tuple> = (0..scale.items as i64)
        .map(|i| {
            tuple![
                i,
                item_title(i),
                rng.gen_range(0..scale.authors() as i64),
                SUBJECTS[(i as usize) % SUBJECTS.len()],
                1.0 + (rng.gen_range(0..9900) as f64) / 100.0,
                Value::Date(12_000 + rng.gen_range(0..3_000)),
                rng.gen_range(10..100i64),
                (i + 1) % scale.items as i64
            ]
        })
        .collect();
    total += catalog.bulk_load("ITEM", items)?;

    // ORDERS + ORDER_LINE + CC_XACTS
    let mut orders = Vec::with_capacity(scale.orders);
    let mut order_lines = Vec::new();
    let mut cc_xacts = Vec::with_capacity(scale.orders);
    let mut ol_id: i64 = 0;
    for o in 0..scale.orders as i64 {
        let customer = rng.gen_range(0..scale.customers as i64);
        let date = Value::Date(14_000 + (o % 1_000));
        let mut order_total = 0.0f64;
        let lines = 1 + rng.gen_range(0..scale.order_lines_per_order() * 2) as i64;
        for _ in 0..lines {
            let item = rng.gen_range(0..scale.items as i64);
            let qty = rng.gen_range(1..5i64);
            order_lines.push(tuple![ol_id, o, item, qty]);
            order_total += qty as f64 * 10.0;
            ol_id += 1;
        }
        orders.push(tuple![
            o,
            customer,
            date.clone(),
            order_total,
            if o % 10 == 0 { "PENDING" } else { "SHIPPED" }
        ]);
        cc_xacts.push(tuple![o, "VISA", order_total, date]);
    }
    total += catalog.bulk_load("ORDERS", orders)?;
    total += catalog.bulk_load("ORDER_LINE", order_lines)?;
    total += catalog.bulk_load("CC_XACTS", cc_xacts)?;

    // SHOPPING_CART + SHOPPING_CART_LINE
    let carts: Vec<Tuple> = (0..scale.carts as i64)
        .map(|i| tuple![i, Value::Date(15_300)])
        .collect();
    total += catalog.bulk_load("SHOPPING_CART", carts)?;
    let cart_lines: Vec<Tuple> = (0..scale.carts as i64)
        .map(|i| {
            tuple![
                i,
                i,
                rng.gen_range(0..scale.items as i64),
                rng.gen_range(1..4i64)
            ]
        })
        .collect();
    total += catalog.bulk_load("SHOPPING_CART_LINE", cart_lines)?;

    Ok(total)
}

/// Creates the schema and loads data in one step, returning the catalog.
pub fn build_catalog(scale: &TpcwScale) -> Result<Catalog> {
    let catalog = Catalog::new();
    create_schema(&catalog)?;
    load_data(&catalog, scale)?;
    Ok(catalog)
}

/// Deterministic customer user name for a customer id.
pub fn customer_uname(id: i64) -> String {
    format!("UNAME{id}")
}

/// Deterministic author last name for an author id.
pub fn author_lname(id: i64) -> String {
    format!("ALAST{}", id % 500)
}

/// Deterministic item title for an item id.
pub fn item_title(id: i64) -> String {
    format!("TITLE {} OF BOOK {}", id % 97, id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_all_tables_and_indexes() {
        let catalog = Catalog::new();
        create_schema(&catalog).unwrap();
        let names = catalog.table_names();
        for t in [
            "COUNTRY",
            "ADDRESS",
            "CUSTOMER",
            "AUTHOR",
            "ITEM",
            "ORDERS",
            "ORDER_LINE",
            "CC_XACTS",
            "SHOPPING_CART",
            "SHOPPING_CART_LINE",
        ] {
            assert!(names.contains(&t.to_string()), "missing table {t}");
        }
        let item = catalog.table("ITEM").unwrap();
        assert!(item.read().has_index_on(0));
        assert!(item.read().has_index_on(3));
        let customer = catalog.table("CUSTOMER").unwrap();
        assert!(customer.read().has_index_on(1));
    }

    #[test]
    fn data_load_respects_scale() {
        let scale = TpcwScale::tiny();
        let catalog = build_catalog(&scale).unwrap();
        assert_eq!(
            catalog.table("ITEM").unwrap().read().live_count(),
            scale.items
        );
        assert_eq!(
            catalog.table("CUSTOMER").unwrap().read().live_count(),
            scale.customers
        );
        assert_eq!(
            catalog.table("ORDERS").unwrap().read().live_count(),
            scale.orders
        );
        let ol = catalog.table("ORDER_LINE").unwrap().read().live_count();
        assert!(ol >= scale.orders, "each order has at least one line");
    }

    #[test]
    fn data_is_reproducible_for_a_seed() {
        let a = build_catalog(&TpcwScale::tiny()).unwrap();
        let b = build_catalog(&TpcwScale::tiny()).unwrap();
        let snap_a = a.oracle().read_ts();
        let snap_b = b.oracle().read_ts();
        let ta = a.table("ITEM").unwrap();
        let tb = b.table("ITEM").unwrap();
        let rows_a: Vec<_> = ta.read().scan(snap_a).map(|(_, r)| r.clone()).collect();
        let rows_b: Vec<_> = tb.read().scan(snap_b).map(|(_, r)| r.clone()).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn scale_ratios() {
        let s = TpcwScale::with_items(10_000);
        assert_eq!(s.items, 10_000);
        assert_eq!(s.customers, 28_800);
        assert_eq!(s.orders, 25_920);
        assert!(s.authors() >= 25);
        assert_eq!(s.countries(), 92);
    }
}

//! The TPC-W global query plan (Figure 6 of the paper) and the equivalent
//! per-query plans for the query-at-a-time baselines.
//!
//! All prepared statements of the workload are registered under the same
//! names against both engines, so the workload driver can run the identical
//! interaction stream against SharedDB and the baselines.

use shareddb_baseline::{BaselineStatement, ClassicEngine, QueryPlan};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::{Expr, Result, SortKey};
use shareddb_core::plan::{
    ActivationTemplate, GlobalPlan, PlanBuilder, ProbeTemplate, StatementRegistry, StatementSpec,
    UpdateTemplate,
};
use shareddb_storage::{Catalog, UpdateOp};

/// Default result-page size of the search / best-seller statements.
pub const PAGE_SIZE: usize = 50;

/// Builds the SharedDB global plan and statement registry for TPC-W.
///
/// The plan contains the shared scans and index probes of the base tables
/// plus the shared joins, group-by, sorts and Top-N operators that serve all
/// fourteen web interactions — the reproduction of Figure 6.
pub fn build_shared_plan(catalog: &Catalog) -> Result<(GlobalPlan, StatementRegistry)> {
    let mut b = PlanBuilder::new(catalog);

    // Storage access paths.
    let item_scan = b.table_scan("ITEM")?;
    let author_scan = b.table_scan("AUTHOR")?;
    let orderline_scan = b.table_scan("ORDER_LINE")?;
    let scl_scan = b.table_scan("SHOPPING_CART_LINE")?;
    let item_probe = b.index_probe("ITEM")?;
    let customer_probe = b.index_probe("CUSTOMER")?;
    let orders_probe = b.index_probe("ORDERS")?;

    // Search pipeline: ITEM scan -> join AUTHOR -> Top-N (by title / by date).
    let item_author_nl = b.index_nl_join(item_scan, "AUTHOR", "ITEM.I_A_ID", "A_ID")?;
    let search_topn = b.top_n(
        item_author_nl,
        vec![SortKey::asc(1)], // ITEM.I_TITLE
    )?;
    let newprod_topn = b.top_n(
        item_author_nl,
        vec![SortKey::desc(5), SortKey::asc(1)], // ITEM.I_PUB_DATE desc
    )?;

    // Author search pipeline: AUTHOR scan -> join ITEM -> Top-N by title.
    let author_items_nl = b.index_nl_join(author_scan, "ITEM", "AUTHOR.A_ID", "I_A_ID")?;
    let author_topn = b.top_n(
        author_items_nl,
        vec![SortKey::asc(4)], // ITEM.I_TITLE after the 3 AUTHOR columns
    )?;

    // Best sellers pipeline: ITEM scan ⨝ ORDER_LINE scan -> Γ -> Top-N.
    let bestseller_join =
        b.hash_join(item_scan, orderline_scan, "ITEM.I_ID", "ORDER_LINE.OL_I_ID")?;
    let bestseller_group = b.group_by(
        bestseller_join,
        vec!["ITEM.I_ID", "ITEM.I_TITLE"],
        vec![(AggregateFunction::Sum, "ORDER_LINE.OL_QTY", "TOTAL_SOLD")],
    )?;
    let bestseller_topn = b.top_n(bestseller_group, vec![SortKey::desc(2), SortKey::asc(0)])?;

    // Product detail / admin pipeline: ITEM probe -> join AUTHOR.
    let detail_nl = b.index_nl_join(item_probe, "AUTHOR", "ITEM.I_A_ID", "A_ID")?;

    // Order display pipeline: ORDERS probe -> ORDER_LINE -> ITEM -> sort.
    let order_lines_nl = b.index_nl_join(orders_probe, "ORDER_LINE", "ORDERS.O_ID", "OL_O_ID")?;
    let order_items_nl = b.index_nl_join(order_lines_nl, "ITEM", "ORDER_LINE.OL_I_ID", "I_ID")?;
    let order_sort = b.sort(order_items_nl, vec![SortKey::desc(2), SortKey::desc(0)])?;

    // Shopping cart pipeline: SHOPPING_CART_LINE scan -> join ITEM.
    let cart_items_nl = b.index_nl_join(scl_scan, "ITEM", "SHOPPING_CART_LINE.SCL_I_ID", "I_ID")?;

    let plan = b.build();

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------
    let mut registry = StatementRegistry::new();

    // Point look-ups.
    registry.register(
        StatementSpec::query("getCustomerByUname", customer_probe).activate(
            customer_probe,
            ActivationTemplate::Probe {
                column: 1,
                range: ProbeTemplate::Key(Expr::param(0)),
                residual: None,
            },
        ),
    )?;
    registry.register(
        StatementSpec::query("getCustomerById", customer_probe).activate(
            customer_probe,
            ActivationTemplate::Probe {
                column: 0,
                range: ProbeTemplate::Key(Expr::param(0)),
                residual: None,
            },
        ),
    )?;
    registry.register(StatementSpec::query("getItemById", item_probe).activate(
        item_probe,
        ActivationTemplate::Probe {
            column: 0,
            range: ProbeTemplate::Key(Expr::param(0)),
            residual: None,
        },
    ))?;
    registry.register(
        StatementSpec::query("getBook", detail_nl)
            .activate(
                item_probe,
                ActivationTemplate::Probe {
                    column: 0,
                    range: ProbeTemplate::Key(Expr::param(0)),
                    residual: None,
                },
            )
            .activate(detail_nl, ActivationTemplate::Participate),
    )?;

    // Searches.
    registry.register(
        StatementSpec::query("doSubjectSearch", search_topn)
            .activate(
                item_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(3).eq(Expr::param(0)),
                },
            )
            .activate(item_author_nl, ActivationTemplate::Participate)
            .activate(search_topn, ActivationTemplate::TopN { limit: PAGE_SIZE }),
    )?;
    registry.register(
        StatementSpec::query("doTitleSearch", search_topn)
            .activate(
                item_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(1).like(Expr::param(0)),
                },
            )
            .activate(item_author_nl, ActivationTemplate::Participate)
            .activate(search_topn, ActivationTemplate::TopN { limit: PAGE_SIZE }),
    )?;
    registry.register(
        StatementSpec::query("doAuthorSearch", author_topn)
            .activate(
                author_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).like(Expr::param(0)),
                },
            )
            .activate(author_items_nl, ActivationTemplate::Participate)
            .activate(author_topn, ActivationTemplate::TopN { limit: PAGE_SIZE }),
    )?;
    registry.register(
        StatementSpec::query("getNewProducts", newprod_topn)
            .activate(
                item_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(3).eq(Expr::param(0)),
                },
            )
            .activate(item_author_nl, ActivationTemplate::Participate)
            .activate(newprod_topn, ActivationTemplate::TopN { limit: PAGE_SIZE }),
    )?;

    // Best sellers: analyse order lines of the most recent orders
    // (param 1 = smallest order id considered) for one subject (param 0).
    registry.register(
        StatementSpec::query("getBestSellers", bestseller_topn)
            .activate(
                item_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(3).eq(Expr::param(0)),
                },
            )
            .activate(
                orderline_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(1).gt_eq(Expr::param(1)),
                },
            )
            .activate(bestseller_join, ActivationTemplate::Participate)
            .activate(
                bestseller_group,
                ActivationTemplate::Having { predicate: None },
            )
            .activate(
                bestseller_topn,
                ActivationTemplate::TopN { limit: PAGE_SIZE },
            ),
    )?;

    // Shopping cart and orders.
    registry.register(
        StatementSpec::query("getCart", cart_items_nl)
            .activate(
                scl_scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(1).eq(Expr::param(0)),
                },
            )
            .activate(cart_items_nl, ActivationTemplate::Participate),
    )?;
    registry.register(
        StatementSpec::query("getCustomerOrder", order_sort)
            .activate(
                orders_probe,
                ActivationTemplate::Probe {
                    column: 1,
                    range: ProbeTemplate::Key(Expr::param(0)),
                    residual: None,
                },
            )
            .activate(order_lines_nl, ActivationTemplate::Participate)
            .activate(order_items_nl, ActivationTemplate::Participate)
            .activate(order_sort, ActivationTemplate::Participate),
    )?;

    // Updates.
    registry.register(StatementSpec::update(
        "createCart",
        "SHOPPING_CART",
        UpdateTemplate::Insert {
            values: vec![Expr::param(0), Expr::param(1)],
        },
    ))?;
    registry.register(StatementSpec::update(
        "addToCart",
        "SHOPPING_CART_LINE",
        UpdateTemplate::Insert {
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
            ],
        },
    ))?;
    registry.register(StatementSpec::update(
        "refreshCart",
        "SHOPPING_CART_LINE",
        UpdateTemplate::Update {
            assignments: vec![(3, Expr::param(2))],
            predicate: Expr::col(1)
                .eq(Expr::param(0))
                .and(Expr::col(2).eq(Expr::param(1))),
        },
    ))?;
    registry.register(StatementSpec::update(
        "clearCart",
        "SHOPPING_CART_LINE",
        UpdateTemplate::Delete {
            predicate: Expr::col(1).eq(Expr::param(0)),
        },
    ))?;
    registry.register(StatementSpec::update(
        "createOrder",
        "ORDERS",
        UpdateTemplate::Insert {
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
                Expr::lit("PENDING"),
            ],
        },
    ))?;
    registry.register(StatementSpec::update(
        "addOrderLine",
        "ORDER_LINE",
        UpdateTemplate::Insert {
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
            ],
        },
    ))?;
    registry.register(StatementSpec::update(
        "addCCXact",
        "CC_XACTS",
        UpdateTemplate::Insert {
            values: vec![
                Expr::param(0),
                Expr::lit("VISA"),
                Expr::param(1),
                Expr::param(2),
            ],
        },
    ))?;
    registry.register(StatementSpec::update(
        "adminUpdateItem",
        "ITEM",
        UpdateTemplate::Update {
            assignments: vec![(4, Expr::param(1)), (5, Expr::param(2))],
            predicate: Expr::col(0).eq(Expr::param(0)),
        },
    ))?;
    registry.register(StatementSpec::update(
        "updateCustomerLogin",
        "CUSTOMER",
        UpdateTemplate::Update {
            assignments: vec![(6, Expr::param(1))],
            predicate: Expr::col(0).eq(Expr::param(0)),
        },
    ))?;
    registry.register(StatementSpec::update(
        "createCustomer",
        "CUSTOMER",
        UpdateTemplate::Insert {
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
                Expr::param(4),
                Expr::lit(0.0f64),
                Expr::param(5),
            ],
        },
    ))?;

    registry.validate(&plan)?;
    Ok((plan, registry))
}

/// Registers the equivalent per-query plans with a query-at-a-time baseline
/// engine. The statement names and parameter conventions are identical to
/// [`build_shared_plan`], so the same workload driver can run against both.
pub fn register_baseline_statements(engine: &ClassicEngine) {
    use QueryPlan as P;

    engine.register(
        "getCustomerByUname",
        BaselineStatement::Query(P::IndexLookup {
            table: "CUSTOMER".into(),
            column: 1,
            key: Expr::param(0),
            residual: None,
        }),
    );
    engine.register(
        "getCustomerById",
        BaselineStatement::Query(P::IndexLookup {
            table: "CUSTOMER".into(),
            column: 0,
            key: Expr::param(0),
            residual: None,
        }),
    );
    engine.register(
        "getItemById",
        BaselineStatement::Query(P::IndexLookup {
            table: "ITEM".into(),
            column: 0,
            key: Expr::param(0),
            residual: None,
        }),
    );
    engine.register(
        "getBook",
        BaselineStatement::Query(P::IndexNlJoin {
            outer: Box::new(P::IndexLookup {
                table: "ITEM".into(),
                column: 0,
                key: Expr::param(0),
                residual: None,
            }),
            table: "AUTHOR".into(),
            outer_key: 2,
            inner_column: 0,
        }),
    );
    engine.register(
        "doSubjectSearch",
        BaselineStatement::Query(
            P::IndexNlJoin {
                outer: Box::new(P::IndexLookup {
                    table: "ITEM".into(),
                    column: 3,
                    key: Expr::param(0),
                    residual: None,
                }),
                table: "AUTHOR".into(),
                outer_key: 2,
                inner_column: 0,
            }
            .sorted(vec![SortKey::asc(1)])
            .limited(PAGE_SIZE),
        ),
    );
    engine.register(
        "doTitleSearch",
        BaselineStatement::Query(
            P::IndexNlJoin {
                outer: Box::new(P::scan_where("ITEM", Expr::col(1).like(Expr::param(0)))),
                table: "AUTHOR".into(),
                outer_key: 2,
                inner_column: 0,
            }
            .sorted(vec![SortKey::asc(1)])
            .limited(PAGE_SIZE),
        ),
    );
    engine.register(
        "doAuthorSearch",
        BaselineStatement::Query(
            P::IndexNlJoin {
                outer: Box::new(P::scan_where("AUTHOR", Expr::col(2).like(Expr::param(0)))),
                table: "ITEM".into(),
                outer_key: 0,
                inner_column: 2,
            }
            .sorted(vec![SortKey::asc(4)])
            .limited(PAGE_SIZE),
        ),
    );
    engine.register(
        "getNewProducts",
        BaselineStatement::Query(
            P::IndexNlJoin {
                outer: Box::new(P::IndexLookup {
                    table: "ITEM".into(),
                    column: 3,
                    key: Expr::param(0),
                    residual: None,
                }),
                table: "AUTHOR".into(),
                outer_key: 2,
                inner_column: 0,
            }
            .sorted(vec![SortKey::desc(5), SortKey::asc(1)])
            .limited(PAGE_SIZE),
        ),
    );
    engine.register(
        "getBestSellers",
        BaselineStatement::Query(
            P::GroupBy {
                input: Box::new(P::HashJoin {
                    build: Box::new(P::IndexLookup {
                        table: "ITEM".into(),
                        column: 3,
                        key: Expr::param(0),
                        residual: None,
                    }),
                    probe: Box::new(P::scan_where(
                        "ORDER_LINE",
                        Expr::col(1).gt_eq(Expr::param(1)),
                    )),
                    build_key: 0,
                    probe_key: 2,
                }),
                group_columns: vec![0, 1],
                aggregates: vec![(AggregateFunction::Sum, 11)],
                having: None,
            }
            .sorted(vec![SortKey::desc(2), SortKey::asc(0)])
            .limited(PAGE_SIZE),
        ),
    );
    engine.register(
        "getCart",
        BaselineStatement::Query(P::IndexNlJoin {
            outer: Box::new(P::IndexLookup {
                table: "SHOPPING_CART_LINE".into(),
                column: 1,
                key: Expr::param(0),
                residual: None,
            }),
            table: "ITEM".into(),
            outer_key: 2,
            inner_column: 0,
        }),
    );
    engine.register(
        "getCustomerOrder",
        BaselineStatement::Query(
            P::IndexNlJoin {
                outer: Box::new(P::IndexNlJoin {
                    outer: Box::new(P::IndexLookup {
                        table: "ORDERS".into(),
                        column: 1,
                        key: Expr::param(0),
                        residual: None,
                    }),
                    table: "ORDER_LINE".into(),
                    outer_key: 0,
                    inner_column: 1,
                }),
                table: "ITEM".into(),
                outer_key: 7,
                inner_column: 0,
            }
            .sorted(vec![SortKey::desc(2), SortKey::desc(0)]),
        ),
    );

    // Updates.
    engine.register(
        "createCart",
        BaselineStatement::Insert {
            table: "SHOPPING_CART".into(),
            values: vec![Expr::param(0), Expr::param(1)],
        },
    );
    engine.register(
        "addToCart",
        BaselineStatement::Insert {
            table: "SHOPPING_CART_LINE".into(),
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
            ],
        },
    );
    engine.register(
        "refreshCart",
        BaselineStatement::Mutation {
            table: "SHOPPING_CART_LINE".into(),
            op: UpdateOp::Update {
                assignments: vec![(3, Expr::param(2))],
                predicate: Expr::col(1)
                    .eq(Expr::param(0))
                    .and(Expr::col(2).eq(Expr::param(1))),
            },
        },
    );
    engine.register(
        "clearCart",
        BaselineStatement::Mutation {
            table: "SHOPPING_CART_LINE".into(),
            op: UpdateOp::Delete {
                predicate: Expr::col(1).eq(Expr::param(0)),
            },
        },
    );
    engine.register(
        "createOrder",
        BaselineStatement::Insert {
            table: "ORDERS".into(),
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
                Expr::lit("PENDING"),
            ],
        },
    );
    engine.register(
        "addOrderLine",
        BaselineStatement::Insert {
            table: "ORDER_LINE".into(),
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
            ],
        },
    );
    engine.register(
        "addCCXact",
        BaselineStatement::Insert {
            table: "CC_XACTS".into(),
            values: vec![
                Expr::param(0),
                Expr::lit("VISA"),
                Expr::param(1),
                Expr::param(2),
            ],
        },
    );
    engine.register(
        "adminUpdateItem",
        BaselineStatement::Mutation {
            table: "ITEM".into(),
            op: UpdateOp::Update {
                assignments: vec![(4, Expr::param(1)), (5, Expr::param(2))],
                predicate: Expr::col(0).eq(Expr::param(0)),
            },
        },
    );
    engine.register(
        "updateCustomerLogin",
        BaselineStatement::Mutation {
            table: "CUSTOMER".into(),
            op: UpdateOp::Update {
                assignments: vec![(6, Expr::param(1))],
                predicate: Expr::col(0).eq(Expr::param(0)),
            },
        },
    );
    engine.register(
        "createCustomer",
        BaselineStatement::Insert {
            table: "CUSTOMER".into(),
            values: vec![
                Expr::param(0),
                Expr::param(1),
                Expr::param(2),
                Expr::param(3),
                Expr::param(4),
                Expr::lit(0.0f64),
                Expr::param(5),
            ],
        },
    );
}

/// All statement names registered by [`build_shared_plan`] /
/// [`register_baseline_statements`]; used by tests to verify parity.
pub fn statement_names() -> Vec<&'static str> {
    vec![
        "getCustomerByUname",
        "getCustomerById",
        "getItemById",
        "getBook",
        "doSubjectSearch",
        "doTitleSearch",
        "doAuthorSearch",
        "getNewProducts",
        "getBestSellers",
        "getCart",
        "getCustomerOrder",
        "createCart",
        "addToCart",
        "refreshCart",
        "clearCart",
        "createOrder",
        "addOrderLine",
        "addCCXact",
        "adminUpdateItem",
        "updateCustomerLogin",
        "createCustomer",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{build_catalog, TpcwScale, SUBJECTS};
    use shareddb_baseline::EngineProfile;
    use shareddb_common::Value;
    use shareddb_core::{Engine, EngineConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, Engine, ClassicEngine) {
        let catalog = Arc::new(build_catalog(&TpcwScale::tiny()).unwrap());
        let (plan, registry) = build_shared_plan(&catalog).unwrap();
        let engine = Engine::start(
            Arc::clone(&catalog),
            plan,
            registry,
            EngineConfig::default(),
        )
        .unwrap();
        let baseline = ClassicEngine::start(Arc::clone(&catalog), EngineProfile::Tuned, 4);
        register_baseline_statements(&baseline);
        (catalog, engine, baseline)
    }

    #[test]
    fn plan_has_figure6_scale() {
        let catalog = build_catalog(&TpcwScale::tiny()).unwrap();
        let (plan, registry) = build_shared_plan(&catalog).unwrap();
        // The paper's TPC-W plan has 26 operators plus storage access paths;
        // ours is in the same ballpark and covers all statement types.
        assert!(plan.len() >= 18, "plan has {} operators", plan.len());
        assert_eq!(registry.len(), statement_names().len());
        let census = plan.operator_census();
        assert!(census.keys().any(|k| k.starts_with("HashJoin")));
        assert!(census.keys().any(|k| k.starts_with("GroupBy")));
        assert!(census.keys().any(|k| k.starts_with("TopN")));
    }

    #[test]
    fn shared_and_baseline_agree_on_point_queries() {
        let (_, engine, baseline) = setup();
        for id in [0i64, 5, 17] {
            let shared = engine
                .execute_sync("getItemById", &[Value::Int(id)])
                .unwrap();
            let base = baseline
                .execute_sync("getItemById", &[Value::Int(id)])
                .unwrap();
            assert_eq!(shared.rows().len(), 1);
            assert_eq!(base.len(), 1);
            assert_eq!(shared.rows()[0], base[0]);
        }
        let shared = engine
            .execute_sync("getCustomerByUname", &[Value::text("UNAME7")])
            .unwrap();
        let base = baseline
            .execute_sync("getCustomerByUname", &[Value::text("UNAME7")])
            .unwrap();
        assert_eq!(shared.rows()[0], base[0]);
    }

    #[test]
    fn shared_and_baseline_agree_on_searches() {
        let (_, engine, baseline) = setup();
        let subject = Value::text(SUBJECTS[3]);
        let shared = engine
            .execute_sync("doSubjectSearch", std::slice::from_ref(&subject))
            .unwrap();
        let base = baseline
            .execute_sync("doSubjectSearch", std::slice::from_ref(&subject))
            .unwrap();
        assert_eq!(shared.rows().len(), base.len());
        assert!(!shared.rows().is_empty());
        // Both sorted by title ascending.
        assert_eq!(shared.rows()[0][1], base[0][1]);

        let shared = engine
            .execute_sync("doTitleSearch", &[Value::text("%BOOK 1%")])
            .unwrap();
        let base = baseline
            .execute_sync("doTitleSearch", &[Value::text("%BOOK 1%")])
            .unwrap();
        assert_eq!(shared.rows().len(), base.len());
    }

    #[test]
    fn best_sellers_agree_and_are_ranked() {
        let (_, engine, baseline) = setup();
        let params = [Value::text(SUBJECTS[0]), Value::Int(0)];
        let shared = engine.execute_sync("getBestSellers", &params).unwrap();
        let base = baseline.execute_sync("getBestSellers", &params).unwrap();
        assert_eq!(shared.rows().len(), base.len());
        if shared.rows().len() >= 2 {
            // Ranked by total sold, descending.
            assert!(shared.rows()[0][2] >= shared.rows()[1][2]);
        }
        // Row sets agree (same items and totals).
        assert_eq!(shared.rows().to_vec(), base);
    }

    #[test]
    fn order_display_and_cart_queries() {
        let (_, engine, baseline) = setup();
        let shared = engine
            .execute_sync("getCustomerOrder", &[Value::Int(1)])
            .unwrap();
        let base = baseline
            .execute_sync("getCustomerOrder", &[Value::Int(1)])
            .unwrap();
        assert_eq!(shared.rows().len(), base.len());

        let shared = engine.execute_sync("getCart", &[Value::Int(3)]).unwrap();
        let base = baseline.execute_sync("getCart", &[Value::Int(3)]).unwrap();
        assert_eq!(shared.rows().len(), base.len());
        assert_eq!(shared.rows().len(), 1);
    }

    #[test]
    fn update_statements_roundtrip() {
        let (_, engine, _) = setup();
        // Create a cart, add a line, read it, clear it.
        engine
            .execute_sync("createCart", &[Value::Int(90_000), Value::Date(15_400)])
            .unwrap();
        engine
            .execute_sync(
                "addToCart",
                &[
                    Value::Int(90_001),
                    Value::Int(90_000),
                    Value::Int(5),
                    Value::Int(2),
                ],
            )
            .unwrap();
        let cart = engine
            .execute_sync("getCart", &[Value::Int(90_000)])
            .unwrap();
        assert_eq!(cart.rows().len(), 1);
        let cleared = engine
            .execute_sync("clearCart", &[Value::Int(90_000)])
            .unwrap();
        assert_eq!(cleared.rows_affected(), 1);
        let cart = engine
            .execute_sync("getCart", &[Value::Int(90_000)])
            .unwrap();
        assert!(cart.rows().is_empty());
    }
}

//! Web interactions, workload mixes and parameter generation.
//!
//! TPC-W drives the database through fourteen *web interactions*, each of
//! which issues one or more database statements (Section 5.1). The relative
//! frequency of the interactions is given by one of three *mixes*: Browsing
//! (read-mostly, search-heavy), Shopping (mixed) and Ordering (write-heavy).
//! Every interaction also has a response-time limit; interactions that exceed
//! it do not count as successful.

use crate::schema::{customer_uname, TpcwScale, SUBJECTS};
use rand::rngs::StdRng;
use rand::Rng;
use shareddb_common::Value;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

/// The fourteen web interactions of TPC-W.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WebInteraction {
    /// Home page: customer profile + promotional items.
    Home,
    /// Latest items of one subject.
    NewProducts,
    /// Best-selling items of one subject (heavy analytical query).
    BestSellers,
    /// Detail page of one item.
    ProductDetail,
    /// Search form (light).
    SearchRequest,
    /// Search results (by subject, title or author).
    SearchResults,
    /// Shopping cart update + display.
    ShoppingCart,
    /// Customer registration / log-in.
    CustomerRegistration,
    /// Buy request: customer data + cart display.
    BuyRequest,
    /// Buy confirmation: order creation (write-heavy).
    BuyConfirm,
    /// Order inquiry form (light).
    OrderInquiry,
    /// Display of the customer's last order.
    OrderDisplay,
    /// Admin form: item detail.
    AdminRequest,
    /// Admin confirmation: item update + related-item recomputation.
    AdminConfirm,
}

/// All fourteen interactions.
pub const ALL_INTERACTIONS: [WebInteraction; 14] = [
    WebInteraction::Home,
    WebInteraction::NewProducts,
    WebInteraction::BestSellers,
    WebInteraction::ProductDetail,
    WebInteraction::SearchRequest,
    WebInteraction::SearchResults,
    WebInteraction::ShoppingCart,
    WebInteraction::CustomerRegistration,
    WebInteraction::BuyRequest,
    WebInteraction::BuyConfirm,
    WebInteraction::OrderInquiry,
    WebInteraction::OrderDisplay,
    WebInteraction::AdminRequest,
    WebInteraction::AdminConfirm,
];

impl WebInteraction {
    /// Name used in reports (matches Figure 9 of the paper).
    pub fn name(&self) -> &'static str {
        match self {
            WebInteraction::Home => "Home",
            WebInteraction::NewProducts => "NewProducts",
            WebInteraction::BestSellers => "BestSellers",
            WebInteraction::ProductDetail => "ProductDetail",
            WebInteraction::SearchRequest => "SearchRequest",
            WebInteraction::SearchResults => "SearchResults",
            WebInteraction::ShoppingCart => "ShoppingCart",
            WebInteraction::CustomerRegistration => "CustomerRegistration",
            WebInteraction::BuyRequest => "BuyRequest",
            WebInteraction::BuyConfirm => "BuyConfirmation",
            WebInteraction::OrderInquiry => "OrderInquiry",
            WebInteraction::OrderDisplay => "OrderDisplay",
            WebInteraction::AdminRequest => "AdminRequest",
            WebInteraction::AdminConfirm => "AdminConfirm",
        }
    }

    /// TPC-W response-time limit for the interaction. The specification uses
    /// 3–20 seconds; the reproduction keeps the same relative weights but the
    /// driver may scale them (see [`crate::driver`]).
    pub fn time_limit(&self) -> Duration {
        match self {
            WebInteraction::BestSellers | WebInteraction::AdminConfirm => Duration::from_secs(5),
            WebInteraction::BuyConfirm | WebInteraction::OrderDisplay => Duration::from_secs(5),
            WebInteraction::NewProducts | WebInteraction::SearchResults => Duration::from_secs(5),
            _ => Duration::from_secs(3),
        }
    }
}

/// A workload mix: relative interaction frequencies in percent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Read-mostly, search intensive, few updates, many analytical queries.
    Browsing,
    /// Some updates and some analytical queries.
    Shopping,
    /// Write-intensive with only a few analytical queries.
    Ordering,
}

impl Mix {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mix::Browsing => "Browsing",
            Mix::Shopping => "Shopping",
            Mix::Ordering => "Ordering",
        }
    }

    /// The interaction probabilities of the mix, in the order of
    /// [`ALL_INTERACTIONS`]. Values follow the TPC-W specification's web
    /// interaction mix tables (rounded to one decimal).
    pub fn weights(&self) -> [f64; 14] {
        match self {
            // Home, New, Best, Detail, SearchReq, SearchRes, Cart, Reg,
            // BuyReq, BuyConf, OrderInq, OrderDisp, AdminReq, AdminConf
            Mix::Browsing => [
                29.00, 11.00, 11.00, 21.00, 12.00, 11.00, 2.00, 0.82, 0.75, 0.69, 0.30, 0.25, 0.10,
                0.09,
            ],
            Mix::Shopping => [
                16.00, 5.00, 5.00, 17.00, 20.00, 17.00, 11.60, 3.00, 2.60, 1.20, 0.75, 0.66, 0.10,
                0.09,
            ],
            Mix::Ordering => [
                9.12, 0.46, 0.46, 12.35, 14.53, 13.08, 13.53, 12.86, 12.73, 10.18, 0.25, 0.22,
                0.12, 0.11,
            ],
        }
    }

    /// Draws one interaction according to the mix.
    pub fn sample(&self, rng: &mut StdRng) -> WebInteraction {
        let weights = self.weights();
        let total: f64 = weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        for (interaction, weight) in ALL_INTERACTIONS.iter().zip(weights) {
            if draw < weight {
                return *interaction;
            }
            draw -= weight;
        }
        WebInteraction::Home
    }
}

/// One database statement call of an interaction.
#[derive(Debug, Clone)]
pub struct StatementCall {
    /// Name of the prepared statement.
    pub statement: &'static str,
    /// Parameter values.
    pub params: Vec<Value>,
}

/// Generates concrete parameters for the interactions, tracking fresh ids for
/// inserts.
pub struct ParamGenerator {
    scale: TpcwScale,
    next_order_id: AtomicI64,
    next_order_line_id: AtomicI64,
    next_cart_id: AtomicI64,
    next_cart_line_id: AtomicI64,
    next_customer_id: AtomicI64,
    /// Number of recent orders analysed by the best-sellers query (the paper:
    /// "the latest 3,333 orders"). Scaled to the data set size.
    pub bestseller_window: i64,
}

/// Process-wide epoch so that several [`ParamGenerator`] instances used
/// against the same database (e.g. consecutive load points of a sweep) never
/// hand out colliding primary keys for their inserts.
static GENERATOR_EPOCH: AtomicI64 = AtomicI64::new(1);

impl ParamGenerator {
    /// Creates a generator for the given scale.
    pub fn new(scale: &TpcwScale) -> Self {
        let orders = scale.orders as i64;
        // Each generator instance claims a disjoint id range of 10M ids.
        let base = GENERATOR_EPOCH.fetch_add(1, Ordering::Relaxed) * 10_000_000;
        ParamGenerator {
            scale: scale.clone(),
            next_order_id: AtomicI64::new(base),
            next_order_line_id: AtomicI64::new(base),
            next_cart_id: AtomicI64::new(base),
            next_cart_line_id: AtomicI64::new(base),
            next_customer_id: AtomicI64::new(base),
            bestseller_window: (orders / 3).clamp(100, 3_333),
        }
    }

    fn random_item(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(0..self.scale.items as i64)
    }

    fn random_customer(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(0..self.scale.customers as i64)
    }

    fn random_subject(&self, rng: &mut StdRng) -> Value {
        Value::text(SUBJECTS[rng.gen_range(0..SUBJECTS.len())])
    }

    fn bestseller_threshold(&self) -> i64 {
        (self.scale.orders as i64 - self.bestseller_window).max(0)
    }

    /// Generates the statement calls of one interaction.
    pub fn calls(&self, interaction: WebInteraction, rng: &mut StdRng) -> Vec<StatementCall> {
        match interaction {
            WebInteraction::Home => vec![
                StatementCall {
                    statement: "getCustomerById",
                    params: vec![Value::Int(self.random_customer(rng))],
                },
                StatementCall {
                    statement: "getItemById",
                    params: vec![Value::Int(self.random_item(rng))],
                },
            ],
            WebInteraction::NewProducts => vec![StatementCall {
                statement: "getNewProducts",
                params: vec![self.random_subject(rng)],
            }],
            WebInteraction::BestSellers => vec![StatementCall {
                statement: "getBestSellers",
                params: vec![
                    self.random_subject(rng),
                    Value::Int(self.bestseller_threshold()),
                ],
            }],
            WebInteraction::ProductDetail => vec![StatementCall {
                statement: "getBook",
                params: vec![Value::Int(self.random_item(rng))],
            }],
            WebInteraction::SearchRequest => vec![StatementCall {
                statement: "getItemById",
                params: vec![Value::Int(self.random_item(rng))],
            }],
            WebInteraction::SearchResults => {
                let kind = rng.gen_range(0..3);
                match kind {
                    0 => vec![StatementCall {
                        statement: "doSubjectSearch",
                        params: vec![self.random_subject(rng)],
                    }],
                    1 => vec![StatementCall {
                        statement: "doTitleSearch",
                        params: vec![Value::text(format!(
                            "%BOOK {}%",
                            rng.gen_range(0..self.scale.items as i64)
                        ))],
                    }],
                    _ => vec![StatementCall {
                        statement: "doAuthorSearch",
                        params: vec![Value::text(format!("ALAST{}%", rng.gen_range(0..500)))],
                    }],
                }
            }
            WebInteraction::ShoppingCart => {
                let cart = self.next_cart_id.fetch_add(1, Ordering::Relaxed);
                let line = self.next_cart_line_id.fetch_add(1, Ordering::Relaxed);
                vec![
                    StatementCall {
                        statement: "createCart",
                        params: vec![Value::Int(cart), Value::Date(15_400)],
                    },
                    StatementCall {
                        statement: "addToCart",
                        params: vec![
                            Value::Int(line),
                            Value::Int(cart),
                            Value::Int(self.random_item(rng)),
                            Value::Int(rng.gen_range(1..4)),
                        ],
                    },
                    StatementCall {
                        statement: "getCart",
                        params: vec![Value::Int(cart)],
                    },
                ]
            }
            WebInteraction::CustomerRegistration => {
                if rng.gen_bool(0.2) {
                    let id = self.next_customer_id.fetch_add(1, Ordering::Relaxed);
                    vec![StatementCall {
                        statement: "createCustomer",
                        params: vec![
                            Value::Int(id),
                            Value::text(customer_uname(id)),
                            Value::text(format!("FIRST{id}")),
                            Value::text(format!("LAST{}", id % 1000)),
                            Value::Int(0),
                            Value::Date(15_400),
                        ],
                    }]
                } else {
                    let customer = self.random_customer(rng);
                    vec![
                        StatementCall {
                            statement: "getCustomerByUname",
                            params: vec![Value::text(customer_uname(customer))],
                        },
                        StatementCall {
                            statement: "updateCustomerLogin",
                            params: vec![Value::Int(customer), Value::Date(15_401)],
                        },
                    ]
                }
            }
            WebInteraction::BuyRequest => {
                let customer = self.random_customer(rng);
                let cart = rng.gen_range(0..self.scale.carts.max(1) as i64);
                vec![
                    StatementCall {
                        statement: "getCustomerByUname",
                        params: vec![Value::text(customer_uname(customer))],
                    },
                    StatementCall {
                        statement: "getCart",
                        params: vec![Value::Int(cart)],
                    },
                ]
            }
            WebInteraction::BuyConfirm => {
                let order = self.next_order_id.fetch_add(1, Ordering::Relaxed);
                let line = self.next_order_line_id.fetch_add(1, Ordering::Relaxed);
                let customer = self.random_customer(rng);
                vec![
                    StatementCall {
                        statement: "createOrder",
                        params: vec![
                            Value::Int(order),
                            Value::Int(customer),
                            Value::Date(15_402),
                            Value::Float(42.0),
                        ],
                    },
                    StatementCall {
                        statement: "addOrderLine",
                        params: vec![
                            Value::Int(line),
                            Value::Int(order),
                            Value::Int(self.random_item(rng)),
                            Value::Int(rng.gen_range(1..4)),
                        ],
                    },
                    StatementCall {
                        statement: "addCCXact",
                        params: vec![Value::Int(order), Value::Float(42.0), Value::Date(15_402)],
                    },
                    StatementCall {
                        statement: "clearCart",
                        params: vec![Value::Int(rng.gen_range(0..self.scale.carts.max(1) as i64))],
                    },
                ]
            }
            WebInteraction::OrderInquiry => vec![StatementCall {
                statement: "getCustomerById",
                params: vec![Value::Int(self.random_customer(rng))],
            }],
            WebInteraction::OrderDisplay => vec![StatementCall {
                statement: "getCustomerOrder",
                params: vec![Value::Int(self.random_customer(rng))],
            }],
            WebInteraction::AdminRequest => vec![StatementCall {
                statement: "getBook",
                params: vec![Value::Int(self.random_item(rng))],
            }],
            WebInteraction::AdminConfirm => vec![
                StatementCall {
                    statement: "adminUpdateItem",
                    params: vec![
                        Value::Int(self.random_item(rng)),
                        Value::Float(rng.gen_range(1.0..100.0)),
                        Value::Date(15_403),
                    ],
                },
                StatementCall {
                    statement: "getBestSellers",
                    params: vec![
                        self.random_subject(rng),
                        Value::Int(self.bestseller_threshold()),
                    ],
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plans::statement_names;
    use rand::SeedableRng;

    #[test]
    fn mixes_sum_to_about_100_percent() {
        for mix in [Mix::Browsing, Mix::Shopping, Mix::Ordering] {
            let total: f64 = mix.weights().iter().sum();
            assert!((total - 100.0).abs() < 1.0, "{}: {total}", mix.name());
        }
    }

    #[test]
    fn sampling_follows_the_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut home = 0;
        let mut buy_confirm = 0;
        for _ in 0..20_000 {
            match Mix::Browsing.sample(&mut rng) {
                WebInteraction::Home => home += 1,
                WebInteraction::BuyConfirm => buy_confirm += 1,
                _ => {}
            }
        }
        // Browsing: Home ≈ 29%, BuyConfirm ≈ 0.69%.
        assert!(home > 5_000, "home = {home}");
        assert!(buy_confirm < 400, "buy_confirm = {buy_confirm}");
    }

    #[test]
    fn ordering_mix_is_write_heavier_than_browsing() {
        let mut rng = StdRng::seed_from_u64(2);
        let writes = |mix: Mix, rng: &mut StdRng| {
            (0..10_000)
                .filter(|_| {
                    matches!(
                        mix.sample(rng),
                        WebInteraction::BuyConfirm
                            | WebInteraction::ShoppingCart
                            | WebInteraction::CustomerRegistration
                            | WebInteraction::AdminConfirm
                    )
                })
                .count()
        };
        let browsing = writes(Mix::Browsing, &mut rng);
        let ordering = writes(Mix::Ordering, &mut rng);
        assert!(ordering > browsing * 3);
    }

    #[test]
    fn all_generated_statements_are_registered() {
        let scale = TpcwScale::tiny();
        let gen = ParamGenerator::new(&scale);
        let names = statement_names();
        let mut rng = StdRng::seed_from_u64(3);
        for interaction in ALL_INTERACTIONS {
            for _ in 0..20 {
                for call in gen.calls(interaction, &mut rng) {
                    assert!(
                        names.contains(&call.statement),
                        "{} issues unknown statement {}",
                        interaction.name(),
                        call.statement
                    );
                    assert!(!call.params.is_empty());
                }
            }
        }
    }

    #[test]
    fn insert_ids_are_unique() {
        let scale = TpcwScale::tiny();
        let gen = ParamGenerator::new(&scale);
        let mut rng = StdRng::seed_from_u64(4);
        let mut order_ids = std::collections::HashSet::new();
        for _ in 0..100 {
            let calls = gen.calls(WebInteraction::BuyConfirm, &mut rng);
            let id = calls[0].params[0].clone();
            assert!(order_ids.insert(format!("{id}")), "duplicate order id {id}");
        }
    }

    #[test]
    fn interaction_metadata() {
        assert_eq!(ALL_INTERACTIONS.len(), 14);
        for i in ALL_INTERACTIONS {
            assert!(!i.name().is_empty());
            assert!(i.time_limit() >= Duration::from_secs(3));
        }
        assert_eq!(
            WebInteraction::BestSellers.time_limit(),
            Duration::from_secs(5)
        );
    }
}

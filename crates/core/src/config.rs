//! Engine configuration.

use std::fmt;
use std::time::Duration;

/// How the coordinator picks the interval between two heartbeats.
///
/// The paper's central trade-off is batch size vs. latency: a longer
/// heartbeat amortizes shared operators over more queries, a shorter one
/// keeps light queries fast. `Fixed` pins the interval; `Adaptive` lets the
/// coordinator steer it each batch between `min` and `max` from the
/// admission-queue depth and the live light-query p99 (drawn from the
/// engine's phase histograms), with hysteresis so it converges instead of
/// oscillating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatPolicy {
    /// Constant interval (the pre-controller behaviour).
    Fixed(Duration),
    /// Controller-steered interval.
    Adaptive {
        /// Lower bound of the interval (latency floor).
        min: Duration,
        /// Upper bound of the interval (amortization ceiling).
        max: Duration,
        /// Light-query p99 the controller defends: the interval shrinks while
        /// the observed light p99 exceeds this target.
        target_light_p99: Duration,
    },
}

impl HeartbeatPolicy {
    /// The interval the coordinator starts with: the fixed interval, or the
    /// adaptive floor (latency-safe; the controller grows it under backlog).
    pub fn initial_interval(&self) -> Duration {
        match *self {
            HeartbeatPolicy::Fixed(d) => d,
            HeartbeatPolicy::Adaptive { min, .. } => min,
        }
    }

    /// True for [`HeartbeatPolicy::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, HeartbeatPolicy::Adaptive { .. })
    }

    /// Parses the operator-facing spec syntax: `fixed:MS` or
    /// `adaptive:MIN_MS,MAX_MS,TARGET_P99_MS` (fractional milliseconds
    /// allowed, e.g. `fixed:0.5` or `adaptive:0.5,8,2`).
    pub fn parse(spec: &str) -> Result<HeartbeatPolicy, String> {
        let ms = |s: &str| -> Result<Duration, String> {
            let v: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("bad millisecond value {s:?} in heartbeat spec"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("bad millisecond value {s:?} in heartbeat spec"));
            }
            Ok(Duration::from_nanos((v * 1_000_000.0) as u64))
        };
        match spec.trim().split_once(':') {
            Some(("fixed", rest)) => Ok(HeartbeatPolicy::Fixed(ms(rest)?)),
            Some(("adaptive", rest)) => {
                let parts: Vec<&str> = rest.split(',').collect();
                if parts.len() != 3 {
                    return Err(format!(
                        "adaptive heartbeat spec {spec:?} needs MIN_MS,MAX_MS,TARGET_P99_MS"
                    ));
                }
                let (min, max, target) = (ms(parts[0])?, ms(parts[1])?, ms(parts[2])?);
                if min > max {
                    return Err(format!("adaptive heartbeat spec {spec:?} has min > max"));
                }
                Ok(HeartbeatPolicy::Adaptive {
                    min,
                    max,
                    target_light_p99: target,
                })
            }
            _ => Err(format!(
                "heartbeat spec {spec:?} is neither fixed:MS nor adaptive:MIN,MAX,TARGET"
            )),
        }
    }
}

impl fmt::Display for HeartbeatPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        match *self {
            HeartbeatPolicy::Fixed(d) => write!(f, "fixed:{}", ms(d)),
            HeartbeatPolicy::Adaptive {
                min,
                max,
                target_light_p99,
            } => write!(
                f,
                "adaptive:{},{},{}",
                ms(min),
                ms(max),
                ms(target_light_p99)
            ),
        }
    }
}

/// Configuration of the batched SharedDB runtime.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Interval policy between two heartbeats when queries keep arriving. The
    /// paper uses heartbeats "in the order of one second or even less" for
    /// OLTP workloads; the default here is much smaller because the
    /// reproduced experiments run at laptop scale.
    pub heartbeat: HeartbeatPolicy,
    /// Maximum number of queries and updates admitted into one batch; `0`
    /// means unlimited. Bounding the batch bounds the latency of a cycle.
    pub max_batch_size: usize,
    /// Number of CPU cores the engine may use concurrently. This models the
    /// `maxcpus` knob of Section 5.1: operators still exist as threads, but at
    /// most `core_budget` of them execute a cycle at any moment.
    pub core_budget: usize,
    /// If true, the engine processes an available batch immediately instead of
    /// waiting for the full heartbeat interval (keeps latency low under light
    /// load; the paper's worst case of one queueing cycle still holds).
    pub eager_heartbeat: bool,
    /// Statements whose end-to-end latency reaches this threshold are written
    /// to the engine's slow-query log with their full phase breakdown
    /// (admission / batch-wait / execute). `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// Capacity (in events) of the batch-lifecycle trace journal — a bounded
    /// ring, so tracing is always-on with fixed memory. `0` disables tracing.
    pub trace_capacity: usize,
    /// Number of row segments each table is logically split into for
    /// intra-engine parallel shared scans (the paper's Crescando substrate
    /// runs one clock scan per core over a data partition). Eligible queries
    /// (see [`crate::scatter::scatter_spec`]) execute segment-parallel on an
    /// engine-owned worker pool and recombine per batch through
    /// [`crate::merge::MergeSpec`]; updates always stay unsegmented (the
    /// single-writer group commit is untouched). `1` (the default) compiles
    /// to the exact pre-segmentation inline path: no pool, no merge step.
    /// `0` is rejected by [`crate::Engine::start`].
    pub scan_segments: usize,
    /// Statement types forced into the *light* admission lane, overriding the
    /// plan-shape classification (point lookups light, scans/joins/aggregates
    /// heavy — see [`crate::Engine::statement_lane`]).
    pub light_statements: Vec<String>,
    /// Statement types forced into the *heavy* admission lane, overriding the
    /// plan-shape classification. A type named in both override lists is
    /// heavy (the conservative direction).
    pub heavy_statements: Vec<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            heartbeat: HeartbeatPolicy::Fixed(Duration::from_millis(2)),
            max_batch_size: 0,
            core_budget: usize::MAX,
            eager_heartbeat: true,
            slow_query_threshold: None,
            trace_capacity: 1024,
            scan_segments: 1,
            light_statements: Vec::new(),
            heavy_statements: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// Configuration with a fixed core budget.
    pub fn with_cores(cores: usize) -> Self {
        EngineConfig {
            core_budget: cores.max(1),
            ..Default::default()
        }
    }

    /// Sets a fixed heartbeat interval (shorthand for
    /// [`HeartbeatPolicy::Fixed`]).
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = HeartbeatPolicy::Fixed(interval);
        self
    }

    /// Sets the heartbeat policy (fixed or adaptive).
    pub fn heartbeat_policy(mut self, policy: HeartbeatPolicy) -> Self {
        self.heartbeat = policy;
        self
    }

    /// Forces statement types into the light admission lane.
    pub fn light_statements<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Self {
        self.light_statements = names.into_iter().map(Into::into).collect();
        self
    }

    /// Forces statement types into the heavy admission lane.
    pub fn heavy_statements<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Self {
        self.heavy_statements = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the maximum batch size (0 = unlimited).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch_size = n;
        self
    }

    /// Sets the slow-query threshold (`None` disables the slow-query log).
    pub fn slow_query(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Sets the trace-journal capacity in events (0 disables tracing).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Sets the number of intra-engine scan segments (1 = unsegmented; 0 is
    /// rejected at [`crate::Engine::start`]).
    pub fn scan_segments(mut self, segments: usize) -> Self {
        self.scan_segments = segments;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.core_budget >= 1);
        assert!(c.eager_heartbeat);
        assert_eq!(c.max_batch_size, 0);
        // The default must stay 1 so committed baselines remain comparable.
        assert_eq!(c.scan_segments, 1);
    }

    #[test]
    fn builders() {
        let c = EngineConfig::with_cores(0)
            .heartbeat(Duration::from_millis(10))
            .max_batch(100);
        assert_eq!(c.core_budget, 1); // clamped
        assert_eq!(
            c.heartbeat,
            HeartbeatPolicy::Fixed(Duration::from_millis(10))
        );
        assert_eq!(c.max_batch_size, 100);
        let c = c.heartbeat_policy(HeartbeatPolicy::Adaptive {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
            target_light_p99: Duration::from_millis(4),
        });
        assert!(c.heartbeat.is_adaptive());
        assert_eq!(c.heartbeat.initial_interval(), Duration::from_millis(1));
    }

    #[test]
    fn heartbeat_policy_parses_and_round_trips() {
        let fixed = HeartbeatPolicy::parse("fixed:2").unwrap();
        assert_eq!(fixed, HeartbeatPolicy::Fixed(Duration::from_millis(2)));
        let frac = HeartbeatPolicy::parse("fixed:0.5").unwrap();
        assert_eq!(frac, HeartbeatPolicy::Fixed(Duration::from_micros(500)));
        let adaptive = HeartbeatPolicy::parse("adaptive:0.5,8,2").unwrap();
        assert_eq!(
            adaptive,
            HeartbeatPolicy::Adaptive {
                min: Duration::from_micros(500),
                max: Duration::from_millis(8),
                target_light_p99: Duration::from_millis(2),
            }
        );
        // The rendered form parses back to the same policy.
        for p in [fixed, frac, adaptive] {
            assert_eq!(HeartbeatPolicy::parse(&p.to_string()).unwrap(), p);
        }
        assert!(HeartbeatPolicy::parse("adaptive:8,1,2").is_err()); // min > max
        assert!(HeartbeatPolicy::parse("adaptive:1,2").is_err()); // arity
        assert!(HeartbeatPolicy::parse("exponential:3").is_err());
        assert!(HeartbeatPolicy::parse("fixed:abc").is_err());
        assert!(HeartbeatPolicy::parse("fixed:-1").is_err());
    }
}

//! Engine configuration.

use std::time::Duration;

/// Configuration of the batched SharedDB runtime.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Interval between two heartbeats when queries keep arriving. The paper
    /// uses heartbeats "in the order of one second or even less" for OLTP
    /// workloads; the default here is much smaller because the reproduced
    /// experiments run at laptop scale.
    pub heartbeat: Duration,
    /// Maximum number of queries and updates admitted into one batch; `0`
    /// means unlimited. Bounding the batch bounds the latency of a cycle.
    pub max_batch_size: usize,
    /// Number of CPU cores the engine may use concurrently. This models the
    /// `maxcpus` knob of Section 5.1: operators still exist as threads, but at
    /// most `core_budget` of them execute a cycle at any moment.
    pub core_budget: usize,
    /// If true, the engine processes an available batch immediately instead of
    /// waiting for the full heartbeat interval (keeps latency low under light
    /// load; the paper's worst case of one queueing cycle still holds).
    pub eager_heartbeat: bool,
    /// Statements whose end-to-end latency reaches this threshold are written
    /// to the engine's slow-query log with their full phase breakdown
    /// (admission / batch-wait / execute). `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// Capacity (in events) of the batch-lifecycle trace journal — a bounded
    /// ring, so tracing is always-on with fixed memory. `0` disables tracing.
    pub trace_capacity: usize,
    /// Number of row segments each table is logically split into for
    /// intra-engine parallel shared scans (the paper's Crescando substrate
    /// runs one clock scan per core over a data partition). Eligible queries
    /// (see [`crate::scatter::scatter_spec`]) execute segment-parallel on an
    /// engine-owned worker pool and recombine per batch through
    /// [`crate::merge::MergeSpec`]; updates always stay unsegmented (the
    /// single-writer group commit is untouched). `1` (the default) compiles
    /// to the exact pre-segmentation inline path: no pool, no merge step.
    /// `0` is rejected by [`crate::Engine::start`].
    pub scan_segments: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            heartbeat: Duration::from_millis(2),
            max_batch_size: 0,
            core_budget: usize::MAX,
            eager_heartbeat: true,
            slow_query_threshold: None,
            trace_capacity: 1024,
            scan_segments: 1,
        }
    }
}

impl EngineConfig {
    /// Configuration with a fixed core budget.
    pub fn with_cores(cores: usize) -> Self {
        EngineConfig {
            core_budget: cores.max(1),
            ..Default::default()
        }
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval;
        self
    }

    /// Sets the maximum batch size (0 = unlimited).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch_size = n;
        self
    }

    /// Sets the slow-query threshold (`None` disables the slow-query log).
    pub fn slow_query(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Sets the trace-journal capacity in events (0 disables tracing).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Sets the number of intra-engine scan segments (1 = unsegmented; 0 is
    /// rejected at [`crate::Engine::start`]).
    pub fn scan_segments(mut self, segments: usize) -> Self {
        self.scan_segments = segments;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.core_budget >= 1);
        assert!(c.eager_heartbeat);
        assert_eq!(c.max_batch_size, 0);
        // The default must stay 1 so committed baselines remain comparable.
        assert_eq!(c.scan_segments, 1);
    }

    #[test]
    fn builders() {
        let c = EngineConfig::with_cores(0)
            .heartbeat(Duration::from_millis(10))
            .max_batch(100);
        assert_eq!(c.core_budget, 1); // clamped
        assert_eq!(c.heartbeat, Duration::from_millis(10));
        assert_eq!(c.max_batch_size, 100);
    }
}

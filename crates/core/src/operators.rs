//! The shared relational operators.
//!
//! Every operator processes **one batch per cycle**: it receives the tuples of
//! all its inputs for the current batch (already in the NF² data-query model)
//! plus the per-query activations, and produces the output tuples of the batch
//! (Algorithm 1 of the paper; the engine drives the cycles and the channels).
//!
//! Operators are implemented as pure functions over `(activations, inputs)` so
//! they can be unit-tested without threads. The engine wraps them in operator
//! threads (see [`crate::engine`]).
//!
//! The unifying rule (Section 3.3/3.4): each operator restricts incoming
//! tuples to the queries *activated at this operator* in the current batch,
//! performs its relational work **once** over the union of all interesting
//! tuples, and annotates outputs with the queries they belong to. Joins amend
//! their predicate with the query-set intersection, which prevents tuples of
//! unrelated queries from combining.

use crate::batch::Activation;
use crate::plan::{AggregateSpec, OperatorSpec};
use shareddb_common::agg::{Accumulator, AggregateFunction};
use shareddb_common::sort::compare_tuples;
use shareddb_common::{Error, Expr, QTuple, QueryId, QuerySet, Result, SortKey, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::Catalog;
use std::collections::HashMap;

/// Context handed to operator execution: the catalog (for index nested-loops
/// joins that probe base tables) and the snapshot of the current batch.
pub struct ExecContext<'a> {
    /// The storage catalog.
    pub catalog: &'a Catalog,
    /// Snapshot all storage reads of this batch use.
    pub snapshot: Snapshot,
}

/// Executes one non-storage operator over the inputs of the current batch.
///
/// `inputs[i]` holds the tuples produced by the operator's `i`-th input for
/// this batch. Storage operators (scans, probes) are executed by
/// [`crate::storage_ops`] instead.
pub fn execute_operator(
    spec: &OperatorSpec,
    activations: &[(QueryId, Activation)],
    inputs: Vec<Vec<QTuple>>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<QTuple>> {
    match spec {
        OperatorSpec::TableScan { .. } | OperatorSpec::IndexProbe { .. } => Err(Error::Internal(
            "storage operators are executed by the storage layer".into(),
        )),
        OperatorSpec::Filter => execute_filter(activations, one_input(inputs)?),
        OperatorSpec::HashJoin {
            build_key,
            probe_key,
        } => {
            let mut inputs = inputs.into_iter();
            let build = inputs.next().unwrap_or_default();
            let probe = inputs.next().unwrap_or_default();
            execute_hash_join(activations, build, probe, *build_key, *probe_key)
        }
        OperatorSpec::NestedLoopJoin => {
            let mut inputs = inputs.into_iter();
            let build = inputs.next().unwrap_or_default();
            let probe = inputs.next().unwrap_or_default();
            execute_nested_loop_join(activations, build, probe)
        }
        OperatorSpec::IndexNlJoin {
            table,
            outer_key,
            inner_column,
        } => execute_index_nl_join(
            activations,
            one_input(inputs)?,
            table,
            *outer_key,
            *inner_column,
            ctx,
        ),
        OperatorSpec::Sort { keys } => execute_sort(activations, one_input(inputs)?, keys),
        OperatorSpec::TopN { keys } => execute_top_n(activations, one_input(inputs)?, keys),
        OperatorSpec::GroupBy {
            group_columns,
            aggregates,
        } => execute_group_by(activations, one_input(inputs)?, group_columns, aggregates),
        OperatorSpec::Distinct => execute_distinct(activations, one_input(inputs)?),
        OperatorSpec::Union => execute_union(activations, inputs),
    }
}

fn one_input(mut inputs: Vec<Vec<QTuple>>) -> Result<Vec<QTuple>> {
    if inputs.len() != 1 {
        return Err(Error::Internal(format!(
            "operator expected exactly one input, got {}",
            inputs.len()
        )));
    }
    Ok(inputs.remove(0))
}

/// The set of queries activated at this operator in the current batch.
fn active_set(activations: &[(QueryId, Activation)]) -> QuerySet {
    activations.iter().map(|(q, _)| *q).collect()
}

/// Restricts a tuple to the queries activated at this operator; returns `None`
/// when no activated query is interested.
fn restrict(tuple: &QTuple, active: &QuerySet) -> Option<QTuple> {
    let queries = tuple.queries.intersect(active);
    if queries.is_empty() {
        None
    } else {
        Some(QTuple::new(tuple.tuple.clone(), queries))
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

fn execute_filter(
    activations: &[(QueryId, Activation)],
    input: Vec<QTuple>,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    // query -> residual predicate
    let mut predicates: HashMap<QueryId, &Expr> = HashMap::new();
    for (q, a) in activations {
        if let Activation::Filter { predicate } = a {
            predicates.insert(*q, predicate);
        }
    }
    let mut out = Vec::new();
    for tuple in &input {
        let Some(restricted) = restrict(tuple, &active) else {
            continue;
        };
        let mut keep = QuerySet::new();
        for q in restricted.queries.iter() {
            match predicates.get(&q) {
                Some(p) => {
                    if p.eval_predicate(&restricted.tuple)? {
                        keep.insert(q);
                    }
                }
                // A query that participates without a predicate keeps the
                // tuple unconditionally.
                None => {
                    keep.insert(q);
                }
            }
        }
        if !keep.is_empty() {
            out.push(QTuple::new(restricted.tuple, keep));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

fn execute_hash_join(
    activations: &[(QueryId, Activation)],
    build: Vec<QTuple>,
    probe: Vec<QTuple>,
    build_key: usize,
    probe_key: usize,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    // Build phase: hash the (restricted) build side on its join key.
    let mut table: HashMap<Value, Vec<QTuple>> = HashMap::new();
    for tuple in &build {
        if let Some(restricted) = restrict(tuple, &active) {
            let key = restricted.tuple[build_key].clone();
            if key.is_null() {
                continue; // NULL never joins
            }
            table.entry(key).or_default().push(restricted);
        }
    }
    // Probe phase: the effective join predicate is
    // `build_key = probe_key AND build.query_id ∩ probe.query_id ≠ ∅`.
    let mut out = Vec::new();
    for tuple in &probe {
        let Some(restricted) = restrict(tuple, &active) else {
            continue;
        };
        let key = &restricted.tuple[probe_key];
        if key.is_null() {
            continue;
        }
        if let Some(matches) = table.get(key) {
            for build_tuple in matches {
                if let Some(joined) = build_tuple.join(&restricted) {
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Nested-loop join (cross product)
// ---------------------------------------------------------------------------

/// Tuples per block of the block-nested loop. Each outer block is combined
/// with the whole inner side before the next outer block starts, keeping the
/// working set of the quadratic pass cache-sized while still performing it
/// once for *all* statements of the batch.
const NL_BLOCK: usize = 256;

fn execute_nested_loop_join(
    activations: &[(QueryId, Activation)],
    build: Vec<QTuple>,
    probe: Vec<QTuple>,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    // Restrict both sides once; the pairing below only has to intersect the
    // two per-tuple query sets (the shared-join rule of Section 3.3 with the
    // key predicate dropped: `build.query_id ∩ probe.query_id ≠ ∅`).
    let build: Vec<QTuple> = build.iter().filter_map(|t| restrict(t, &active)).collect();
    let probe: Vec<QTuple> = probe.iter().filter_map(|t| restrict(t, &active)).collect();
    let mut out = Vec::new();
    for build_block in build.chunks(NL_BLOCK) {
        for probe_tuple in &probe {
            for build_tuple in build_block {
                if let Some(joined) = build_tuple.join(probe_tuple) {
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Index nested-loops join
// ---------------------------------------------------------------------------

fn execute_index_nl_join(
    activations: &[(QueryId, Activation)],
    outer: Vec<QTuple>,
    table: &str,
    outer_key: usize,
    inner_column: usize,
    ctx: &ExecContext<'_>,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    let handle = ctx.catalog.table(table)?;
    let inner = handle.read();
    let mut out = Vec::new();
    for tuple in &outer {
        let Some(restricted) = restrict(tuple, &active) else {
            continue;
        };
        let key = &restricted.tuple[outer_key];
        if key.is_null() {
            continue;
        }
        let matches: Vec<Tuple> = if inner.has_index_on(inner_column) {
            inner
                .index_lookup(inner_column, key, ctx.snapshot)
                .into_iter()
                .map(|(_, row)| row.clone())
                .collect()
        } else if inner.primary_key() == [inner_column] {
            inner
                .lookup_pk(std::slice::from_ref(key), ctx.snapshot)
                .map(|(_, row)| vec![row.clone()])
                .unwrap_or_default()
        } else {
            inner
                .scan(ctx.snapshot)
                .filter(|(_, row)| row[inner_column].sql_eq(key))
                .map(|(_, row)| row.clone())
                .collect()
        };
        for inner_row in matches {
            out.push(QTuple::new(
                restricted.tuple.concat(&inner_row),
                restricted.queries.clone(),
            ));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Sort / Top-N
// ---------------------------------------------------------------------------

fn execute_sort(
    activations: &[(QueryId, Activation)],
    input: Vec<QTuple>,
    keys: &[SortKey],
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    let mut tuples: Vec<QTuple> = input.iter().filter_map(|t| restrict(t, &active)).collect();
    // One shared sort over the union of all interested tuples (Figure 4).
    tuples.sort_by(|a, b| compare_tuples(&a.tuple, &b.tuple, keys));
    Ok(tuples)
}

fn execute_top_n(
    activations: &[(QueryId, Activation)],
    input: Vec<QTuple>,
    keys: &[SortKey],
) -> Result<Vec<QTuple>> {
    // Phase 1 (shared): sort everything once.
    let sorted = execute_sort(activations, input, keys)?;
    // Phase 2 (per query): keep the first `limit` rows of each query.
    let mut limits: HashMap<QueryId, usize> = HashMap::new();
    for (q, a) in activations {
        if let Activation::TopN { limit } = a {
            limits.insert(*q, *limit);
        }
    }
    let mut taken: HashMap<QueryId, usize> = HashMap::new();
    let mut out = Vec::new();
    for tuple in sorted {
        let mut keep = QuerySet::new();
        for q in tuple.queries.iter() {
            let limit = limits.get(&q).copied().unwrap_or(usize::MAX);
            let count = taken.entry(q).or_insert(0);
            if *count < limit {
                *count += 1;
                keep.insert(q);
            }
        }
        if !keep.is_empty() {
            out.push(QTuple::new(tuple.tuple, keep));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Group-by
// ---------------------------------------------------------------------------

fn execute_group_by(
    activations: &[(QueryId, Activation)],
    input: Vec<QTuple>,
    group_columns: &[usize],
    aggregates: &[AggregateSpec],
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    let mut having: HashMap<QueryId, Option<&Expr>> = HashMap::new();
    // Queries in partial-aggregation mode (fanned-out group-by roots): their
    // AVG output columns carry the partial sum, with one hidden count column
    // per AVG appended to the row so the cluster merge step can recombine
    // exact averages across partitions.
    let mut partials: HashMap<QueryId, bool> = HashMap::new();
    for (q, a) in activations {
        if let Activation::Having { predicate, partial } = a {
            having.insert(*q, predicate.as_ref());
            partials.insert(*q, *partial);
        }
    }

    // Phase 1 (shared): group all interesting tuples once, regardless of which
    // query they belong to.
    struct GroupState {
        key: Vec<Value>,
        /// Per query: one accumulator per aggregate.
        per_query: HashMap<QueryId, Vec<Accumulator>>,
    }
    let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
    for tuple in &input {
        let Some(restricted) = restrict(tuple, &active) else {
            continue;
        };
        let key: Vec<Value> = group_columns
            .iter()
            .map(|&c| restricted.tuple[c].clone())
            .collect();
        let state = groups.entry(key.clone()).or_insert_with(|| GroupState {
            key,
            per_query: HashMap::new(),
        });
        // Phase 2 (per query): aggregation state is per query because each
        // query may aggregate a different subset of the group.
        for q in restricted.queries.iter() {
            let accumulators = state.per_query.entry(q).or_insert_with(|| {
                aggregates
                    .iter()
                    .map(|a| a.function.accumulator())
                    .collect()
            });
            for (acc, spec) in accumulators.iter_mut().zip(aggregates) {
                acc.update(&restricted.tuple[spec.column])?;
            }
        }
    }

    // Emit one output row per (group, query), applying the per-query HAVING.
    let mut states: Vec<&GroupState> = groups.values().collect();
    states.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = Vec::new();
    for state in states {
        let mut queries: Vec<QueryId> = state.per_query.keys().copied().collect();
        queries.sort_unstable();
        for q in queries {
            let accumulators = &state.per_query[&q];
            let partial = partials.get(&q).copied().unwrap_or(false);
            let mut values = state.key.clone();
            if partial {
                values.extend(accumulators.iter().map(|a| {
                    if a.function() == AggregateFunction::Avg {
                        a.partial_sum()
                    } else {
                        a.finish()
                    }
                }));
                // Hidden AVG count columns, in aggregate order.
                values.extend(
                    accumulators
                        .iter()
                        .filter(|a| a.function() == AggregateFunction::Avg)
                        .map(|a| Value::Int(a.count() as i64)),
                );
            } else {
                values.extend(accumulators.iter().map(|a| a.finish()));
            }
            let row = Tuple::new(values);
            // HAVING evaluates over *final* aggregate values; a query in
            // partial mode ships partial groups, so its predicate is applied
            // after recombination (the cluster merge), not here.
            if !partial {
                if let Some(Some(pred)) = having.get(&q) {
                    if !pred.eval_predicate(&row)? {
                        continue;
                    }
                }
            }
            out.push(QTuple::new(row, QuerySet::singleton(q)));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Distinct / Union
// ---------------------------------------------------------------------------

fn execute_distinct(
    activations: &[(QueryId, Activation)],
    input: Vec<QTuple>,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    let mut seen: HashMap<Tuple, QuerySet> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for tuple in &input {
        let Some(restricted) = restrict(tuple, &active) else {
            continue;
        };
        match seen.get_mut(&restricted.tuple) {
            Some(set) => set.union_in_place(&restricted.queries),
            None => {
                order.push(restricted.tuple.clone());
                seen.insert(restricted.tuple.clone(), restricted.queries);
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|t| {
            let queries = seen.remove(&t).unwrap_or_default();
            QTuple::new(t, queries)
        })
        .collect())
}

fn execute_union(
    activations: &[(QueryId, Activation)],
    inputs: Vec<Vec<QTuple>>,
) -> Result<Vec<QTuple>> {
    let active = active_set(activations);
    let mut out = Vec::new();
    for input in inputs {
        for tuple in &input {
            if let Some(restricted) = restrict(tuple, &active) {
                out.push(restricted);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::agg::AggregateFunction;
    use shareddb_common::tuple;
    use shareddb_storage::TableDef;

    fn ctx(catalog: &Catalog) -> ExecContext<'_> {
        ExecContext {
            catalog,
            snapshot: catalog.oracle().read_ts(),
        }
    }

    fn qt(values: Tuple, queries: &[u32]) -> QTuple {
        QTuple::new(values, queries.iter().copied().collect())
    }

    fn participate(ids: &[u32]) -> Vec<(QueryId, Activation)> {
        ids.iter()
            .map(|&i| (QueryId(i), Activation::Participate))
            .collect()
    }

    #[test]
    fn filter_applies_per_query_predicates() {
        let catalog = Catalog::new();
        let activations = vec![
            (
                QueryId(1),
                Activation::Filter {
                    predicate: Expr::col(1).like(Expr::lit("%DB%")),
                },
            ),
            (
                QueryId(2),
                Activation::Filter {
                    predicate: Expr::col(1).like(Expr::lit("%Paper%")),
                },
            ),
        ];
        let input = vec![
            qt(tuple![1i64, "SharedDB Paper"], &[1, 2, 9]),
            qt(tuple![2i64, "Another Paper"], &[1, 2]),
            qt(tuple![3i64, "Unrelated"], &[1, 2]),
        ];
        let out = execute_operator(
            &OperatorSpec::Filter,
            &activations,
            vec![input],
            &ctx(&catalog),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // Row 1 satisfies both; query 9 is not active here and is dropped.
        assert_eq!(out[0].queries, [1u32, 2].into_iter().collect());
        // Row 2 satisfies only query 2.
        assert_eq!(out[1].queries, [2u32].into_iter().collect());
    }

    #[test]
    fn hash_join_amends_predicate_with_query_sets() {
        let catalog = Catalog::new();
        // Figure 3: an R tuple only relevant for Q1 must not join an S tuple
        // only relevant for Q2, even when the keys match.
        let build = vec![
            qt(tuple![1i64, "r1"], &[1]),
            qt(tuple![2i64, "r2"], &[1, 2]),
        ];
        let probe = vec![
            qt(tuple![1i64, "s1"], &[2]),
            qt(tuple![2i64, "s2"], &[2]),
            qt(tuple![2i64, "s3"], &[1]),
            qt(tuple![3i64, "s4"], &[1, 2]),
        ];
        let out = execute_operator(
            &OperatorSpec::HashJoin {
                build_key: 0,
                probe_key: 0,
            },
            &participate(&[1, 2]),
            vec![build, probe],
            &ctx(&catalog),
        )
        .unwrap();
        // key 1: R{1} x S{2} -> empty intersection, no output.
        // key 2: R{1,2} x S{2} -> {2}; R{1,2} x S{1} -> {1}.
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .any(|t| t.tuple[3] == Value::text("s2") && t.queries == [2u32].into_iter().collect()));
        assert!(out
            .iter()
            .any(|t| t.tuple[3] == Value::text("s3") && t.queries == [1u32].into_iter().collect()));
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let catalog = Catalog::new();
        let build = vec![qt(tuple![Value::Null, "r"], &[1])];
        let probe = vec![qt(tuple![Value::Null, "s"], &[1])];
        let out = execute_operator(
            &OperatorSpec::HashJoin {
                build_key: 0,
                probe_key: 0,
            },
            &participate(&[1]),
            vec![build, probe],
            &ctx(&catalog),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    /// The cross-product operator combines every pair whose query sets
    /// intersect — and only those pairs (the shared-join rule without the
    /// key predicate).
    #[test]
    fn nested_loop_join_is_a_query_set_aware_cross_product() {
        let catalog = Catalog::new();
        let build = vec![
            qt(tuple![1i64, "r1"], &[1]),
            qt(tuple![2i64, "r2"], &[1, 2]),
        ];
        let probe = vec![qt(tuple![10i64], &[2]), qt(tuple![20i64], &[1, 2])];
        let out = execute_operator(
            &OperatorSpec::NestedLoopJoin,
            &participate(&[1, 2]),
            vec![build, probe],
            &ctx(&catalog),
        )
        .unwrap();
        // r1×10 has empty intersection; the other three pairs survive.
        assert_eq!(out.len(), 3);
        for t in &out {
            assert_eq!(t.tuple.len(), 3);
        }
        assert!(out
            .iter()
            .any(|t| t.tuple[1] == Value::text("r1") && t.queries == [1u32].into_iter().collect()));
        assert!(out.iter().any(|t| t.tuple[0] == Value::Int(2)
            && t.tuple[2] == Value::Int(10)
            && t.queries == [2u32].into_iter().collect()));
    }

    /// Blocking must not change the result: a build side wider than one
    /// block produces exactly |build| × |probe| pairs.
    #[test]
    fn nested_loop_join_blocks_cover_everything() {
        let catalog = Catalog::new();
        let n = NL_BLOCK + 17;
        let build: Vec<QTuple> = (0..n as i64).map(|i| qt(tuple![i], &[1])).collect();
        let probe = vec![qt(tuple![100i64], &[1]), qt(tuple![200i64], &[1])];
        let out = execute_operator(
            &OperatorSpec::NestedLoopJoin,
            &participate(&[1]),
            vec![build, probe],
            &ctx(&catalog),
        )
        .unwrap();
        assert_eq!(out.len(), n * 2);
    }

    /// Partial mode defers HAVING to the merge step: partial groups must not
    /// be filtered on their (incomplete) aggregate values.
    #[test]
    fn group_by_partial_mode_defers_having() {
        let catalog = Catalog::new();
        let input = vec![
            qt(tuple!["CH", 100i64], &[1]),
            qt(tuple!["DE", 300i64], &[1]),
        ];
        let spec = OperatorSpec::GroupBy {
            group_columns: vec![0],
            aggregates: vec![AggregateSpec {
                function: AggregateFunction::Sum,
                column: 1,
                output_name: "S".into(),
            }],
        };
        // HAVING SUM > 200 would drop CH locally; in partial mode another
        // partition may complete the group, so both rows must ship.
        let having = Some(Expr::col(1).gt(Expr::lit(200i64)));
        let partial = vec![(
            QueryId(1),
            Activation::Having {
                predicate: having.clone(),
                partial: true,
            },
        )];
        let out = execute_operator(&spec, &partial, vec![input.clone()], &ctx(&catalog)).unwrap();
        assert_eq!(out.len(), 2, "partial mode filtered partial groups");
        // The same activation without partial mode filters as usual.
        let final_mode = vec![(
            QueryId(1),
            Activation::Having {
                predicate: having,
                partial: false,
            },
        )];
        let out = execute_operator(&spec, &final_mode, vec![input], &ctx(&catalog)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple[0], Value::text("DE"));
    }

    #[test]
    fn index_nl_join_probes_base_table() {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", shareddb_common::DataType::Int)
                    .column("I_TITLE", shareddb_common::DataType::Text)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..10i64).map(|i| tuple![i, format!("title{i}")]).collect(),
            )
            .unwrap();
        // Outer tuples reference items 3 and 7.
        let outer = vec![
            qt(tuple![100i64, 3i64], &[1]),
            qt(tuple![101i64, 7i64], &[1, 2]),
            qt(tuple![102i64, 999i64], &[2]), // no match
        ];
        let out = execute_operator(
            &OperatorSpec::IndexNlJoin {
                table: "ITEM".into(),
                outer_key: 1,
                inner_column: 0,
            },
            &participate(&[1, 2]),
            vec![outer],
            &ctx(&catalog),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple.len(), 4);
        assert_eq!(out[0].tuple[3], Value::text("title3"));
        assert_eq!(out[1].queries, [1u32, 2].into_iter().collect());
    }

    #[test]
    fn shared_sort_matches_figure_4() {
        let catalog = Catalog::new();
        // USERS(Name, Account, Birthdate) — queries A=1 and B=2.
        let input = vec![
            qt(tuple!["John Smith", 3000i64, 19800305i64], &[1, 2]),
            qt(tuple!["Kate Johnson", 800i64, 19760411i64], &[]),
            qt(tuple!["Bill Harisson", 1230i64, 19780302i64], &[2]),
            qt(tuple!["Nick Lee", 540i64, 19820209i64], &[1]),
            qt(tuple!["James Meyer", 2300i64, 19810309i64], &[1, 2]),
        ];
        let out = execute_operator(
            &OperatorSpec::Sort {
                keys: vec![SortKey::asc(2)],
            },
            &participate(&[1, 2]),
            vec![input],
            &ctx(&catalog),
        )
        .unwrap();
        // Kate is dropped (no interested query); the rest is sorted by date.
        let names: Vec<String> = out
            .iter()
            .map(|t| t.tuple[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["Bill Harisson", "John Smith", "James Meyer", "Nick Lee"]
        );
        assert_eq!(out[0].queries, [2u32].into_iter().collect());
        assert_eq!(out[1].queries, [1u32, 2].into_iter().collect());
    }

    #[test]
    fn top_n_shares_sort_and_limits_per_query() {
        let catalog = Catalog::new();
        let input: Vec<QTuple> = (0..20i64)
            .map(|i| {
                let subscribers: &[u32] = if i % 2 == 0 { &[1, 2] } else { &[1] };
                qt(tuple![i], subscribers)
            })
            .collect();
        let activations = vec![
            (QueryId(1), Activation::TopN { limit: 3 }),
            (QueryId(2), Activation::TopN { limit: 5 }),
        ];
        let out = execute_operator(
            &OperatorSpec::TopN {
                keys: vec![SortKey::desc(0)],
            },
            &activations,
            vec![input],
            &ctx(&catalog),
        )
        .unwrap();
        let q1: Vec<i64> = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .map(|t| t.tuple[0].as_int().unwrap())
            .collect();
        let q2: Vec<i64> = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .map(|t| t.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(q1, vec![19, 18, 17]);
        assert_eq!(q2, vec![18, 16, 14, 12, 10]);
    }

    #[test]
    fn group_by_shared_grouping_per_query_aggregates() {
        let catalog = Catalog::new();
        // (COUNTRY, ACCOUNT): query 1 sees all rows, query 2 only some.
        let input = vec![
            qt(tuple!["CH", 100i64], &[1, 2]),
            qt(tuple!["CH", 200i64], &[1]),
            qt(tuple!["DE", 300i64], &[1, 2]),
            qt(tuple!["DE", 400i64], &[2]),
        ];
        let spec = OperatorSpec::GroupBy {
            group_columns: vec![0],
            aggregates: vec![
                AggregateSpec {
                    function: AggregateFunction::Sum,
                    column: 1,
                    output_name: "SUM_ACCOUNT".into(),
                },
                AggregateSpec {
                    function: AggregateFunction::Count,
                    column: 1,
                    output_name: "CNT".into(),
                },
            ],
        };
        let activations = vec![
            (
                QueryId(1),
                Activation::Having {
                    predicate: None,
                    partial: false,
                },
            ),
            (
                QueryId(2),
                Activation::Having {
                    // HAVING SUM(ACCOUNT) > 150
                    predicate: Some(Expr::col(1).gt(Expr::lit(150i64))),
                    partial: false,
                },
            ),
        ];
        let out = execute_operator(&spec, &activations, vec![input], &ctx(&catalog)).unwrap();
        // Query 1: CH -> 300 (2 rows), DE -> 300 (1 row).
        // Query 2: CH -> 100 (fails HAVING), DE -> 700 (passes).
        let find = |q: u32, country: &str| {
            out.iter()
                .find(|t| t.queries.contains(QueryId(q)) && t.tuple[0] == Value::text(country))
        };
        assert_eq!(find(1, "CH").unwrap().tuple[1], Value::Int(300));
        assert_eq!(find(1, "CH").unwrap().tuple[2], Value::Int(2));
        assert_eq!(find(1, "DE").unwrap().tuple[1], Value::Int(300));
        assert!(find(2, "CH").is_none());
        assert_eq!(find(2, "DE").unwrap().tuple[1], Value::Int(700));
    }

    /// Partial-aggregation mode (fanout): AVG columns ship the partial sum
    /// with a hidden count column appended; other aggregates and non-partial
    /// queries of the same batch are untouched.
    #[test]
    fn group_by_partial_mode_ships_avg_sum_and_count() {
        let catalog = Catalog::new();
        let input = vec![
            qt(tuple!["CH", 100i64], &[1, 2]),
            qt(tuple!["CH", 200i64], &[1, 2]),
        ];
        let spec = OperatorSpec::GroupBy {
            group_columns: vec![0],
            aggregates: vec![
                AggregateSpec {
                    function: AggregateFunction::Avg,
                    column: 1,
                    output_name: "AVG_ACCOUNT".into(),
                },
                AggregateSpec {
                    function: AggregateFunction::Sum,
                    column: 1,
                    output_name: "SUM_ACCOUNT".into(),
                },
            ],
        };
        let activations = vec![
            (
                QueryId(1),
                Activation::Having {
                    predicate: None,
                    partial: true,
                },
            ),
            (
                QueryId(2),
                Activation::Having {
                    predicate: None,
                    partial: false,
                },
            ),
        ];
        let out = execute_operator(&spec, &activations, vec![input], &ctx(&catalog)).unwrap();
        let row = |q: u32| out.iter().find(|t| t.queries.contains(QueryId(q))).unwrap();
        // Partial query: [key, partial AVG sum, SUM, hidden AVG count].
        let partial = row(1);
        assert_eq!(partial.tuple.len(), 4);
        assert_eq!(partial.tuple[1], Value::Float(300.0));
        assert_eq!(partial.tuple[2], Value::Int(300));
        assert_eq!(partial.tuple[3], Value::Int(2));
        // Normal query: final values, no hidden columns.
        let normal = row(2);
        assert_eq!(normal.tuple.len(), 3);
        assert_eq!(normal.tuple[1], Value::Float(150.0));
        assert_eq!(normal.tuple[2], Value::Int(300));
    }

    #[test]
    fn distinct_merges_query_sets() {
        let catalog = Catalog::new();
        let input = vec![
            qt(tuple!["A"], &[1]),
            qt(tuple!["A"], &[2]),
            qt(tuple!["B"], &[1, 2]),
            qt(tuple!["B"], &[1]),
        ];
        let out = execute_operator(
            &OperatorSpec::Distinct,
            &participate(&[1, 2]),
            vec![input],
            &ctx(&catalog),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple, tuple!["A"]);
        assert_eq!(out[0].queries, [1u32, 2].into_iter().collect());
        assert_eq!(out[1].queries, [1u32, 2].into_iter().collect());
    }

    #[test]
    fn union_concatenates_inputs() {
        let catalog = Catalog::new();
        let a = vec![qt(tuple![1i64], &[1])];
        let b = vec![qt(tuple![2i64], &[1]), qt(tuple![3i64], &[7])];
        let out = execute_operator(
            &OperatorSpec::Union,
            &participate(&[1]),
            vec![a, b],
            &ctx(&catalog),
        )
        .unwrap();
        // The tuple subscribed only by inactive query 7 is dropped.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn storage_specs_rejected_here() {
        let catalog = Catalog::new();
        let err = execute_operator(
            &OperatorSpec::TableScan { table: "X".into() },
            &[],
            vec![],
            &ctx(&catalog),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
    }

    #[test]
    fn wrong_input_arity_is_an_error() {
        let catalog = Catalog::new();
        assert!(execute_operator(
            &OperatorSpec::Filter,
            &[],
            vec![vec![], vec![]],
            &ctx(&catalog)
        )
        .is_err());
    }
}

//! # shareddb-core
//!
//! The core of SharedDB: the **global query plan**, the **shared operators**
//! and the **batched, push-based runtime** (Sections 3 and 4 of the paper).
//!
//! ## Execution model
//!
//! Instead of compiling every query into its own plan, the whole workload (a
//! set of prepared-statement *query types*) is compiled into one always-on
//! [`plan::GlobalPlan`]. Clients execute statements with concrete parameters;
//! each execution becomes an *activation* that is routed through the shared
//! operators of the plan.
//!
//! Queries and updates are **batched**: while one batch is processed, newly
//! arriving queries queue up; when the batch finishes, the queues are drained
//! to form the next batch ("heartbeat", Section 3.2). Every operator of the
//! plan runs on its own thread ([`engine::Engine`]) and processes one batch
//! per cycle, following the operator skeleton of Algorithm 1.
//!
//! Shared operators implement the NF² data-query model: tuples carry the set
//! of interested queries, joins amend their predicate with the query-set
//! intersection, and a final Γ(query_id) router distributes results back to
//! clients.
//!
//! ## Module map
//!
//! * [`plan`] — operator specs, plan builder, statement registry, deployment.
//! * [`operators`] — the shared relational operators (pure batch functions).
//! * [`storage_ops`] — scan / index-probe operators backed by `shareddb-storage`.
//! * [`batch`] — activations, active queries, batch assembly.
//! * [`engine`] — the multi-threaded batching runtime and client sessions.
//! * [`scatter`] — the partitionability walker: which statement shapes can run
//!   over disjoint row partitions (cluster fanout and intra-engine segments).
//! * [`merge`] — recombination of partitioned partial results (`MergeSpec`).
//! * [`explain`] — EXPLAIN/EXPLAIN ANALYZE: annotated statement subtrees,
//!   sharing sets, text + DOT rendering.
//! * [`stats`] — per-operator and engine-level metrics, phase histograms,
//!   per-statement-type cost attribution.
//! * [`trace`] — the bounded batch-lifecycle trace journal.
//! * [`budget`] — the core budget used to emulate "number of CPU cores".
//! * [`config`] — engine configuration.

pub mod batch;
pub mod budget;
pub mod config;
pub mod engine;
pub mod explain;
pub mod merge;
pub mod operators;
pub mod plan;
pub mod scatter;
pub mod stats;
pub mod storage_ops;
pub mod trace;

pub use batch::{Activation, ActiveQuery, QueryBatch};
pub use config::{EngineConfig, HeartbeatPolicy};
pub use engine::{Engine, Lane, QueryOutcome, ResultSet, SubmitOptions, WriteFence};
pub use explain::{
    explain_statement, render_dot, render_explain_text, sharing_sets, AnalyzeData, ExplainNode,
    ExplainTree,
};
pub use merge::{merge_results, MergeSpec};
pub use plan::{
    ActivationTemplate, ComputedColumn, GlobalPlan, OperatorId, OperatorSpec, PlanBuilder,
    StatementKind, StatementRegistry, StatementSpec,
};
pub use scatter::{scatter_spec, ScatterSpec};
pub use stats::{
    merge_attribution, AttributionEntry, Phase, SegmentStatsSnapshot, SlowQueryRecord,
    StatementPhaseSnapshot, IDLE_STATEMENT, NUM_PHASES,
};
pub use storage_ops::tuple_partition;
pub use trace::{TraceEvent, TraceJournal, TraceRecord};

//! Query activations and batches.
//!
//! A client executes a registered statement with a parameter vector. The
//! engine *binds* the statement's activation templates with those parameters,
//! producing an [`ActiveQuery`] (or [`ActiveUpdate`]); active queries queue up
//! and are grouped into a [`QueryBatch`] at the next heartbeat (Section 3.2).

use crate::engine::{SubmitOptions, WriteFence};
use crate::plan::OperatorId;
use crate::plan::{
    ActivationTemplate, ComputedColumn, StatementKind, StatementSpec, UpdateTemplate,
};
use shareddb_common::ids::{BatchId, TicketId};
use shareddb_common::{Error, Expr, QueryId, Result, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::{ProbeRange, UpdateOp};
use std::time::Instant;

/// A bound (parameter-free) activation of one operator for one query.
#[derive(Debug, Clone)]
pub enum Activation {
    /// Selection predicate for a shared scan.
    Scan {
        /// Bound predicate.
        predicate: Expr,
        /// Optional horizontal partition `(index, of)`: the scan only
        /// subscribes this query to rows whose
        /// [`crate::storage_ops::tuple_partition`] equals `index`. Used by the
        /// cluster layer to fan a query out over engine replicas (§4.5).
        partition: Option<(u32, u32)>,
        /// Columns hashed by the partition function for this scan (indices
        /// into the table schema); `None` hashes the table's primary key.
        /// Set per operator from [`SubmitOptions::partition_columns`] to
        /// co-partition join inputs by the join key. The same column set
        /// feeds the intra-engine `segment` hash, so fanout partition
        /// columns take precedence over the default pk segmenting.
        partition_columns: Option<Vec<usize>>,
        /// Intra-engine row segment `(index, of)`: set by the engine when it
        /// rewrites an eligible query's activations per scan segment
        /// (`EngineConfig::scan_segments > 1`). Applied *in addition to* the
        /// cluster `partition` — a fanned-out partition may itself run
        /// segmented. `None` (the default; [`crate::engine::bind_query`]
        /// never sets it) scans the whole table (or cluster partition).
        segment: Option<(u32, u32)>,
        /// Pinned MVCC read snapshot ([`SubmitOptions::pinned_snapshot`]);
        /// `None` reads the executing batch's own snapshot.
        snapshot: Option<Snapshot>,
    },
    /// Key/range look-up for a shared index probe.
    Probe {
        /// Probed column.
        column: usize,
        /// Concrete key range.
        range: ProbeRange,
        /// Residual predicate on fetched rows.
        residual: Option<Expr>,
        /// Pinned MVCC read snapshot ([`SubmitOptions::pinned_snapshot`]).
        snapshot: Option<Snapshot>,
    },
    /// Residual predicate for a shared filter.
    Filter {
        /// Bound predicate.
        predicate: Expr,
    },
    /// Participation without per-query configuration.
    Participate,
    /// Per-query limit of a shared Top-N.
    TopN {
        /// Row limit.
        limit: usize,
    },
    /// Per-query HAVING predicate of a shared group-by.
    Having {
        /// Bound predicate (over the group-by output schema).
        predicate: Option<Expr>,
        /// Ship mergeable partials for AVG aggregates
        /// ([`SubmitOptions::partial_aggregation`]): the AVG output column
        /// carries the partial sum and one hidden count column per AVG is
        /// appended to the row.
        partial: bool,
    },
}

/// One admitted query: an activation of a registered statement with concrete
/// parameters.
#[derive(Debug, Clone)]
pub struct ActiveQuery {
    /// Unique id of this activation; this is the value that travels through
    /// the data-query model.
    pub query_id: QueryId,
    /// Index of the statement in the registry.
    pub statement_index: usize,
    /// Ticket used to deliver results back to the waiting client.
    pub ticket: TicketId,
    /// Operator whose output is this query's result.
    pub root: OperatorId,
    /// Output projection (empty = all columns of the root schema).
    pub projection: Vec<usize>,
    /// Computed output columns (bound); non-empty replaces `projection`.
    pub compute: Vec<ComputedColumn>,
    /// Optional row limit applied during routing.
    pub limit: Option<usize>,
    /// Re-deduplicate the projected output rows (SELECT DISTINCT).
    pub distinct: bool,
    /// Bound activations per operator.
    pub activations: Vec<(OperatorId, Activation)>,
    /// The query may run segment-parallel inside the engine
    /// (`EngineConfig::scan_segments > 1`): its statement has a
    /// [`crate::scatter::ScatterSpec`] and this execution qualifies
    /// (parameterless, or a shape that scatters with parameters). Set by
    /// [`crate::Engine::submit`] after binding; defaults to `false`.
    pub segment_ok: bool,
    /// When the query was bound and enqueued (start of the batch-wait phase).
    pub enqueued: Instant,
    /// Read-your-writes fence ([`SubmitOptions::read_after`]): the
    /// coordinator defers this query until the fence's write is covered by
    /// the committed watermark (or the covering update rides in the same
    /// batch).
    pub read_after: Option<std::sync::Arc<WriteFence>>,
}

/// One admitted update.
#[derive(Debug, Clone)]
pub struct ActiveUpdate {
    /// Ticket used to report the update result.
    pub ticket: TicketId,
    /// Index of the statement in the registry.
    pub statement_index: usize,
    /// Target table.
    pub table: String,
    /// The bound update operation.
    pub op: UpdateOp,
    /// When the update was bound and enqueued (start of the batch-wait phase).
    pub enqueued: Instant,
    /// Session write fence ([`SubmitOptions::write_fence`]): resolved by the
    /// engine at the committed watermark once this update's batch group-commits.
    pub write_fence: Option<std::sync::Arc<WriteFence>>,
}

/// One batch ("generation") of queries and updates processed by a heartbeat.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    /// Batch sequence number.
    pub id: BatchId,
    /// Queries of the batch.
    pub queries: Vec<ActiveQuery>,
    /// Updates of the batch, in arrival order.
    pub updates: Vec<ActiveUpdate>,
}

impl QueryBatch {
    /// True when the batch contains no work.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty() && self.updates.is_empty()
    }

    /// Number of queries plus updates.
    pub fn len(&self) -> usize {
        self.queries.len() + self.updates.len()
    }

    /// The activations of all queries of the batch for one operator.
    pub fn activations_for(&self, operator: OperatorId) -> Vec<(QueryId, Activation)> {
        let mut out = Vec::new();
        for q in &self.queries {
            for (op, activation) in &q.activations {
                if *op == operator {
                    out.push((q.query_id, activation.clone()));
                }
            }
        }
        out
    }

    /// Ids of all queries of the batch.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.iter().map(|q| q.query_id).collect()
    }
}

/// Binds a query statement: substitutes parameters into every activation
/// template and attaches the submission's partitioning / snapshot options.
pub fn bind_query(
    spec: &StatementSpec,
    statement_index: usize,
    query_id: QueryId,
    ticket: TicketId,
    params: &[Value],
    opts: &SubmitOptions,
) -> Result<ActiveQuery> {
    let StatementKind::Query {
        root,
        projection,
        compute,
        limit,
        distinct,
    } = &spec.kind
    else {
        return Err(Error::Internal(format!(
            "statement {} is not a query",
            spec.name
        )));
    };
    let mut activations = Vec::with_capacity(spec.activations.len());
    for (op, template) in &spec.activations {
        let bound = match template {
            ActivationTemplate::Scan { predicate } => Activation::Scan {
                predicate: predicate.bind(params)?,
                partition: opts.scan_partition,
                partition_columns: opts
                    .partition_columns
                    .as_ref()
                    .and_then(|m| m.get(op).cloned()),
                segment: None,
                snapshot: opts.pinned_snapshot,
            },
            ActivationTemplate::Probe {
                column,
                range,
                residual,
            } => Activation::Probe {
                column: *column,
                range: range.bind(params)?,
                residual: residual.as_ref().map(|e| e.bind(params)).transpose()?,
                snapshot: opts.pinned_snapshot,
            },
            ActivationTemplate::Filter { predicate } => Activation::Filter {
                predicate: predicate.bind(params)?,
            },
            ActivationTemplate::Participate => Activation::Participate,
            ActivationTemplate::TopN { limit } => Activation::TopN { limit: *limit },
            ActivationTemplate::Having { predicate } => Activation::Having {
                predicate: predicate.as_ref().map(|e| e.bind(params)).transpose()?,
                partial: opts.partial_aggregation,
            },
        };
        activations.push((*op, bound));
    }
    let compute = compute
        .iter()
        .map(|c| {
            Ok(ComputedColumn {
                name: c.name.clone(),
                data_type: c.data_type,
                expr: c.expr.bind(params)?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    // Partial-aggregation executions must deliver the operator's raw rows —
    // including the dynamic hidden AVG count columns, which the root schema
    // (and therefore an identity projection over it) does not know about —
    // to the cluster merge. The fanout walker only scatters statements whose
    // projection is empty or the identity, so dropping it here is
    // semantics-preserving.
    let projection = if opts.partial_aggregation {
        Vec::new()
    } else {
        projection.clone()
    };
    Ok(ActiveQuery {
        query_id,
        statement_index,
        ticket,
        root: *root,
        projection,
        compute,
        limit: *limit,
        distinct: *distinct,
        activations,
        segment_ok: false,
        enqueued: Instant::now(),
        read_after: opts.read_after.clone(),
    })
}

/// Binds an update statement into a storage [`UpdateOp`].
pub fn bind_update(
    spec: &StatementSpec,
    statement_index: usize,
    ticket: TicketId,
    params: &[Value],
) -> Result<ActiveUpdate> {
    let StatementKind::Update { table, template } = &spec.kind else {
        return Err(Error::Internal(format!(
            "statement {} is not an update",
            spec.name
        )));
    };
    let op = match template {
        UpdateTemplate::Insert { values } => {
            let empty = Tuple::empty();
            let values: Vec<Value> = values
                .iter()
                .map(|e| e.bind(params)?.eval(&empty))
                .collect::<Result<_>>()?;
            UpdateOp::Insert {
                values: Tuple::new(values),
            }
        }
        UpdateTemplate::Update {
            assignments,
            predicate,
        } => UpdateOp::Update {
            assignments: assignments
                .iter()
                .map(|(col, e)| Ok((*col, e.bind(params)?)))
                .collect::<Result<_>>()?,
            predicate: predicate.bind(params)?,
        },
        UpdateTemplate::Delete { predicate } => UpdateOp::Delete {
            predicate: predicate.bind(params)?,
        },
    };
    Ok(ActiveUpdate {
        ticket,
        statement_index,
        table: table.clone(),
        op,
        enqueued: Instant::now(),
        write_fence: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ProbeTemplate, StatementSpec};

    #[test]
    fn bind_query_substitutes_parameters() {
        let spec = StatementSpec::query("q", 3)
            .activate(
                0,
                ActivationTemplate::Scan {
                    predicate: Expr::col(1).eq(Expr::param(0)),
                },
            )
            .activate(
                2,
                ActivationTemplate::Probe {
                    column: 0,
                    range: ProbeTemplate::Key(Expr::param(1)),
                    residual: None,
                },
            )
            .activate(3, ActivationTemplate::TopN { limit: 5 })
            .project(vec![0, 1])
            .limit(10);
        let q = bind_query(
            &spec,
            7,
            QueryId(42),
            TicketId(9),
            &[Value::text("CH"), Value::Int(11)],
            &SubmitOptions::default(),
        )
        .unwrap();
        assert_eq!(q.query_id, QueryId(42));
        assert_eq!(q.root, 3);
        assert_eq!(q.projection, vec![0, 1]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.activations.len(), 3);
        match &q.activations[0].1 {
            Activation::Scan { predicate, .. } => assert!(predicate.is_bound()),
            other => panic!("unexpected {other:?}"),
        }
        match &q.activations[1].1 {
            Activation::Probe { range, .. } => match range {
                ProbeRange::Key(v) => assert_eq!(*v, Value::Int(11)),
                _ => panic!("expected key"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Missing parameters are an error.
        assert!(bind_query(
            &spec,
            7,
            QueryId(1),
            TicketId(1),
            &[],
            &SubmitOptions::default()
        )
        .is_err());
        // Binding it as an update is an error.
        assert!(bind_update(&spec, 7, TicketId(1), &[]).is_err());
    }

    #[test]
    fn bind_update_insert_and_delete() {
        let spec = StatementSpec::update(
            "addOrder",
            "ORDERS",
            UpdateTemplate::Insert {
                values: vec![Expr::param(0), Expr::param(1), Expr::lit("OK")],
            },
        );
        let u = bind_update(&spec, 0, TicketId(1), &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(u.table, "ORDERS");
        match u.op {
            UpdateOp::Insert { values } => {
                assert_eq!(values.values().len(), 3);
                assert_eq!(values[2], Value::text("OK"));
            }
            other => panic!("unexpected {other:?}"),
        }

        let spec = StatementSpec::update(
            "dropOrder",
            "orders",
            UpdateTemplate::Delete {
                predicate: Expr::col(0).eq(Expr::param(0)),
            },
        );
        let u = bind_update(&spec, 0, TicketId(2), &[Value::Int(5)]).unwrap();
        match u.op {
            UpdateOp::Delete { predicate } => assert!(predicate.is_bound()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(bind_query(
            &spec,
            0,
            QueryId(1),
            TicketId(1),
            &[],
            &SubmitOptions::default()
        )
        .is_err());
    }

    #[test]
    fn batch_activation_grouping() {
        let spec = StatementSpec::query("q", 1).activate(
            0,
            ActivationTemplate::Scan {
                predicate: Expr::lit(true),
            },
        );
        let q1 = bind_query(
            &spec,
            0,
            QueryId(1),
            TicketId(1),
            &[],
            &SubmitOptions::default(),
        )
        .unwrap();
        let q2 = bind_query(
            &spec,
            0,
            QueryId(2),
            TicketId(2),
            &[],
            &SubmitOptions::default(),
        )
        .unwrap();
        let batch = QueryBatch {
            id: BatchId(1),
            queries: vec![q1, q2],
            updates: vec![],
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.activations_for(0).len(), 2);
        assert_eq!(batch.activations_for(5).len(), 0);
        assert_eq!(batch.query_ids(), vec![QueryId(1), QueryId(2)]);
    }
}

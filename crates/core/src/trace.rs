//! Batch-lifecycle trace journal.
//!
//! A bounded ring buffer of lifecycle events — batch formed → operators
//! fired → queries routed — recorded by the coordinator thread as it drives
//! each heartbeat. The ring has a fixed capacity (events beyond it evict the
//! oldest), so tracing is always-on with a hard memory bound; `seq` numbers
//! are global and monotonic, which makes evicted gaps visible to a consumer.
//!
//! The journal answers the question percentiles cannot: *what did this
//! particular batch do* — how many statements it carried, which operators
//! actually fired and for how long, and where each query's rows went. The
//! `trace_dump` bench bin prints a captured journal in lifecycle order.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One batch-lifecycle event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// The coordinator drained the admission queue into a batch.
    BatchFormed {
        /// Batch sequence number.
        batch: u64,
        /// Queries admitted into the batch.
        queries: usize,
        /// Updates admitted into the batch.
        updates: usize,
        /// Statement-type mix of the batch: `(statement registry index,
        /// count)` over queries **and** updates, indexes ascending, zero
        /// counts omitted. This is the activation mix operator busy time is
        /// attributed by.
        mix: Vec<(usize, usize)>,
        /// Heartbeat interval in effect when the batch formed, µs. Under an
        /// adaptive heartbeat policy this is what attributes an SLO miss to
        /// a controller decision.
        heartbeat_us: u64,
    },
    /// All operators of one cycle completed (one event per batch).
    OperatorsFired {
        /// Batch sequence number.
        batch: u64,
        /// Operators that ran the cycle (always the full plan).
        fired: usize,
        /// Operators that had at least one active query this cycle.
        active: usize,
        /// Sum of per-operator busy time this cycle, µs.
        total_busy_us: u64,
    },
    /// One operator's share of a cycle (recorded for active operators only).
    OperatorFired {
        /// Batch sequence number.
        batch: u64,
        /// Operator id (index into the plan; resolve names via the plan).
        operator: usize,
        /// Tuples the operator emitted.
        tuples: usize,
        /// Busy time, µs.
        busy_us: u64,
    },
    /// One query's rows were routed back to its client (Γ step).
    QueryRouted {
        /// Batch sequence number.
        batch: u64,
        /// Statement registry index.
        statement: usize,
        /// Ticket of the execution.
        ticket: u64,
        /// Rows routed (0 for failures and updates).
        rows: usize,
        /// Whether the statement completed successfully.
        ok: bool,
    },
}

/// One journal entry: a sequence number, an offset from journal start, and
/// the event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Global monotonic sequence number (gaps = evicted events).
    pub seq: u64,
    /// Time since the journal was created.
    pub at: Duration,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded ring buffer of [`TraceRecord`]s.
#[derive(Debug)]
pub struct TraceJournal {
    start: Instant,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl TraceJournal {
    /// A journal retaining at most `capacity` events (0 = tracing disabled,
    /// every push is a no-op).
    pub fn new(capacity: usize) -> TraceJournal {
        TraceJournal {
            start: Instant::now(),
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event, evicting the oldest at capacity.
    pub fn push(&self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let record = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at: self.start.elapsed(),
            event,
        };
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Copies the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total events ever pushed (retained or evicted).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Drops every retained event (sequence numbers keep counting).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::BatchFormed {
                batch,
                queries,
                updates,
                mix,
                heartbeat_us,
            } => {
                write!(
                    f,
                    "batch {batch} formed: {queries} queries, {updates} updates, heartbeat {heartbeat_us}us"
                )?;
                if !mix.is_empty() {
                    write!(f, ", mix [")?;
                    for (i, (statement, count)) in mix.iter().enumerate() {
                        let sep = if i == 0 { "" } else { ", " };
                        write!(f, "{sep}#{statement}\u{00d7}{count}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            TraceEvent::OperatorsFired {
                batch,
                fired,
                active,
                total_busy_us,
            } => write!(
                f,
                "batch {batch} operators fired: {fired} total, {active} active, {total_busy_us}us busy"
            ),
            TraceEvent::OperatorFired {
                batch,
                operator,
                tuples,
                busy_us,
            } => write!(
                f,
                "batch {batch} operator #{operator}: {tuples} tuples, {busy_us}us"
            ),
            TraceEvent::QueryRouted {
                batch,
                statement,
                ticket,
                rows,
                ok,
            } => write!(
                f,
                "batch {batch} routed statement #{statement} ticket {ticket}: {rows} rows, ok={ok}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_is_bounded_and_ordered() {
        let journal = TraceJournal::new(4);
        for i in 0..10u64 {
            journal.push(TraceEvent::BatchFormed {
                batch: i,
                queries: 1,
                updates: 0,
                mix: vec![(0, 1)],
                heartbeat_us: 2000,
            });
        }
        let records = journal.snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(journal.pushed(), 10);
        // Oldest evicted, order preserved, seq numbers contiguous at the tail.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let journal = TraceJournal::new(0);
        journal.push(TraceEvent::BatchFormed {
            batch: 1,
            queries: 0,
            updates: 0,
            mix: Vec::new(),
            heartbeat_us: 2000,
        });
        assert!(journal.snapshot().is_empty());
        assert_eq!(journal.pushed(), 0);
    }

    #[test]
    fn events_render_for_humans() {
        let e = TraceEvent::QueryRouted {
            batch: 7,
            statement: 2,
            ticket: 99,
            rows: 3,
            ok: true,
        };
        let s = format!("{e}");
        assert!(s.contains("batch 7"));
        assert!(s.contains("3 rows"));
        let formed = TraceEvent::BatchFormed {
            batch: 9,
            queries: 6,
            updates: 1,
            mix: vec![(0, 4), (2, 3)],
            heartbeat_us: 1500,
        };
        let s = format!("{formed}");
        assert!(s.contains("mix [#0\u{00d7}4, #2\u{00d7}3]"));
        assert!(s.contains("heartbeat 1500us"));
    }
}

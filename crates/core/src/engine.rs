//! The batched, push-based SharedDB runtime.
//!
//! The engine owns:
//!
//! * one **operator thread per plan node** (Section 4.3: "all database
//!   operators are executed in a separate hardware context"),
//! * an **admission queue** where freshly submitted queries and updates wait
//!   while the current batch is processed (Section 3.2),
//! * a **coordinator thread** that drains the admission queue at every
//!   heartbeat, forms a [`QueryBatch`], wires per-batch data channels between
//!   the operator threads, applies the batch's updates (group commit), routes
//!   the roots' outputs back to the waiting clients (the Γ(query_id) step) and
//!   records statistics.
//!
//! Clients interact through [`Engine::execute`] (asynchronous, returns a
//! [`QueryHandle`]) or [`Engine::execute_sync`].

use crate::batch::{bind_query, bind_update, Activation, ActiveQuery, ActiveUpdate, QueryBatch};
use crate::budget::CoreBudget;
use crate::config::EngineConfig;
use crate::operators::{execute_operator, ExecContext};
use crate::plan::{GlobalPlan, OperatorId, StatementRegistry};
use crate::stats::{
    EngineStats, EngineStatsSnapshot, OperatorStats, OperatorStatsSnapshot, Phase, SlowQueryRecord,
    StatementPhaseSnapshot,
};
use crate::storage_ops::{build_storage_operators, StorageOperator};
use crate::trace::{TraceEvent, TraceJournal, TraceRecord};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use shareddb_common::ids::{BatchId, QueryIdGenerator, TicketGenerator, TicketId};
use shareddb_common::{Error, QTuple, QueryId, Result, Schema, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::Catalog;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The rows produced for one query.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Schema of the rows (after projection).
    pub schema: Schema,
    /// The result rows, in the order produced by the query's root operator.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Outcome of one statement execution.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A query returning rows.
    Rows(ResultSet),
    /// An update reporting its affected row count.
    Updated {
        /// Number of rows inserted / modified / deleted.
        rows_affected: usize,
    },
}

impl QueryOutcome {
    /// Convenience accessor: the rows of a query outcome (empty for updates).
    pub fn rows(&self) -> &[Tuple] {
        match self {
            QueryOutcome::Rows(rs) => &rs.rows,
            QueryOutcome::Updated { .. } => &[],
        }
    }

    /// Convenience accessor: rows affected by an update (0 for queries).
    pub fn rows_affected(&self) -> usize {
        match self {
            QueryOutcome::Rows(_) => 0,
            QueryOutcome::Updated { rows_affected } => *rows_affected,
        }
    }
}

/// Handle to a submitted statement execution.
#[derive(Debug)]
pub struct QueryHandle {
    ticket: TicketId,
    receiver: Receiver<Result<QueryOutcome>>,
    submitted: Instant,
}

impl QueryHandle {
    /// The ticket identifying this execution.
    pub fn ticket(&self) -> TicketId {
        self.ticket
    }

    /// Time since submission.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// Blocks until the result is available.
    pub fn wait(self) -> Result<QueryOutcome> {
        self.receiver.recv().map_err(|_| Error::EngineShutdown)?
    }

    /// Non-blocking poll: `None` while the statement is still in flight,
    /// `Some(outcome)` exactly once when it completes. Event-driven callers
    /// (the network reactor) pair this with
    /// [`SubmitOptions::completion_waker`] instead of parking a thread in
    /// [`QueryHandle::wait`].
    pub fn try_wait(&self) -> Option<Result<QueryOutcome>> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(outcome),
            // Every handle is delivered exactly one message before its sender
            // is dropped (the outcome, or the failure injected on engine
            // shutdown), so `Disconnected` only means the outcome was already
            // consumed by an earlier call — keep the "exactly once" contract
            // rather than surfacing a spurious shutdown error.
            Err(crossbeam_channel::TryRecvError::Empty)
            | Err(crossbeam_channel::TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the result is available or the deadline passes.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryOutcome> {
        match self.receiver.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(Error::DeadlineExceeded),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(Error::EngineShutdown),
        }
    }
}

// ---------------------------------------------------------------------------
// Internal messages
// ---------------------------------------------------------------------------

type TaskData = Arc<Vec<QTuple>>;

struct OperatorTask {
    activations: Vec<(QueryId, Activation)>,
    inputs: Vec<Receiver<TaskData>>,
    outputs: Vec<Sender<TaskData>>,
    collector: Option<Sender<(OperatorId, TaskData)>>,
    done: Sender<OperatorDone>,
    snapshot: Snapshot,
}

struct OperatorDone {
    id: OperatorId,
    result: Result<usize>,
    busy: Duration,
    had_queries: bool,
}

enum OperatorMessage {
    Task(Box<OperatorTask>),
    Shutdown,
}

enum Submission {
    Query(ActiveQuery),
    Update(ActiveUpdate),
}

struct PendingResult {
    sender: Sender<Result<QueryOutcome>>,
    submitted: Instant,
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Options for [`Engine::submit`].
#[derive(Clone, Default)]
pub struct SubmitOptions {
    /// Reject the submission with [`Error::Overloaded`] when the admission
    /// queue already holds this many statements. The check and the enqueue
    /// happen under the queue lock, so the bound is exact even with many
    /// concurrent submitters (no check-then-enqueue TOCTOU).
    pub max_queue_depth: Option<usize>,
    /// Invoked after the statement's outcome has been delivered to its
    /// [`QueryHandle`] (including the failure delivered on engine shutdown).
    /// Lets a nonblocking caller poll [`QueryHandle::try_wait`] only when
    /// woken instead of parking a thread per statement.
    pub completion_waker: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Restrict every shared-scan activation of this query to one horizontal
    /// partition `(index, of)` of its table: a row participates iff
    /// `tuple_partition(row, hash_columns, of) == index`. This is the
    /// replica-aware hook the cluster layer uses to fan one logical query out
    /// over N engine replicas (paper §4.5) and merge the partial results; a
    /// plain engine caller leaves it `None`.
    pub scan_partition: Option<(u32, u32)>,
    /// Per-scan-operator override of the columns hashed by the partition
    /// function (operator id → column indices into that scan's table schema).
    /// Scans not listed hash the table's primary key. The cluster layer uses
    /// this to co-partition the build and probe sides of a fanned-out
    /// equi-join by the join key, so rows that join always land in the same
    /// partition.
    pub partition_columns: Option<Arc<std::collections::HashMap<OperatorId, Vec<usize>>>>,
    /// Pin every storage read (shared scan / index probe) of this query to a
    /// fixed MVCC snapshot instead of the executing batch's own snapshot.
    /// The cluster layer captures one [`Catalog::snapshot`] per fanned-out
    /// execution and pins all partitions to it, so one logical query reads
    /// one version set even while its partitions run in different batches on
    /// different replicas under concurrent writes.
    pub pinned_snapshot: Option<Snapshot>,
    /// Ship partition-mergeable partial aggregates instead of final values:
    /// a shared group-by emits, for every AVG aggregate of this query, the
    /// partial sum in the AVG column plus a trailing hidden count column.
    /// Set by the cluster layer for fanned-out group-by roots (the merge
    /// step recombines sum/count and drops the hidden columns); meaningless
    /// without a merge step consuming the partials.
    pub partial_aggregation: bool,
}

struct Admission {
    queue: Mutex<VecDeque<Submission>>,
    signal: Condvar,
}

struct EngineInner {
    catalog: Arc<Catalog>,
    plan: GlobalPlan,
    registry: StatementRegistry,
    config: EngineConfig,
    admission: Admission,
    pending: Mutex<HashMap<TicketId, PendingResult>>,
    query_ids: QueryIdGenerator,
    tickets: TicketGenerator,
    shutdown: AtomicBool,
    stats: EngineStats,
    /// Start of the current statistics window (engine start, or the last
    /// [`Engine::reset_stats`]); the wall clock for busy-fraction numbers.
    stats_epoch: Mutex<Instant>,
    operator_stats: Vec<OperatorStats>,
    operator_senders: Vec<Sender<OperatorMessage>>,
    trace: TraceJournal,
}

/// The SharedDB engine: an always-on global plan plus the batching runtime.
pub struct Engine {
    inner: Arc<EngineInner>,
    coordinator: Option<JoinHandle<()>>,
    operators: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts the engine: spawns one thread per plan operator plus the
    /// coordinator thread.
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        config: EngineConfig,
    ) -> Result<Engine> {
        registry.validate(&plan)?;
        let storage_ops = Arc::new(build_storage_operators(&catalog, &plan)?);
        let budget = CoreBudget::new(config.core_budget);

        let mut operator_senders = Vec::with_capacity(plan.len());
        let mut operator_receivers = Vec::with_capacity(plan.len());
        for _ in 0..plan.len() {
            let (tx, rx) = unbounded::<OperatorMessage>();
            operator_senders.push(tx);
            operator_receivers.push(rx);
        }

        let statement_names: Vec<String> = registry.iter().map(|s| s.name.clone()).collect();
        let trace = TraceJournal::new(config.trace_capacity);
        let inner = Arc::new(EngineInner {
            catalog: Arc::clone(&catalog),
            plan: plan.clone(),
            registry,
            config,
            admission: Admission {
                queue: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
            },
            pending: Mutex::new(HashMap::new()),
            query_ids: QueryIdGenerator::new(),
            tickets: TicketGenerator::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::with_statements(statement_names),
            stats_epoch: Mutex::new(Instant::now()),
            operator_stats: (0..plan.len()).map(|_| OperatorStats::default()).collect(),
            operator_senders,
            trace,
        });

        // Operator threads.
        let mut operators = Vec::with_capacity(plan.len());
        for (node, rx) in plan.nodes().iter().zip(operator_receivers) {
            let node = node.clone();
            let storage_ops = Arc::clone(&storage_ops);
            let catalog = Arc::clone(&catalog);
            let budget = budget.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shareddb-op-{}", node.name))
                .spawn(move || operator_loop(node.id, node, rx, storage_ops, catalog, budget))
                .map_err(|e| Error::Internal(format!("failed to spawn operator thread: {e}")))?;
            operators.push(handle);
        }

        // Coordinator thread.
        let coordinator_inner = Arc::clone(&inner);
        let coordinator = std::thread::Builder::new()
            .name("shareddb-coordinator".to_string())
            .spawn(move || coordinator_loop(coordinator_inner))
            .map_err(|e| Error::Internal(format!("failed to spawn coordinator: {e}")))?;

        Ok(Engine {
            inner,
            coordinator: Some(coordinator),
            operators,
        })
    }

    /// The catalog the engine runs on.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.inner.catalog)
    }

    /// The global plan.
    pub fn plan(&self) -> &GlobalPlan {
        &self.inner.plan
    }

    /// Submits a statement execution; returns a handle to wait on.
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<QueryHandle> {
        self.submit(statement, params, SubmitOptions::default())
    }

    /// Submits a statement execution with admission options; returns a handle
    /// to wait on (or poll via [`QueryHandle::try_wait`]).
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<QueryHandle> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::EngineShutdown);
        }
        // The admission phase spans binding, pending registration and the
        // queue push — everything between the caller's submit call and the
        // statement waiting for its heartbeat.
        let submitted = Instant::now();
        let (index, spec) = self.inner.registry.get(statement)?;
        let ticket = self.inner.tickets.next_id();
        let submission = if spec.is_update() {
            Submission::Update(bind_update(spec, index, ticket, params)?)
        } else {
            let query_id = self.inner.query_ids.next_id();
            Submission::Query(bind_query(spec, index, query_id, ticket, params, &opts)?)
        };
        let (tx, rx) = unbounded();
        self.inner.pending.lock().insert(
            ticket,
            PendingResult {
                sender: tx,
                submitted,
                waker: opts.completion_waker,
            },
        );
        {
            let mut queue = self.inner.admission.queue.lock();
            if let Some(max) = opts.max_queue_depth {
                if queue.len() >= max {
                    drop(queue);
                    self.inner.pending.lock().remove(&ticket);
                    return Err(Error::Overloaded(format!(
                        "admission queue depth limit of {max} reached"
                    )));
                }
            }
            queue.push_back(submission);
        }
        self.inner.admission.signal.notify_one();
        self.inner
            .stats
            .record_phase(index, Phase::Admission, submitted.elapsed());
        Ok(QueryHandle {
            ticket,
            receiver: rx,
            submitted,
        })
    }

    /// Submits a statement and blocks until its result is available.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<QueryOutcome> {
        self.execute(statement, params)?.wait()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Per-operator statistics.
    pub fn operator_stats(&self) -> Vec<OperatorStatsSnapshot> {
        self.inner
            .plan
            .nodes()
            .iter()
            .map(|n| self.inner.operator_stats[n.id].snapshot(&n.name))
            .collect()
    }

    /// Per-statement-type, per-phase latency histograms.
    pub fn phase_snapshot(&self) -> Vec<StatementPhaseSnapshot> {
        self.inner.stats.phase_snapshot()
    }

    /// Total slow-query offenders plus the retained tail of the log.
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        self.inner.stats.slow_queries()
    }

    /// The retained batch-lifecycle trace, oldest first.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.inner.trace.snapshot()
    }

    /// Wall-clock length of the current statistics window (time since engine
    /// start or the last [`Engine::reset_stats`]); the denominator for
    /// per-operator busy fractions.
    pub fn stats_wall(&self) -> Duration {
        self.inner.stats_epoch.lock().elapsed()
    }

    /// Zeroes the engine-level statistics, phase histograms, slow-query log
    /// and per-operator counters, and restarts the busy-fraction wall clock.
    /// Bench harnesses call this after warm-up so reported numbers cover only
    /// the measured window.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
        for op in &self.inner.operator_stats {
            op.reset();
        }
        *self.inner.stats_epoch.lock() = Instant::now();
    }

    /// Number of statements queued but not yet admitted into a batch.
    pub fn queued(&self) -> usize {
        self.inner.admission.queue.lock().len()
    }

    /// Stops the engine: drains nothing further, fails queued work with
    /// [`Error::EngineShutdown`] and joins all threads.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.admission.signal.notify_all();
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        for sender in &self.inner.operator_senders {
            let _ = sender.send(OperatorMessage::Shutdown);
        }
        for handle in self.operators.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Operator threads
// ---------------------------------------------------------------------------

fn operator_loop(
    id: OperatorId,
    node: crate::plan::OperatorNode,
    receiver: Receiver<OperatorMessage>,
    storage_ops: Arc<Vec<Option<StorageOperator>>>,
    catalog: Arc<Catalog>,
    budget: CoreBudget,
) {
    while let Ok(message) = receiver.recv() {
        let task = match message {
            OperatorMessage::Task(task) => task,
            OperatorMessage::Shutdown => break,
        };
        // Gather the inputs of this batch first (waiting does not consume a
        // core), then acquire a core permit for the actual processing.
        let mut inputs: Vec<Vec<QTuple>> = Vec::with_capacity(task.inputs.len());
        let mut input_failed = false;
        for rx in &task.inputs {
            match rx.recv() {
                Ok(data) => inputs.push(data.as_ref().clone()),
                Err(_) => {
                    // The producer failed; propagate an empty input. The
                    // producer's error is reported through its own done
                    // message and fails the batch at the coordinator.
                    inputs.push(Vec::new());
                    input_failed = true;
                }
            }
        }

        let had_queries = !task.activations.is_empty();
        let permit = budget.acquire();
        let started = Instant::now();
        let result: Result<Vec<QTuple>> = if input_failed {
            Ok(Vec::new())
        } else if let Some(storage) = &storage_ops[id] {
            storage.execute(&task.activations)
        } else {
            let ctx = ExecContext {
                catalog: &catalog,
                snapshot: task.snapshot,
            };
            execute_operator(&node.spec, &task.activations, inputs, &ctx)
        };
        let busy = started.elapsed();
        drop(permit);

        match result {
            Ok(tuples) => {
                let count = tuples.len();
                let data: TaskData = Arc::new(tuples);
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Ok(count),
                    busy,
                    had_queries,
                });
            }
            Err(e) => {
                // Emit empty outputs so downstream operators do not hang, then
                // report the failure.
                let data: TaskData = Arc::new(Vec::new());
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Err(e),
                    busy,
                    had_queries,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

fn coordinator_loop(inner: Arc<EngineInner>) {
    let mut batch_seq: u64 = 0;
    let mut last_batch_start = Instant::now() - inner.config.heartbeat;
    loop {
        // Wait for work (or shutdown).
        let submissions = {
            let mut queue = inner.admission.queue.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if !queue.is_empty() {
                    break;
                }
                inner
                    .admission
                    .signal
                    .wait_for(&mut queue, inner.config.heartbeat);
            }
            if inner.shutdown.load(Ordering::Acquire) && queue.is_empty() {
                break;
            }
            // Heartbeat pacing: in non-eager mode a new batch starts at most
            // once per heartbeat interval, letting more work accumulate.
            if !inner.config.eager_heartbeat {
                let since = last_batch_start.elapsed();
                if since < inner.config.heartbeat {
                    let mut wait = inner.config.heartbeat - since;
                    drop(queue);
                    // Sleep in small slices so a shutdown (graceful drain)
                    // is observed promptly even with long heartbeats.
                    while !wait.is_zero() && !inner.shutdown.load(Ordering::Acquire) {
                        let slice = wait.min(Duration::from_millis(10));
                        std::thread::sleep(slice);
                        wait = wait.saturating_sub(slice);
                    }
                    queue = inner.admission.queue.lock();
                }
            }
            let limit = if inner.config.max_batch_size == 0 {
                queue.len()
            } else {
                inner.config.max_batch_size.min(queue.len())
            };
            queue.drain(..limit).collect::<Vec<_>>()
        };
        if submissions.is_empty() {
            continue;
        }
        last_batch_start = Instant::now();
        batch_seq += 1;
        let mut batch = QueryBatch {
            id: BatchId(batch_seq),
            ..Default::default()
        };
        for submission in submissions {
            match submission {
                Submission::Query(q) => batch.queries.push(q),
                Submission::Update(u) => batch.updates.push(u),
            }
        }
        process_batch(&inner, &batch);
        inner.stats.record_batch();
    }

    // Fail everything still pending.
    let drained: Vec<PendingResult> = {
        let mut pending = inner.pending.lock();
        pending.drain().map(|(_, result)| result).collect()
    };
    for result in drained {
        let _ = result.sender.send(Err(Error::EngineShutdown));
        if let Some(waker) = &result.waker {
            waker();
        }
    }
}

fn process_batch(inner: &Arc<EngineInner>, batch: &QueryBatch) {
    let batch_started = Instant::now();
    inner.trace.push(TraceEvent::BatchFormed {
        batch: batch.id.0,
        queries: batch.queries.len(),
        updates: batch.updates.len(),
    });

    // Phase 1: apply the batch's updates in arrival order (one commit
    // timestamp for the whole batch, group commit into the WAL).
    if !batch.updates.is_empty() {
        let ops: Vec<(String, shareddb_storage::UpdateOp)> = batch
            .updates
            .iter()
            .map(|u| (u.table.clone(), u.op.clone()))
            .collect();
        match inner.catalog.apply_batch(&ops) {
            Ok(results) => {
                for (update, result) in batch.updates.iter().zip(results) {
                    complete(
                        inner,
                        update.ticket,
                        Ok(QueryOutcome::Updated {
                            rows_affected: result.rows_affected,
                        }),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                        }),
                    );
                }
            }
            Err(e) => {
                for update in &batch.updates {
                    complete(
                        inner,
                        update.ticket,
                        Err(e.clone()),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                        }),
                    );
                }
            }
        }
    }

    if batch.queries.is_empty() {
        return;
    }

    // Phase 2: run the shared operators of the plan for this batch.
    let snapshot = inner.catalog.oracle().read_ts();
    let plan = &inner.plan;

    // Which operators must deliver their output to the router?
    let mut collect: Vec<bool> = vec![false; plan.len()];
    for q in &batch.queries {
        collect[q.root] = true;
    }

    // Build the per-batch data channels along plan edges.
    let mut input_receivers: Vec<Vec<Receiver<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    let mut output_senders: Vec<Vec<Sender<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    for node in plan.nodes() {
        for &input in &node.inputs {
            let (tx, rx) = unbounded::<TaskData>();
            output_senders[input].push(tx);
            input_receivers[node.id].push(rx);
        }
    }
    let (collector_tx, collector_rx) = unbounded::<(OperatorId, TaskData)>();
    let (done_tx, done_rx) = unbounded::<OperatorDone>();

    let expected_collects = collect.iter().filter(|&&c| c).count();

    // Dispatch one task per operator (always-on plan: every operator runs
    // every cycle, possibly with zero active queries).
    let mut receivers_iter: Vec<Vec<Receiver<TaskData>>> = input_receivers;
    let mut senders_iter: Vec<Vec<Sender<TaskData>>> = output_senders;
    for node in plan.nodes() {
        let task = OperatorTask {
            activations: batch.activations_for(node.id),
            inputs: std::mem::take(&mut receivers_iter[node.id]),
            outputs: std::mem::take(&mut senders_iter[node.id]),
            collector: if collect[node.id] {
                Some(collector_tx.clone())
            } else {
                None
            },
            done: done_tx.clone(),
            snapshot,
        };
        let _ = inner.operator_senders[node.id].send(OperatorMessage::Task(Box::new(task)));
    }
    drop(collector_tx);
    drop(done_tx);

    // Gather per-operator completion and statistics.
    let mut batch_error: Option<Error> = None;
    let mut active_operators = 0usize;
    let mut total_busy = Duration::ZERO;
    for _ in 0..plan.len() {
        match done_rx.recv() {
            Ok(done) => {
                let tuples = match &done.result {
                    Ok(n) => *n,
                    Err(e) => {
                        if batch_error.is_none() {
                            batch_error = Some(e.clone());
                        }
                        0
                    }
                };
                inner.operator_stats[done.id].record_cycle(done.had_queries, tuples, done.busy);
                total_busy += done.busy;
                if done.had_queries {
                    active_operators += 1;
                    inner.trace.push(TraceEvent::OperatorFired {
                        batch: batch.id.0,
                        operator: done.id,
                        tuples,
                        busy_us: done.busy.as_micros() as u64,
                    });
                }
            }
            Err(_) => {
                batch_error = Some(Error::Internal("operator thread disappeared".into()));
                break;
            }
        }
    }
    inner.trace.push(TraceEvent::OperatorsFired {
        batch: batch.id.0,
        fired: plan.len(),
        active: active_operators,
        total_busy_us: total_busy.as_micros() as u64,
    });

    // Gather the root outputs.
    let mut root_outputs: HashMap<OperatorId, TaskData> = HashMap::new();
    for _ in 0..expected_collects {
        match collector_rx.recv() {
            Ok((id, data)) => {
                root_outputs.insert(id, data);
            }
            Err(_) => break,
        }
    }

    // Phase 3: route results back to the clients (Γ by query_id). The root
    // outputs are exploded into per-query row lists in ONE pass per root
    // operator, so routing cost is O(results), not O(results × queries).
    let mut routed: HashMap<OperatorId, HashMap<QueryId, Vec<Tuple>>> = HashMap::new();
    if batch_error.is_none() {
        for (root, output) in root_outputs.iter() {
            let per_query = routed.entry(*root).or_default();
            for tuple in output.iter() {
                for query_id in tuple.queries.iter() {
                    per_query
                        .entry(query_id)
                        .or_default()
                        .push(tuple.tuple.clone());
                }
            }
        }
    }
    for q in &batch.queries {
        let ctx = Some(PhaseCtx {
            statement_index: q.statement_index,
            enqueued: q.enqueued,
            batch_started,
        });
        if let Some(error) = &batch_error {
            inner.trace.push(TraceEvent::QueryRouted {
                batch: batch.id.0,
                statement: q.statement_index,
                ticket: q.ticket.0,
                rows: 0,
                ok: false,
            });
            complete(inner, q.ticket, Err(error.clone()), ctx);
            inner.stats.record_failure();
            continue;
        }
        let rows = routed
            .get_mut(&q.root)
            .and_then(|per_query| per_query.remove(&q.query_id))
            .unwrap_or_default();
        let outcome = finalize_query_result(inner, q, rows);
        inner.trace.push(TraceEvent::QueryRouted {
            batch: batch.id.0,
            statement: q.statement_index,
            ticket: q.ticket.0,
            rows: outcome.as_ref().map(|o| o.rows().len()).unwrap_or(0),
            ok: outcome.is_ok(),
        });
        complete(inner, q.ticket, outcome, ctx);
    }
}

fn finalize_query_result(
    inner: &Arc<EngineInner>,
    query: &ActiveQuery,
    mut rows: Vec<Tuple>,
) -> Result<QueryOutcome> {
    // DISTINCT statements dedup the *projected* rows, and their limit counts
    // deduplicated rows — so the truncate-early fast path only runs for
    // non-distinct statements.
    if !query.distinct {
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    // Computed output columns (expression projections) replace the plain
    // index projection: each result row is the evaluation of the bound
    // expressions over the root row.
    if !query.compute.is_empty() {
        let schema = Schema::new(
            query
                .compute
                .iter()
                .map(|c| shareddb_common::Column::nullable(c.name.clone(), c.data_type))
                .collect(),
        );
        let rows = rows
            .into_iter()
            .map(|r| {
                Ok(Tuple::new(
                    query
                        .compute
                        .iter()
                        .map(|c| c.expr.eval(&r))
                        .collect::<Result<Vec<Value>>>()?,
                ))
            })
            .collect::<Result<Vec<Tuple>>>()?;
        return Ok(QueryOutcome::Rows(ResultSet {
            schema,
            rows: finish_output_rows(query, rows),
        }));
    }
    let root_schema = inner.plan.node(query.root).schema.clone();
    let schema = if query.projection.is_empty() {
        root_schema
    } else {
        root_schema.project(&query.projection)
    };
    if !query.projection.is_empty() {
        rows = rows
            .into_iter()
            .map(|r| r.project(&query.projection))
            .collect();
    }
    Ok(QueryOutcome::Rows(ResultSet {
        schema,
        rows: finish_output_rows(query, rows),
    }))
}

/// Applies the statement's post-projection DISTINCT (keeping the first
/// occurrence, which preserves any ORDER BY) and the deferred limit.
fn finish_output_rows(query: &ActiveQuery, mut rows: Vec<Tuple>) -> Vec<Tuple> {
    if query.distinct {
        let mut seen = std::collections::HashSet::with_capacity(rows.len());
        rows.retain(|row| seen.insert(row.clone()));
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    rows
}

/// Phase context of a completion: everything needed to attribute the
/// batch-wait and execute spans to the right statement type.
struct PhaseCtx {
    statement_index: usize,
    enqueued: Instant,
    batch_started: Instant,
}

fn complete(
    inner: &Arc<EngineInner>,
    ticket: TicketId,
    outcome: Result<QueryOutcome>,
    ctx: Option<PhaseCtx>,
) {
    let pending = inner.pending.lock().remove(&ticket);
    if let Some(pending) = pending {
        // One completion timestamp for every span, so total >= execute and
        // total >= batch_wait hold exactly (two elapsed() calls would let
        // the later-measured span overshoot the earlier one).
        let now = Instant::now();
        let latency = now.duration_since(pending.submitted);
        match &outcome {
            Ok(QueryOutcome::Rows(rs)) => inner.stats.record_query(rs.len(), latency),
            Ok(QueryOutcome::Updated { .. }) => inner.stats.record_update(latency),
            Err(_) => inner.stats.record_failure(),
        }
        if let Some(ctx) = ctx {
            let batch_wait = ctx.batch_started.duration_since(ctx.enqueued);
            let execute = now.duration_since(ctx.batch_started);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::BatchWait, batch_wait);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Execute, execute);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Total, latency);
            if let Some(threshold) = inner.config.slow_query_threshold {
                if latency >= threshold {
                    inner.stats.record_slow(SlowQueryRecord {
                        statement: inner.registry.by_index(ctx.statement_index).name.clone(),
                        total: latency,
                        admission: ctx.enqueued.duration_since(pending.submitted),
                        batch_wait,
                        execute,
                    });
                }
            }
        }
        let _ = pending.sender.send(outcome);
        if let Some(waker) = &pending.waker {
            waker();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{
        ActivationTemplate, PlanBuilder, ProbeTemplate, StatementSpec, UpdateTemplate,
    };
    use shareddb_common::agg::AggregateFunction;
    use shareddb_common::{tuple, DataType, Expr, SortKey};
    use shareddb_storage::{IndexDef, TableDef};

    /// Builds a small catalog + plan resembling Figure 2 of the paper:
    /// USERS and ORDERS scans, a shared hash join, a group-by over USERS and
    /// a sort over the join output.
    fn build_engine(config: EngineConfig) -> Engine {
        let catalog = Arc::new(Catalog::new());
        catalog
            .create_table(
                TableDef::new("USERS")
                    .column("USER_ID", DataType::Int)
                    .column("USERNAME", DataType::Text)
                    .column("COUNTRY", DataType::Text)
                    .column("ACCOUNT", DataType::Int)
                    .primary_key(&["USER_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDERS")
                    .column("ORDER_ID", DataType::Int)
                    .column("USER_ID", DataType::Int)
                    .column("STATUS", DataType::Text)
                    .column("TOTAL", DataType::Float)
                    .primary_key(&["ORDER_ID"]),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "USERS_PK".into(),
                table: "USERS".into(),
                column: "USER_ID".into(),
            })
            .unwrap();
        let users: Vec<_> = (0..100i64)
            .map(|i| {
                tuple![
                    i,
                    format!("user{i}"),
                    if i % 2 == 0 { "CH" } else { "DE" },
                    i * 10
                ]
            })
            .collect();
        let orders: Vec<_> = (0..300i64)
            .map(|i| {
                tuple![
                    i,
                    i % 100,
                    if i % 3 == 0 { "OK" } else { "PENDING" },
                    (i % 50) as f64
                ]
            })
            .collect();
        catalog.bulk_load("USERS", users).unwrap();
        catalog.bulk_load("ORDERS", orders).unwrap();

        let mut b = PlanBuilder::new(&catalog);
        let users_scan = b.table_scan("USERS").unwrap();
        let orders_scan = b.table_scan("ORDERS").unwrap();
        let users_probe = b.index_probe("USERS").unwrap();
        let join = b
            .hash_join(users_scan, orders_scan, "USERS.USER_ID", "ORDERS.USER_ID")
            .unwrap();
        let join_sort = b.sort(join, vec![SortKey::asc(4)]).unwrap();
        let gamma = b
            .group_by(
                users_scan,
                vec!["USERS.COUNTRY"],
                vec![(AggregateFunction::Sum, "USERS.ACCOUNT", "SUM_ACCOUNT")],
            )
            .unwrap();
        let top = b.top_n(orders_scan, vec![SortKey::desc(3)]).unwrap();
        let plan = b.build();

        let mut registry = StatementRegistry::new();
        // Q1: SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY
        registry
            .register(
                StatementSpec::query("usersByCountry", gamma)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(gamma, ActivationTemplate::Having { predicate: None }),
            )
            .unwrap();
        // Q2: SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID
        //     AND U.USERNAME = ? AND O.STATUS = 'OK', sorted by order id.
        registry
            .register(
                StatementSpec::query("ordersOfUser", join_sort)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(1).eq(Expr::param(0)),
                        },
                    )
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(2).eq(Expr::lit("OK")),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate)
                    .activate(join_sort, ActivationTemplate::Participate),
            )
            .unwrap();
        // Q3: point look-up of one user through the shared index probe.
        registry
            .register(StatementSpec::query("userById", users_probe).activate(
                users_probe,
                ActivationTemplate::Probe {
                    column: 0,
                    range: ProbeTemplate::Key(Expr::param(0)),
                    residual: None,
                },
            ))
            .unwrap();
        // Q4: top-N most expensive orders.
        registry
            .register(
                StatementSpec::query("topOrders", top)
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(3).gt_eq(Expr::param(0)),
                        },
                    )
                    .activate(top, ActivationTemplate::TopN { limit: 5 }),
            )
            .unwrap();
        // U1: register a new order.
        registry
            .register(StatementSpec::update(
                "addOrder",
                "ORDERS",
                UpdateTemplate::Insert {
                    values: vec![
                        Expr::param(0),
                        Expr::param(1),
                        Expr::lit("OK"),
                        Expr::param(2),
                    ],
                },
            ))
            .unwrap();
        // U2: cancel the orders of one user.
        registry
            .register(StatementSpec::update(
                "cancelOrders",
                "ORDERS",
                UpdateTemplate::Delete {
                    predicate: Expr::col(1).eq(Expr::param(0)),
                },
            ))
            .unwrap();

        Engine::start(catalog, plan, registry, config).unwrap()
    }

    #[test]
    fn group_by_query_end_to_end() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("usersByCountry", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 2);
        // 50 even users (CH) with accounts 0,20,..,980 -> 24500.
        let ch = rows.iter().find(|r| r[0] == Value::text("CH")).unwrap();
        assert_eq!(
            ch[1],
            Value::Int((0..100).filter(|i| i % 2 == 0).map(|i| i * 10).sum())
        );
    }

    #[test]
    fn join_query_with_parameters() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("ordersOfUser", &[Value::text("user7")])
            .unwrap();
        let rows = outcome.rows();
        // User 7 has orders 7, 107, 207; status OK only for multiples of 3 -> 207.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Int(207));
        assert_eq!(rows[0][1], Value::text("user7"));
    }

    #[test]
    fn concurrent_queries_share_one_batch() {
        let engine = build_engine(EngineConfig::default().heartbeat(Duration::from_millis(20)));
        let handles: Vec<_> = (0..50)
            .map(|i| {
                engine
                    .execute("ordersOfUser", &[Value::text(format!("user{}", i % 100))])
                    .unwrap()
            })
            .collect();
        for h in handles {
            let outcome = h.wait().unwrap();
            assert!(outcome.rows().len() <= 3);
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 50);
        // Batching must have grouped many queries into few batches.
        assert!(stats.batches < 50, "batches = {}", stats.batches);
    }

    #[test]
    fn index_probe_point_query() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("userById", &[Value::Int(33)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][1], Value::text("user33"));
    }

    #[test]
    fn top_n_query_respects_limit() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("topOrders", &[Value::Float(0.0)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 5);
        // Descending by TOTAL.
        let totals: Vec<f64> = outcome
            .rows()
            .iter()
            .map(|r| r[3].as_float().unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn updates_and_queries_interleave() {
        let engine = build_engine(EngineConfig::default());
        // Insert a new order for user 1 and then read it back via the join.
        let outcome = engine
            .execute_sync(
                "addOrder",
                &[Value::Int(10_000), Value::Int(1), Value::Float(99.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().iter().any(|r| r[4] == Value::Int(10_000)));
        // Delete the user's orders and observe the effect.
        let outcome = engine
            .execute_sync("cancelOrders", &[Value::Int(1)])
            .unwrap();
        assert!(outcome.rows_affected() >= 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().is_empty());
    }

    #[test]
    fn unknown_statement_and_missing_params_fail_fast() {
        let engine = build_engine(EngineConfig::default());
        assert!(matches!(
            engine.execute("noSuchStatement", &[]),
            Err(Error::UnknownStatement(_))
        ));
        assert!(matches!(
            engine.execute("ordersOfUser", &[]),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn core_budget_one_still_completes() {
        let engine = build_engine(EngineConfig::with_cores(1));
        let handles: Vec<_> = (0..10)
            .map(|_| engine.execute("usersByCountry", &[]).unwrap())
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().rows().len(), 2);
        }
    }

    #[test]
    fn shutdown_fails_pending_work() {
        let mut engine = build_engine(EngineConfig::default());
        engine.shutdown();
        assert!(matches!(
            engine.execute("usersByCountry", &[]),
            Err(Error::EngineShutdown)
        ));
    }

    #[test]
    fn operator_stats_are_recorded() {
        let engine = build_engine(EngineConfig::default());
        engine.execute_sync("usersByCountry", &[]).unwrap();
        let stats = engine.operator_stats();
        assert_eq!(stats.len(), engine.plan().len());
        // The USERS scan must have processed at least one active cycle.
        let users_scan = stats
            .iter()
            .find(|s| s.name.starts_with("Scan(USERS)"))
            .unwrap();
        assert!(users_scan.active_cycles >= 1);
        assert!(users_scan.tuples_out >= 100);
    }

    #[test]
    fn wait_timeout_reports_deadline() {
        let engine = build_engine(EngineConfig::default());
        // A timeout of zero cannot be met.
        let handle = engine.execute("usersByCountry", &[]).unwrap();
        match handle.wait_timeout(Duration::from_nanos(1)) {
            Err(Error::DeadlineExceeded) | Ok(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

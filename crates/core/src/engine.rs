//! The batched, push-based SharedDB runtime.
//!
//! The engine owns:
//!
//! * one **operator thread per plan node** (Section 4.3: "all database
//!   operators are executed in a separate hardware context"),
//! * an **admission queue** where freshly submitted queries and updates wait
//!   while the current batch is processed (Section 3.2),
//! * a **coordinator thread** that drains the admission queue at every
//!   heartbeat, forms a [`QueryBatch`], wires per-batch data channels between
//!   the operator threads, applies the batch's updates (group commit), routes
//!   the roots' outputs back to the waiting clients (the Γ(query_id) step) and
//!   records statistics,
//! * with `EngineConfig::scan_segments > 1`, a **segment worker pool**: the
//!   coordinator splits each batch into a *whole lane* (the operator threads,
//!   as above) and a *segment lane* — queries whose statement shape has a
//!   [`crate::scatter::ScatterSpec`] are rewritten into one activation set per
//!   row segment, each segment executes the plan on a pool worker, and the
//!   partial results recombine through [`crate::merge::merge_results`] before
//!   routing. Updates are never segmented (single-writer group commit), and
//!   every segment of a batch reads the batch's one snapshot.
//!
//! Clients interact through [`Engine::execute`] (asynchronous, returns a
//! [`QueryHandle`]) or [`Engine::execute_sync`].

use crate::batch::{bind_query, bind_update, Activation, ActiveQuery, ActiveUpdate, QueryBatch};
use crate::budget::CoreBudget;
use crate::config::EngineConfig;
use crate::merge::{merge_results, MergeSpec};
use crate::operators::{execute_operator, ExecContext};
use crate::plan::{GlobalPlan, OperatorId, StatementRegistry};
use crate::scatter::{scatter_spec, ScatterSpec};
use crate::stats::{
    AttributionEntry, AttributionTable, EngineStats, EngineStatsSnapshot, OperatorStats,
    OperatorStatsSnapshot, Phase, SegmentStats, SegmentStatsSnapshot, SlowQueryRecord,
    StatementPhaseSnapshot,
};
use crate::storage_ops::{build_storage_operators, StorageOperator};
use crate::trace::{TraceEvent, TraceJournal, TraceRecord};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::ids::{BatchId, QueryIdGenerator, TicketGenerator, TicketId};
use shareddb_common::{Error, QTuple, QueryId, Result, Schema, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::Catalog;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The rows produced for one query.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Schema of the rows (after projection).
    pub schema: Schema,
    /// The result rows, in the order produced by the query's root operator.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Outcome of one statement execution.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A query returning rows.
    Rows(ResultSet),
    /// An update reporting its affected row count.
    Updated {
        /// Number of rows inserted / modified / deleted.
        rows_affected: usize,
    },
}

impl QueryOutcome {
    /// Convenience accessor: the rows of a query outcome (empty for updates).
    pub fn rows(&self) -> &[Tuple] {
        match self {
            QueryOutcome::Rows(rs) => &rs.rows,
            QueryOutcome::Updated { .. } => &[],
        }
    }

    /// Convenience accessor: rows affected by an update (0 for queries).
    pub fn rows_affected(&self) -> usize {
        match self {
            QueryOutcome::Rows(_) => 0,
            QueryOutcome::Updated { rows_affected } => *rows_affected,
        }
    }
}

/// Handle to a submitted statement execution.
#[derive(Debug)]
pub struct QueryHandle {
    ticket: TicketId,
    receiver: Receiver<Result<QueryOutcome>>,
    submitted: Instant,
}

impl QueryHandle {
    /// The ticket identifying this execution.
    pub fn ticket(&self) -> TicketId {
        self.ticket
    }

    /// Time since submission.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// Blocks until the result is available.
    pub fn wait(self) -> Result<QueryOutcome> {
        self.receiver.recv().map_err(|_| Error::EngineShutdown)?
    }

    /// Non-blocking poll: `None` while the statement is still in flight,
    /// `Some(outcome)` exactly once when it completes. Event-driven callers
    /// (the network reactor) pair this with
    /// [`SubmitOptions::completion_waker`] instead of parking a thread in
    /// [`QueryHandle::wait`].
    pub fn try_wait(&self) -> Option<Result<QueryOutcome>> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(outcome),
            // Every handle is delivered exactly one message before its sender
            // is dropped (the outcome, or the failure injected on engine
            // shutdown), so `Disconnected` only means the outcome was already
            // consumed by an earlier call — keep the "exactly once" contract
            // rather than surfacing a spurious shutdown error.
            Err(crossbeam_channel::TryRecvError::Empty)
            | Err(crossbeam_channel::TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the result is available or the deadline passes.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryOutcome> {
        match self.receiver.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(Error::DeadlineExceeded),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(Error::EngineShutdown),
        }
    }
}

// ---------------------------------------------------------------------------
// Internal messages
// ---------------------------------------------------------------------------

type TaskData = Arc<Vec<QTuple>>;

/// Γ routing table of one lane: root operator → query → that query's rows.
type RoutingTable = HashMap<OperatorId, HashMap<QueryId, Vec<Tuple>>>;

struct OperatorTask {
    activations: Vec<(QueryId, Activation)>,
    inputs: Vec<Receiver<TaskData>>,
    outputs: Vec<Sender<TaskData>>,
    collector: Option<Sender<(OperatorId, TaskData)>>,
    done: Sender<OperatorDone>,
    snapshot: Snapshot,
}

struct OperatorDone {
    id: OperatorId,
    result: Result<usize>,
    busy: Duration,
    had_queries: bool,
}

enum OperatorMessage {
    Task(Box<OperatorTask>),
    Shutdown,
}

/// One segment lane of one batch: the full plan, restricted to the
/// segment-eligible queries, over one row segment `(segment, of)`. A pool
/// worker executes the plan nodes **sequentially in id order** (plan ids are
/// topological), materialising each node's output for its consumers — no
/// per-segment channel mesh, no cross-segment synchronisation until the
/// coordinator's merge barrier.
struct SegmentJob {
    segment: u32,
    /// Bound activations per plan node (indexed by operator id); nodes with
    /// no activations are skipped.
    activations: Vec<Vec<(QueryId, Activation)>>,
    /// Root operators whose output the coordinator needs for merging.
    collect: Vec<bool>,
    snapshot: Snapshot,
    done: Sender<SegmentDone>,
}

struct SegmentDone {
    segment: u32,
    /// `(tuples_out, busy)` per executed plan node (`None` = not executed in
    /// this lane). Feeds the per-operator counters without double-counting:
    /// the coordinator folds lanes with max-busy / summed-tuples.
    node_stats: Vec<Option<(usize, Duration)>>,
    /// Root outputs by operator id, or the first node failure.
    outputs: Result<HashMap<OperatorId, Vec<QTuple>>>,
    /// Wall-clock duration of the whole segment job.
    busy: Duration,
}

enum Submission {
    Query(ActiveQuery),
    Update(ActiveUpdate),
}

struct PendingResult {
    sender: Sender<Result<QueryOutcome>>,
    submitted: Instant,
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Options for [`Engine::submit`].
#[derive(Clone, Default)]
pub struct SubmitOptions {
    /// Reject the submission with [`Error::Overloaded`] when the admission
    /// queue already holds this many statements. The check and the enqueue
    /// happen under the queue lock, so the bound is exact even with many
    /// concurrent submitters (no check-then-enqueue TOCTOU).
    pub max_queue_depth: Option<usize>,
    /// Invoked after the statement's outcome has been delivered to its
    /// [`QueryHandle`] (including the failure delivered on engine shutdown).
    /// Lets a nonblocking caller poll [`QueryHandle::try_wait`] only when
    /// woken instead of parking a thread per statement.
    pub completion_waker: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Restrict every shared-scan activation of this query to one horizontal
    /// partition `(index, of)` of its table: a row participates iff
    /// `tuple_partition(row, hash_columns, of) == index`. This is the
    /// replica-aware hook the cluster layer uses to fan one logical query out
    /// over N engine replicas (paper §4.5) and merge the partial results; a
    /// plain engine caller leaves it `None`.
    pub scan_partition: Option<(u32, u32)>,
    /// Per-scan-operator override of the columns hashed by the partition
    /// function (operator id → column indices into that scan's table schema).
    /// Scans not listed hash the table's primary key. The cluster layer uses
    /// this to co-partition the build and probe sides of a fanned-out
    /// equi-join by the join key, so rows that join always land in the same
    /// partition.
    pub partition_columns: Option<Arc<std::collections::HashMap<OperatorId, Vec<usize>>>>,
    /// Pin every storage read (shared scan / index probe) of this query to a
    /// fixed MVCC snapshot instead of the executing batch's own snapshot.
    /// The cluster layer captures one [`Catalog::snapshot`] per fanned-out
    /// execution and pins all partitions to it, so one logical query reads
    /// one version set even while its partitions run in different batches on
    /// different replicas under concurrent writes.
    pub pinned_snapshot: Option<Snapshot>,
    /// Ship partition-mergeable partial aggregates instead of final values:
    /// a shared group-by emits, for every AVG aggregate of this query, the
    /// partial sum in the AVG column plus a trailing hidden count column.
    /// Set by the cluster layer for fanned-out group-by roots (the merge
    /// step recombines sum/count and drops the hidden columns); meaningless
    /// without a merge step consuming the partials.
    pub partial_aggregation: bool,
}

struct Admission {
    queue: Mutex<VecDeque<Submission>>,
    signal: Condvar,
}

struct EngineInner {
    catalog: Arc<Catalog>,
    plan: GlobalPlan,
    registry: StatementRegistry,
    config: EngineConfig,
    admission: Admission,
    pending: Mutex<HashMap<TicketId, PendingResult>>,
    query_ids: QueryIdGenerator,
    tickets: TicketGenerator,
    shutdown: AtomicBool,
    stats: EngineStats,
    /// Start of the current statistics window (engine start, or the last
    /// [`Engine::reset_stats`]); the wall clock for busy-fraction numbers.
    stats_epoch: Mutex<Instant>,
    operator_stats: Vec<OperatorStats>,
    /// Per-operator × per-statement-type cost attribution, recorded alongside
    /// `operator_stats` from the same folded per-batch numbers (so attributed
    /// busy times sum exactly to the per-operator busy counters).
    attribution: AttributionTable,
    operator_senders: Vec<Sender<OperatorMessage>>,
    trace: TraceJournal,
    /// Per-statement partitionability analysis, precomputed at start; `None`
    /// for updates and shapes the walker does not recognise. Only populated
    /// when `config.scan_segments > 1`.
    scatter_specs: Vec<Option<ScatterSpec>>,
    /// Job channel of the segment worker pool (`None` when segmenting is
    /// off); taken and dropped on shutdown to disconnect the workers.
    segment_jobs: Mutex<Option<Sender<SegmentJob>>>,
    /// One counter slot per segment lane (empty when segmenting is off).
    segment_stats: Vec<SegmentStats>,
}

/// The SharedDB engine: an always-on global plan plus the batching runtime.
pub struct Engine {
    inner: Arc<EngineInner>,
    coordinator: Option<JoinHandle<()>>,
    operators: Vec<JoinHandle<()>>,
    segment_workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts the engine: spawns one thread per plan operator plus the
    /// coordinator thread.
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        config: EngineConfig,
    ) -> Result<Engine> {
        registry.validate(&plan)?;
        if config.scan_segments == 0 {
            return Err(Error::InvalidParameter(
                "scan_segments must be >= 1 (1 disables segment parallelism)".into(),
            ));
        }
        let storage_ops = Arc::new(build_storage_operators(&catalog, &plan)?);
        let budget = CoreBudget::new(config.core_budget);

        // Which statement shapes may run segment-parallel, and how their
        // partial results recombine. The analysis is per statement type, so
        // it runs once here instead of per submission.
        let scatter_specs: Vec<Option<ScatterSpec>> = if config.scan_segments > 1 {
            registry
                .iter()
                .map(|s| scatter_spec(&catalog, &plan, s))
                .collect()
        } else {
            registry.iter().map(|_| None).collect()
        };

        let mut operator_senders = Vec::with_capacity(plan.len());
        let mut operator_receivers = Vec::with_capacity(plan.len());
        for _ in 0..plan.len() {
            let (tx, rx) = unbounded::<OperatorMessage>();
            operator_senders.push(tx);
            operator_receivers.push(rx);
        }

        // Segment worker pool: one worker per segment lane, all draining one
        // shared job channel, so a batch's N segment jobs run concurrently.
        let mut segment_workers = Vec::new();
        let segment_jobs = if config.scan_segments > 1 {
            let (tx, rx) = unbounded::<SegmentJob>();
            for i in 0..config.scan_segments {
                let rx = rx.clone();
                let plan = plan.clone();
                let storage_ops = Arc::clone(&storage_ops);
                let catalog = Arc::clone(&catalog);
                let budget = budget.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shareddb-seg-{i}"))
                    .spawn(move || segment_worker_loop(rx, plan, storage_ops, catalog, budget))
                    .map_err(|e| Error::Internal(format!("failed to spawn segment worker: {e}")))?;
                segment_workers.push(handle);
            }
            Some(tx)
        } else {
            None
        };
        let segment_stats: Vec<SegmentStats> = if config.scan_segments > 1 {
            (0..config.scan_segments)
                .map(|_| SegmentStats::default())
                .collect()
        } else {
            Vec::new()
        };

        let statement_names: Vec<String> = registry.iter().map(|s| s.name.clone()).collect();
        let trace = TraceJournal::new(config.trace_capacity);
        let inner = Arc::new(EngineInner {
            catalog: Arc::clone(&catalog),
            plan: plan.clone(),
            registry,
            config,
            admission: Admission {
                queue: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
            },
            pending: Mutex::new(HashMap::new()),
            query_ids: QueryIdGenerator::new(),
            tickets: TicketGenerator::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::with_statements(statement_names.clone()),
            stats_epoch: Mutex::new(Instant::now()),
            operator_stats: (0..plan.len()).map(|_| OperatorStats::default()).collect(),
            attribution: AttributionTable::new(
                plan.nodes().iter().map(|n| n.name.clone()).collect(),
                statement_names,
            ),
            operator_senders,
            trace,
            scatter_specs,
            segment_jobs: Mutex::new(segment_jobs),
            segment_stats,
        });

        // Operator threads.
        let mut operators = Vec::with_capacity(plan.len());
        for (node, rx) in plan.nodes().iter().zip(operator_receivers) {
            let node = node.clone();
            let storage_ops = Arc::clone(&storage_ops);
            let catalog = Arc::clone(&catalog);
            let budget = budget.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shareddb-op-{}", node.name))
                .spawn(move || operator_loop(node.id, node, rx, storage_ops, catalog, budget))
                .map_err(|e| Error::Internal(format!("failed to spawn operator thread: {e}")))?;
            operators.push(handle);
        }

        // Coordinator thread.
        let coordinator_inner = Arc::clone(&inner);
        let coordinator = std::thread::Builder::new()
            .name("shareddb-coordinator".to_string())
            .spawn(move || coordinator_loop(coordinator_inner))
            .map_err(|e| Error::Internal(format!("failed to spawn coordinator: {e}")))?;

        Ok(Engine {
            inner,
            coordinator: Some(coordinator),
            operators,
            segment_workers,
        })
    }

    /// The catalog the engine runs on.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.inner.catalog)
    }

    /// The global plan.
    pub fn plan(&self) -> &GlobalPlan {
        &self.inner.plan
    }

    /// Submits a statement execution; returns a handle to wait on.
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<QueryHandle> {
        self.submit(statement, params, SubmitOptions::default())
    }

    /// Submits a statement execution with admission options; returns a handle
    /// to wait on (or poll via [`QueryHandle::try_wait`]).
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<QueryHandle> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::EngineShutdown);
        }
        // The admission phase spans binding, pending registration and the
        // queue push — everything between the caller's submit call and the
        // statement waiting for its heartbeat.
        let submitted = Instant::now();
        let (index, spec) = self.inner.registry.get(statement)?;
        let ticket = self.inner.tickets.next_id();
        let submission = if spec.is_update() {
            Submission::Update(bind_update(spec, index, ticket, params)?)
        } else {
            let query_id = self.inner.query_ids.next_id();
            let mut query = bind_query(spec, index, query_id, ticket, params, &opts)?;
            // Segment eligibility mirrors the cluster fanout gate: the shape
            // must have a scatter spec, and parameterised executions qualify
            // only when the shape scatters with parameters.
            if let Some(scatter) = &self.inner.scatter_specs[index] {
                query.segment_ok = params.is_empty() || scatter.scatter_with_params;
            }
            Submission::Query(query)
        };
        let (tx, rx) = unbounded();
        self.inner.pending.lock().insert(
            ticket,
            PendingResult {
                sender: tx,
                submitted,
                waker: opts.completion_waker,
            },
        );
        {
            let mut queue = self.inner.admission.queue.lock();
            if let Some(max) = opts.max_queue_depth {
                if queue.len() >= max {
                    drop(queue);
                    self.inner.pending.lock().remove(&ticket);
                    return Err(Error::Overloaded(format!(
                        "admission queue depth limit of {max} reached"
                    )));
                }
            }
            queue.push_back(submission);
        }
        self.inner.admission.signal.notify_one();
        self.inner
            .stats
            .record_phase(index, Phase::Admission, submitted.elapsed());
        Ok(QueryHandle {
            ticket,
            receiver: rx,
            submitted,
        })
    }

    /// Submits a statement and blocks until its result is available.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<QueryOutcome> {
        self.execute(statement, params)?.wait()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Per-operator statistics.
    pub fn operator_stats(&self) -> Vec<OperatorStatsSnapshot> {
        self.inner
            .plan
            .nodes()
            .iter()
            .map(|n| self.inner.operator_stats[n.id].snapshot(&n.name))
            .collect()
    }

    /// Per-operator × per-statement-type cost attribution: for every
    /// operator, who (which statement type) the busy time and output rows
    /// were spent on, split by each batch's activation mix. The entries for
    /// one operator — including the `_idle` residual — sum exactly to that
    /// operator's totals in [`Engine::operator_stats`].
    pub fn attribution_stats(&self) -> Vec<AttributionEntry> {
        self.inner.attribution.snapshot()
    }

    /// Per-segment-lane statistics (empty when `scan_segments <= 1`): busy
    /// time, contributed rows and the per-batch execute-time histogram of
    /// each segment of the intra-engine parallel scan path.
    pub fn segment_stats(&self) -> Vec<SegmentStatsSnapshot> {
        self.inner
            .segment_stats
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Per-statement-type, per-phase latency histograms.
    pub fn phase_snapshot(&self) -> Vec<StatementPhaseSnapshot> {
        self.inner.stats.phase_snapshot()
    }

    /// Total slow-query offenders plus the retained tail of the log.
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        self.inner.stats.slow_queries()
    }

    /// The retained batch-lifecycle trace, oldest first.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.inner.trace.snapshot()
    }

    /// Wall-clock length of the current statistics window (time since engine
    /// start or the last [`Engine::reset_stats`]); the denominator for
    /// per-operator busy fractions.
    pub fn stats_wall(&self) -> Duration {
        self.inner.stats_epoch.lock().elapsed()
    }

    /// Zeroes the engine-level statistics, phase histograms, slow-query log
    /// and per-operator counters, and restarts the busy-fraction wall clock.
    /// Bench harnesses call this after warm-up so reported numbers cover only
    /// the measured window.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
        for op in &self.inner.operator_stats {
            op.reset();
        }
        self.inner.attribution.reset();
        for seg in &self.inner.segment_stats {
            seg.reset();
        }
        *self.inner.stats_epoch.lock() = Instant::now();
    }

    /// Number of statements queued but not yet admitted into a batch.
    pub fn queued(&self) -> usize {
        self.inner.admission.queue.lock().len()
    }

    /// Stops the engine: drains nothing further, fails queued work with
    /// [`Error::EngineShutdown`] and joins all threads.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.admission.signal.notify_all();
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        // Disconnect the segment pool's job channel after the coordinator is
        // gone (it is the only sender of jobs); the workers' recv fails and
        // they exit.
        drop(self.inner.segment_jobs.lock().take());
        for handle in self.segment_workers.drain(..) {
            let _ = handle.join();
        }
        for sender in &self.inner.operator_senders {
            let _ = sender.send(OperatorMessage::Shutdown);
        }
        for handle in self.operators.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Operator threads
// ---------------------------------------------------------------------------

fn operator_loop(
    id: OperatorId,
    node: crate::plan::OperatorNode,
    receiver: Receiver<OperatorMessage>,
    storage_ops: Arc<Vec<Option<StorageOperator>>>,
    catalog: Arc<Catalog>,
    budget: CoreBudget,
) {
    while let Ok(message) = receiver.recv() {
        let task = match message {
            OperatorMessage::Task(task) => task,
            OperatorMessage::Shutdown => break,
        };
        // Gather the inputs of this batch first (waiting does not consume a
        // core), then acquire a core permit for the actual processing.
        let mut inputs: Vec<Vec<QTuple>> = Vec::with_capacity(task.inputs.len());
        let mut input_failed = false;
        for rx in &task.inputs {
            match rx.recv() {
                Ok(data) => inputs.push(data.as_ref().clone()),
                Err(_) => {
                    // The producer failed; propagate an empty input. The
                    // producer's error is reported through its own done
                    // message and fails the batch at the coordinator.
                    inputs.push(Vec::new());
                    input_failed = true;
                }
            }
        }

        let had_queries = !task.activations.is_empty();
        let permit = budget.acquire();
        let started = Instant::now();
        let result: Result<Vec<QTuple>> = if input_failed {
            Ok(Vec::new())
        } else if let Some(storage) = &storage_ops[id] {
            storage.execute(&task.activations)
        } else {
            let ctx = ExecContext {
                catalog: &catalog,
                snapshot: task.snapshot,
            };
            execute_operator(&node.spec, &task.activations, inputs, &ctx)
        };
        let busy = started.elapsed();
        drop(permit);

        match result {
            Ok(tuples) => {
                let count = tuples.len();
                let data: TaskData = Arc::new(tuples);
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Ok(count),
                    busy,
                    had_queries,
                });
            }
            Err(e) => {
                // Emit empty outputs so downstream operators do not hang, then
                // report the failure.
                let data: TaskData = Arc::new(Vec::new());
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Err(e),
                    busy,
                    had_queries,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Segment workers
// ---------------------------------------------------------------------------

/// One pool worker of the segment-parallel scan path: executes whole-plan
/// segment jobs, one at a time, holding one core-budget permit per job. Plan
/// node ids are assigned in topological order, so a single forward pass with
/// materialised per-node outputs respects every producer/consumer edge.
fn segment_worker_loop(
    jobs: Receiver<SegmentJob>,
    plan: GlobalPlan,
    storage_ops: Arc<Vec<Option<StorageOperator>>>,
    catalog: Arc<Catalog>,
    budget: CoreBudget,
) {
    while let Ok(job) = jobs.recv() {
        let permit = budget.acquire();
        let started = Instant::now();
        let mut outputs: Vec<Vec<QTuple>> = vec![Vec::new(); plan.len()];
        let mut node_stats: Vec<Option<(usize, Duration)>> = vec![None; plan.len()];
        let mut failure: Option<Error> = None;
        for node in plan.nodes() {
            let activations = &job.activations[node.id];
            if activations.is_empty() {
                continue;
            }
            let node_started = Instant::now();
            let result = if let Some(storage) = &storage_ops[node.id] {
                storage.execute(activations)
            } else {
                let inputs: Vec<Vec<QTuple>> =
                    node.inputs.iter().map(|i| outputs[*i].clone()).collect();
                let ctx = ExecContext {
                    catalog: &catalog,
                    snapshot: job.snapshot,
                };
                execute_operator(&node.spec, activations, inputs, &ctx)
            };
            match result {
                Ok(tuples) => {
                    node_stats[node.id] = Some((tuples.len(), node_started.elapsed()));
                    outputs[node.id] = tuples;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let busy = started.elapsed();
        drop(permit);
        let result = match failure {
            Some(e) => Err(e),
            None => Ok(job
                .collect
                .iter()
                .enumerate()
                .filter(|(_, wanted)| **wanted)
                .map(|(id, _)| (id, std::mem::take(&mut outputs[id])))
                .collect()),
        };
        let _ = job.done.send(SegmentDone {
            segment: job.segment,
            node_stats,
            outputs: result,
            busy,
        });
    }
}

/// Rewrites one bound activation for one row segment: scans additionally
/// restrict to segment `(index, of)` — hashing the cluster co-partition
/// columns when set (fanout partition columns take precedence over the
/// default primary-key segmenting), else the walker's own join-key columns,
/// else the table's primary key — and a group-by root switches to partial
/// mode when the shape merges partial aggregates.
fn segment_activation(
    activation: &Activation,
    op: OperatorId,
    index: u32,
    of: u32,
    spec: &ScatterSpec,
) -> Activation {
    match activation {
        Activation::Scan {
            predicate,
            partition,
            partition_columns,
            segment: _,
            snapshot,
        } => Activation::Scan {
            predicate: predicate.clone(),
            partition: *partition,
            partition_columns: partition_columns.clone().or_else(|| {
                spec.partition_columns
                    .as_ref()
                    .and_then(|m| m.get(&op).cloned())
            }),
            segment: Some((index, of)),
            snapshot: *snapshot,
        },
        Activation::Having { predicate, partial } => Activation::Having {
            predicate: predicate.clone(),
            partial: *partial || spec.partial_aggregation,
        },
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

fn coordinator_loop(inner: Arc<EngineInner>) {
    let mut batch_seq: u64 = 0;
    let mut last_batch_start = Instant::now() - inner.config.heartbeat;
    loop {
        // Wait for work (or shutdown).
        let submissions = {
            let mut queue = inner.admission.queue.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if !queue.is_empty() {
                    break;
                }
                inner
                    .admission
                    .signal
                    .wait_for(&mut queue, inner.config.heartbeat);
            }
            if inner.shutdown.load(Ordering::Acquire) && queue.is_empty() {
                break;
            }
            // Heartbeat pacing: in non-eager mode a new batch starts at most
            // once per heartbeat interval, letting more work accumulate.
            if !inner.config.eager_heartbeat {
                let since = last_batch_start.elapsed();
                if since < inner.config.heartbeat {
                    let mut wait = inner.config.heartbeat - since;
                    drop(queue);
                    // Sleep in small slices so a shutdown (graceful drain)
                    // is observed promptly even with long heartbeats.
                    while !wait.is_zero() && !inner.shutdown.load(Ordering::Acquire) {
                        let slice = wait.min(Duration::from_millis(10));
                        std::thread::sleep(slice);
                        wait = wait.saturating_sub(slice);
                    }
                    queue = inner.admission.queue.lock();
                }
            }
            let limit = if inner.config.max_batch_size == 0 {
                queue.len()
            } else {
                inner.config.max_batch_size.min(queue.len())
            };
            queue.drain(..limit).collect::<Vec<_>>()
        };
        if submissions.is_empty() {
            continue;
        }
        last_batch_start = Instant::now();
        batch_seq += 1;
        let mut batch = QueryBatch {
            id: BatchId(batch_seq),
            ..Default::default()
        };
        for submission in submissions {
            match submission {
                Submission::Query(q) => batch.queries.push(q),
                Submission::Update(u) => batch.updates.push(u),
            }
        }
        process_batch(&inner, &batch);
        inner
            .stats
            .record_batch(batch.queries.len() + batch.updates.len());
    }

    // Fail everything still pending.
    let drained: Vec<PendingResult> = {
        let mut pending = inner.pending.lock();
        pending.drain().map(|(_, result)| result).collect()
    };
    for result in drained {
        let _ = result.sender.send(Err(Error::EngineShutdown));
        if let Some(waker) = &result.waker {
            waker();
        }
    }
}

fn process_batch(inner: &Arc<EngineInner>, batch: &QueryBatch) {
    let batch_started = Instant::now();
    // The statement-type mix (computed only when tracing is on — it
    // allocates) is what the attribution table splits operator busy time by.
    let mix = if inner.trace.capacity() > 0 {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for q in &batch.queries {
            *counts.entry(q.statement_index).or_default() += 1;
        }
        for u in &batch.updates {
            *counts.entry(u.statement_index).or_default() += 1;
        }
        let mut mix: Vec<(usize, usize)> = counts.into_iter().collect();
        mix.sort_unstable();
        mix
    } else {
        Vec::new()
    };
    inner.trace.push(TraceEvent::BatchFormed {
        batch: batch.id.0,
        queries: batch.queries.len(),
        updates: batch.updates.len(),
        mix,
    });

    // Phase 1: apply the batch's updates in arrival order (one commit
    // timestamp for the whole batch, group commit into the WAL).
    if !batch.updates.is_empty() {
        let ops: Vec<(String, shareddb_storage::UpdateOp)> = batch
            .updates
            .iter()
            .map(|u| (u.table.clone(), u.op.clone()))
            .collect();
        match inner.catalog.apply_batch(&ops) {
            Ok(results) => {
                for (update, result) in batch.updates.iter().zip(results) {
                    complete(
                        inner,
                        update.ticket,
                        Ok(QueryOutcome::Updated {
                            rows_affected: result.rows_affected,
                        }),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                            segments: 1,
                        }),
                    );
                }
            }
            Err(e) => {
                for update in &batch.updates {
                    complete(
                        inner,
                        update.ticket,
                        Err(e.clone()),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                            segments: 1,
                        }),
                    );
                }
            }
        }
    }

    if batch.queries.is_empty() {
        return;
    }

    // Phase 2: run the shared operators of the plan for this batch.
    let snapshot = inner.catalog.oracle().read_ts();
    let plan = &inner.plan;
    let segments = inner.config.scan_segments as u32;

    // Lane split. Queries whose statement shape is partitionable run
    // segment-parallel on the worker pool (segment lane); everything else —
    // and everything, when segmenting is off — runs on the operator threads
    // exactly as before (whole lane). Both lanes execute against this
    // batch's single snapshot, so the split is invisible to MVCC, and
    // updates were already applied in Phase 1, never segmented.
    let mut whole_lane: Vec<&ActiveQuery> = Vec::new();
    let mut seg_lane: Vec<&ActiveQuery> = Vec::new();
    for q in &batch.queries {
        if segments > 1 && q.segment_ok {
            seg_lane.push(q);
        } else {
            whole_lane.push(q);
        }
    }

    // Whole lane: per-operator activations and router subscriptions.
    let mut collect: Vec<bool> = vec![false; plan.len()];
    let mut node_activations: Vec<Vec<(QueryId, Activation)>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    for q in &whole_lane {
        collect[q.root] = true;
        for (op, activation) in &q.activations {
            node_activations[*op].push((q.query_id, activation.clone()));
        }
    }

    // Segment lane: rewrite each eligible query's activations per row
    // segment and dispatch one whole-plan job per segment to the pool.
    let (segment_done_tx, segment_done_rx) = unbounded::<SegmentDone>();
    let mut seg_error: Option<Error> = None;
    let mut dispatched_segments: u32 = 0;
    if !seg_lane.is_empty() {
        let mut seg_collect: Vec<bool> = vec![false; plan.len()];
        for q in &seg_lane {
            seg_collect[q.root] = true;
        }
        let jobs = inner.segment_jobs.lock();
        for s in 0..segments {
            let mut activations: Vec<Vec<(QueryId, Activation)>> =
                (0..plan.len()).map(|_| Vec::new()).collect();
            for q in &seg_lane {
                let spec = inner.scatter_specs[q.statement_index]
                    .as_ref()
                    .expect("segment_ok implies a scatter spec");
                for (op, activation) in &q.activations {
                    activations[*op].push((
                        q.query_id,
                        segment_activation(activation, *op, s, segments, spec),
                    ));
                }
            }
            let job = SegmentJob {
                segment: s,
                activations,
                collect: seg_collect.clone(),
                snapshot,
                done: segment_done_tx.clone(),
            };
            match jobs.as_ref() {
                Some(tx) if tx.send(job).is_ok() => dispatched_segments += 1,
                _ => {
                    seg_error = Some(Error::EngineShutdown);
                    break;
                }
            }
        }
    }
    drop(segment_done_tx);

    // Build the per-batch data channels along plan edges (whole lane).
    let mut input_receivers: Vec<Vec<Receiver<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    let mut output_senders: Vec<Vec<Sender<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    for node in plan.nodes() {
        for &input in &node.inputs {
            let (tx, rx) = unbounded::<TaskData>();
            output_senders[input].push(tx);
            input_receivers[node.id].push(rx);
        }
    }
    let (collector_tx, collector_rx) = unbounded::<(OperatorId, TaskData)>();
    let (done_tx, done_rx) = unbounded::<OperatorDone>();

    let expected_collects = collect.iter().filter(|&&c| c).count();

    // Dispatch one task per operator (always-on plan: every operator runs
    // every cycle, possibly with zero active queries).
    let mut receivers_iter: Vec<Vec<Receiver<TaskData>>> = input_receivers;
    let mut senders_iter: Vec<Vec<Sender<TaskData>>> = output_senders;
    let mut activations_iter = node_activations;
    for node in plan.nodes() {
        let task = OperatorTask {
            activations: std::mem::take(&mut activations_iter[node.id]),
            inputs: std::mem::take(&mut receivers_iter[node.id]),
            outputs: std::mem::take(&mut senders_iter[node.id]),
            collector: if collect[node.id] {
                Some(collector_tx.clone())
            } else {
                None
            },
            done: done_tx.clone(),
            snapshot,
        };
        let _ = inner.operator_senders[node.id].send(OperatorMessage::Task(Box::new(task)));
    }
    drop(collector_tx);
    drop(done_tx);

    // Gather per-operator completion. Per-operator counters are recorded
    // exactly ONCE per operator per batch, folding both lanes: tuples are
    // SUMMED (the lanes' row sets are disjoint), busy is the MAXIMUM across
    // lanes. The lanes run concurrently, so the max approximates the
    // wall-clock busy union; summing would let N parallel segments multiply
    // the reported busy-fraction and deflate tuples-per-active-cycle.
    let mut batch_error: Option<Error> = None;
    let mut active_operators = 0usize;
    let mut total_busy = Duration::ZERO;
    let mut op_tuples: Vec<usize> = vec![0; plan.len()];
    let mut op_busy: Vec<Duration> = vec![Duration::ZERO; plan.len()];
    let mut op_active: Vec<bool> = vec![false; plan.len()];
    for _ in 0..plan.len() {
        match done_rx.recv() {
            Ok(done) => {
                let tuples = match &done.result {
                    Ok(n) => *n,
                    Err(e) => {
                        if batch_error.is_none() {
                            batch_error = Some(e.clone());
                        }
                        0
                    }
                };
                op_tuples[done.id] += tuples;
                op_busy[done.id] = op_busy[done.id].max(done.busy);
                op_active[done.id] |= done.had_queries;
                total_busy += done.busy;
                if done.had_queries {
                    active_operators += 1;
                    inner.trace.push(TraceEvent::OperatorFired {
                        batch: batch.id.0,
                        operator: done.id,
                        tuples,
                        busy_us: done.busy.as_micros() as u64,
                    });
                }
            }
            Err(_) => {
                batch_error = Some(Error::Internal("operator thread disappeared".into()));
                break;
            }
        }
    }

    // Merge barrier of the segment lane: gather every dispatched segment
    // job. A failed segment fails only the segment lane's queries; the
    // whole lane is unaffected (and vice versa).
    let mut segment_outputs: Vec<Option<HashMap<OperatorId, Vec<QTuple>>>> =
        (0..segments).map(|_| None).collect();
    for _ in 0..dispatched_segments {
        match segment_done_rx.recv() {
            Ok(done) => {
                total_busy += done.busy;
                for (id, stats) in done.node_stats.iter().enumerate() {
                    if let Some((tuples, busy)) = stats {
                        op_tuples[id] += tuples;
                        op_busy[id] = op_busy[id].max(*busy);
                        op_active[id] = true;
                    }
                }
                match done.outputs {
                    Ok(outputs) => {
                        let rows = outputs.values().map(|o| o.len()).sum();
                        inner.segment_stats[done.segment as usize].record(rows, done.busy);
                        segment_outputs[done.segment as usize] = Some(outputs);
                    }
                    Err(e) => {
                        inner.segment_stats[done.segment as usize].record(0, done.busy);
                        if seg_error.is_none() {
                            seg_error = Some(e);
                        }
                    }
                }
            }
            Err(_) => {
                if seg_error.is_none() {
                    seg_error = Some(Error::Internal("segment worker disappeared".into()));
                }
                break;
            }
        }
    }

    for node in plan.nodes() {
        inner.operator_stats[node.id].record_cycle(
            op_active[node.id],
            op_tuples[node.id],
            op_busy[node.id],
        );
    }
    // Attribution: split every operator's folded cycle across the batch's
    // activation mix. Counting from the pre-rewrite activations covers both
    // lanes uniformly (a segmented query still has exactly one activation
    // per operator per execution), and feeding the same folded `op_busy` /
    // `op_tuples` that record_cycle just consumed is what makes the
    // attributed sums match the per-operator totals exactly.
    let n_stmts = inner.attribution.statement_count();
    let mut act_counts: Vec<u64> = vec![0; plan.len() * n_stmts];
    for q in &batch.queries {
        for (op, _) in &q.activations {
            act_counts[*op * n_stmts + q.statement_index] += 1;
        }
    }
    for node in plan.nodes() {
        inner.attribution.record_cycle(
            node.id,
            &act_counts[node.id * n_stmts..(node.id + 1) * n_stmts],
            op_tuples[node.id] as u64,
            op_busy[node.id],
        );
    }
    inner.trace.push(TraceEvent::OperatorsFired {
        batch: batch.id.0,
        fired: plan.len(),
        active: active_operators,
        total_busy_us: total_busy.as_micros() as u64,
    });

    // Gather the whole lane's root outputs.
    let mut root_outputs: HashMap<OperatorId, TaskData> = HashMap::new();
    for _ in 0..expected_collects {
        match collector_rx.recv() {
            Ok((id, data)) => {
                root_outputs.insert(id, data);
            }
            Err(_) => break,
        }
    }

    // Phase 3: route results back to the clients (Γ by query_id). The root
    // outputs are exploded into per-query row lists in ONE pass per root
    // operator, so routing cost is O(results), not O(results × queries).
    let mut routed: RoutingTable = HashMap::new();
    if batch_error.is_none() {
        for (root, output) in root_outputs.iter() {
            let per_query = routed.entry(*root).or_default();
            for tuple in output.iter() {
                for query_id in tuple.queries.iter() {
                    per_query
                        .entry(query_id)
                        .or_default()
                        .push(tuple.tuple.clone());
                }
            }
        }
    }
    // Segment lane: the same Γ step, once per segment; each query's
    // per-segment partial rows then recombine through its statement's merge
    // spec before finalisation.
    let mut seg_routed: Vec<RoutingTable> = (0..segments).map(|_| HashMap::new()).collect();
    if seg_error.is_none() {
        for (s, outputs) in segment_outputs.iter().enumerate() {
            let Some(outputs) = outputs else { continue };
            for (root, output) in outputs {
                let per_query = seg_routed[s].entry(*root).or_default();
                for tuple in output {
                    for query_id in tuple.queries.iter() {
                        per_query
                            .entry(query_id)
                            .or_default()
                            .push(tuple.tuple.clone());
                    }
                }
            }
        }
    }
    for q in &batch.queries {
        let segmented = segments > 1 && q.segment_ok;
        let ctx = Some(PhaseCtx {
            statement_index: q.statement_index,
            enqueued: q.enqueued,
            batch_started,
            segments: if segmented { segments } else { 1 },
        });
        let lane_error = if segmented { &seg_error } else { &batch_error };
        if let Some(error) = lane_error {
            inner.trace.push(TraceEvent::QueryRouted {
                batch: batch.id.0,
                statement: q.statement_index,
                ticket: q.ticket.0,
                rows: 0,
                ok: false,
            });
            complete(inner, q.ticket, Err(error.clone()), ctx);
            inner.stats.record_failure();
            continue;
        }
        let outcome = if segmented {
            merge_segment_partials(inner, q, &mut seg_routed)
                .and_then(|rows| finalize_query_result(inner, q, rows))
        } else {
            let rows = routed
                .get_mut(&q.root)
                .and_then(|per_query| per_query.remove(&q.query_id))
                .unwrap_or_default();
            finalize_query_result(inner, q, rows)
        };
        inner.trace.push(TraceEvent::QueryRouted {
            batch: batch.id.0,
            statement: q.statement_index,
            ticket: q.ticket.0,
            rows: outcome.as_ref().map(|o| o.rows().len()).unwrap_or(0),
            ok: outcome.is_ok(),
        });
        complete(inner, q.ticket, outcome, ctx);
    }
}

/// Recombines one segment-lane query's per-segment partial rows into the
/// single row list [`finalize_query_result`] expects, using the statement's
/// [`MergeSpec`] — the same machinery the cluster layer uses across replicas,
/// one level down.
///
/// Two composition cases for grouped merges:
///
/// * a **direct** caller gets final values: AVG sum/count partials are
///   recombined exactly and the query's own bound HAVING predicate is
///   applied per merged group (a segment must not filter a partial group
///   another segment may complete);
/// * a caller that itself requested partials (**cluster fanout** over a
///   segmented replica) gets back *partial* rows in the same extended
///   layout it asked for — AVG columns keep carrying partial sums, the
///   trailing hidden count columns are summed per group — and HAVING stays
///   deferred to the caller's own merge, which is the only place that sees
///   every partition's contribution to a group.
fn merge_segment_partials(
    inner: &Arc<EngineInner>,
    query: &ActiveQuery,
    seg_routed: &mut [RoutingTable],
) -> Result<Vec<Tuple>> {
    let spec = inner.scatter_specs[query.statement_index]
        .as_ref()
        .ok_or_else(|| Error::Internal("segment-lane query without scatter spec".into()))?;
    // The bound HAVING predicate and the caller-requested partial mode live
    // in the query's own (pre-rewrite) root activation.
    let mut bound_having: Option<shareddb_common::Expr> = None;
    let mut caller_wants_partials = false;
    for (op, activation) in &query.activations {
        if *op == query.root {
            if let Activation::Having { predicate, partial } = activation {
                bound_having = predicate.clone();
                caller_wants_partials = *partial;
            }
        }
    }
    let effective = match &spec.merge {
        MergeSpec::Grouped {
            group_width,
            functions,
            avg_partials,
            having: _,
        } => {
            if caller_wants_partials {
                let mut extended: Vec<AggregateFunction> = functions
                    .iter()
                    .map(|f| match f {
                        AggregateFunction::Avg => AggregateFunction::Sum,
                        other => *other,
                    })
                    .collect();
                let hidden = functions
                    .iter()
                    .filter(|f| **f == AggregateFunction::Avg)
                    .count();
                extended.extend(std::iter::repeat_n(AggregateFunction::Count, hidden));
                MergeSpec::Grouped {
                    group_width: *group_width,
                    functions: extended,
                    avg_partials: false,
                    having: None,
                }
            } else {
                MergeSpec::Grouped {
                    group_width: *group_width,
                    functions: functions.clone(),
                    avg_partials: *avg_partials,
                    having: bound_having,
                }
            }
        }
        other => other.clone(),
    };
    let schema = inner.plan.node(query.root).schema.clone();
    let parts: Vec<crate::engine::ResultSet> = seg_routed
        .iter_mut()
        .map(|routed| ResultSet {
            schema: schema.clone(),
            rows: routed
                .get_mut(&query.root)
                .and_then(|per_query| per_query.remove(&query.query_id))
                .unwrap_or_default(),
        })
        .collect();
    merge_results(&effective, parts).map(|rs| rs.rows)
}

fn finalize_query_result(
    inner: &Arc<EngineInner>,
    query: &ActiveQuery,
    mut rows: Vec<Tuple>,
) -> Result<QueryOutcome> {
    // DISTINCT statements dedup the *projected* rows, and their limit counts
    // deduplicated rows — so the truncate-early fast path only runs for
    // non-distinct statements.
    if !query.distinct {
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    // Computed output columns (expression projections) replace the plain
    // index projection: each result row is the evaluation of the bound
    // expressions over the root row.
    if !query.compute.is_empty() {
        let schema = Schema::new(
            query
                .compute
                .iter()
                .map(|c| shareddb_common::Column::nullable(c.name.clone(), c.data_type))
                .collect(),
        );
        let rows = rows
            .into_iter()
            .map(|r| {
                Ok(Tuple::new(
                    query
                        .compute
                        .iter()
                        .map(|c| c.expr.eval(&r))
                        .collect::<Result<Vec<Value>>>()?,
                ))
            })
            .collect::<Result<Vec<Tuple>>>()?;
        return Ok(QueryOutcome::Rows(ResultSet {
            schema,
            rows: finish_output_rows(query, rows),
        }));
    }
    let root_schema = inner.plan.node(query.root).schema.clone();
    let schema = if query.projection.is_empty() {
        root_schema
    } else {
        root_schema.project(&query.projection)
    };
    if !query.projection.is_empty() {
        rows = rows
            .into_iter()
            .map(|r| r.project(&query.projection))
            .collect();
    }
    Ok(QueryOutcome::Rows(ResultSet {
        schema,
        rows: finish_output_rows(query, rows),
    }))
}

/// Applies the statement's post-projection DISTINCT (keeping the first
/// occurrence, which preserves any ORDER BY) and the deferred limit.
fn finish_output_rows(query: &ActiveQuery, mut rows: Vec<Tuple>) -> Vec<Tuple> {
    if query.distinct {
        let mut seen = std::collections::HashSet::with_capacity(rows.len());
        rows.retain(|row| seen.insert(row.clone()));
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    rows
}

/// Phase context of a completion: everything needed to attribute the
/// batch-wait and execute spans to the right statement type.
struct PhaseCtx {
    statement_index: usize,
    enqueued: Instant,
    batch_started: Instant,
    /// Segment lanes the statement executed on (1 = whole lane).
    segments: u32,
}

fn complete(
    inner: &Arc<EngineInner>,
    ticket: TicketId,
    outcome: Result<QueryOutcome>,
    ctx: Option<PhaseCtx>,
) {
    let pending = inner.pending.lock().remove(&ticket);
    if let Some(pending) = pending {
        // One completion timestamp for every span, so total >= execute and
        // total >= batch_wait hold exactly (two elapsed() calls would let
        // the later-measured span overshoot the earlier one).
        let now = Instant::now();
        let latency = now.duration_since(pending.submitted);
        match &outcome {
            Ok(QueryOutcome::Rows(rs)) => inner.stats.record_query(rs.len(), latency),
            Ok(QueryOutcome::Updated { .. }) => inner.stats.record_update(latency),
            Err(_) => inner.stats.record_failure(),
        }
        if let Some(ctx) = ctx {
            let batch_wait = ctx.batch_started.duration_since(ctx.enqueued);
            let execute = now.duration_since(ctx.batch_started);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::BatchWait, batch_wait);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Execute, execute);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Total, latency);
            if let Some(threshold) = inner.config.slow_query_threshold {
                if latency >= threshold {
                    inner.stats.record_slow(SlowQueryRecord {
                        statement: inner.registry.by_index(ctx.statement_index).name.clone(),
                        // The engine does not know its replica id; the
                        // cluster layer stamps it when concatenating logs.
                        replica: 0,
                        segments: ctx.segments,
                        total: latency,
                        admission: ctx.enqueued.duration_since(pending.submitted),
                        batch_wait,
                        execute,
                    });
                }
            }
        }
        let _ = pending.sender.send(outcome);
        if let Some(waker) = &pending.waker {
            waker();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{
        ActivationTemplate, PlanBuilder, ProbeTemplate, StatementSpec, UpdateTemplate,
    };
    use shareddb_common::agg::AggregateFunction;
    use shareddb_common::{tuple, DataType, Expr, SortKey};
    use shareddb_storage::{IndexDef, TableDef};

    /// Builds a small catalog + plan resembling Figure 2 of the paper:
    /// USERS and ORDERS scans, a shared hash join, a group-by over USERS and
    /// a sort over the join output.
    fn build_engine(config: EngineConfig) -> Engine {
        let catalog = Arc::new(Catalog::new());
        catalog
            .create_table(
                TableDef::new("USERS")
                    .column("USER_ID", DataType::Int)
                    .column("USERNAME", DataType::Text)
                    .column("COUNTRY", DataType::Text)
                    .column("ACCOUNT", DataType::Int)
                    .primary_key(&["USER_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDERS")
                    .column("ORDER_ID", DataType::Int)
                    .column("USER_ID", DataType::Int)
                    .column("STATUS", DataType::Text)
                    .column("TOTAL", DataType::Float)
                    .primary_key(&["ORDER_ID"]),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "USERS_PK".into(),
                table: "USERS".into(),
                column: "USER_ID".into(),
            })
            .unwrap();
        let users: Vec<_> = (0..100i64)
            .map(|i| {
                tuple![
                    i,
                    format!("user{i}"),
                    if i % 2 == 0 { "CH" } else { "DE" },
                    i * 10
                ]
            })
            .collect();
        let orders: Vec<_> = (0..300i64)
            .map(|i| {
                tuple![
                    i,
                    i % 100,
                    if i % 3 == 0 { "OK" } else { "PENDING" },
                    (i % 50) as f64
                ]
            })
            .collect();
        catalog.bulk_load("USERS", users).unwrap();
        catalog.bulk_load("ORDERS", orders).unwrap();

        let mut b = PlanBuilder::new(&catalog);
        let users_scan = b.table_scan("USERS").unwrap();
        let orders_scan = b.table_scan("ORDERS").unwrap();
        let users_probe = b.index_probe("USERS").unwrap();
        let join = b
            .hash_join(users_scan, orders_scan, "USERS.USER_ID", "ORDERS.USER_ID")
            .unwrap();
        let join_sort = b.sort(join, vec![SortKey::asc(4)]).unwrap();
        let gamma = b
            .group_by(
                users_scan,
                vec!["USERS.COUNTRY"],
                vec![(AggregateFunction::Sum, "USERS.ACCOUNT", "SUM_ACCOUNT")],
            )
            .unwrap();
        let top = b.top_n(orders_scan, vec![SortKey::desc(3)]).unwrap();
        let plan = b.build();

        let mut registry = StatementRegistry::new();
        // Q1: SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY
        registry
            .register(
                StatementSpec::query("usersByCountry", gamma)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(gamma, ActivationTemplate::Having { predicate: None }),
            )
            .unwrap();
        // Q2: SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID
        //     AND U.USERNAME = ? AND O.STATUS = 'OK', sorted by order id.
        registry
            .register(
                StatementSpec::query("ordersOfUser", join_sort)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(1).eq(Expr::param(0)),
                        },
                    )
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(2).eq(Expr::lit("OK")),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate)
                    .activate(join_sort, ActivationTemplate::Participate),
            )
            .unwrap();
        // Q3: point look-up of one user through the shared index probe.
        registry
            .register(StatementSpec::query("userById", users_probe).activate(
                users_probe,
                ActivationTemplate::Probe {
                    column: 0,
                    range: ProbeTemplate::Key(Expr::param(0)),
                    residual: None,
                },
            ))
            .unwrap();
        // Q4: top-N most expensive orders.
        registry
            .register(
                StatementSpec::query("topOrders", top)
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(3).gt_eq(Expr::param(0)),
                        },
                    )
                    .activate(top, ActivationTemplate::TopN { limit: 5 }),
            )
            .unwrap();
        // U1: register a new order.
        registry
            .register(StatementSpec::update(
                "addOrder",
                "ORDERS",
                UpdateTemplate::Insert {
                    values: vec![
                        Expr::param(0),
                        Expr::param(1),
                        Expr::lit("OK"),
                        Expr::param(2),
                    ],
                },
            ))
            .unwrap();
        // U2: cancel the orders of one user.
        registry
            .register(StatementSpec::update(
                "cancelOrders",
                "ORDERS",
                UpdateTemplate::Delete {
                    predicate: Expr::col(1).eq(Expr::param(0)),
                },
            ))
            .unwrap();

        Engine::start(catalog, plan, registry, config).unwrap()
    }

    #[test]
    fn group_by_query_end_to_end() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("usersByCountry", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 2);
        // 50 even users (CH) with accounts 0,20,..,980 -> 24500.
        let ch = rows.iter().find(|r| r[0] == Value::text("CH")).unwrap();
        assert_eq!(
            ch[1],
            Value::Int((0..100).filter(|i| i % 2 == 0).map(|i| i * 10).sum())
        );
    }

    #[test]
    fn join_query_with_parameters() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("ordersOfUser", &[Value::text("user7")])
            .unwrap();
        let rows = outcome.rows();
        // User 7 has orders 7, 107, 207; status OK only for multiples of 3 -> 207.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Int(207));
        assert_eq!(rows[0][1], Value::text("user7"));
    }

    #[test]
    fn concurrent_queries_share_one_batch() {
        let engine = build_engine(EngineConfig::default().heartbeat(Duration::from_millis(20)));
        let handles: Vec<_> = (0..50)
            .map(|i| {
                engine
                    .execute("ordersOfUser", &[Value::text(format!("user{}", i % 100))])
                    .unwrap()
            })
            .collect();
        for h in handles {
            let outcome = h.wait().unwrap();
            assert!(outcome.rows().len() <= 3);
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 50);
        // Batching must have grouped many queries into few batches.
        assert!(stats.batches < 50, "batches = {}", stats.batches);
    }

    #[test]
    fn index_probe_point_query() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("userById", &[Value::Int(33)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][1], Value::text("user33"));
    }

    #[test]
    fn attribution_sums_to_operator_busy_exactly() {
        let engine = build_engine(EngineConfig::default().heartbeat(Duration::from_millis(5)));
        // A mixed workload: three query types sharing the USERS/ORDERS scans.
        let mut handles = Vec::new();
        for i in 0..20i64 {
            handles.push(engine.execute("usersByCountry", &[]).unwrap());
            handles.push(
                engine
                    .execute("ordersOfUser", &[Value::text(format!("user{i}"))])
                    .unwrap(),
            );
            handles.push(engine.execute("topOrders", &[Value::Float(0.0)]).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let operators = engine.operator_stats();
        let attribution = engine.attribution_stats();
        // The invariant the whole attribution design hangs on: per operator,
        // the attributed busy times and rows — including the `_idle`
        // residual — sum EXACTLY to the operator's own counters.
        for op in &operators {
            let busy: Duration = attribution
                .iter()
                .filter(|e| e.operator == op.name)
                .map(|e| e.busy)
                .sum();
            assert_eq!(busy, op.busy, "busy mismatch for operator {}", op.name);
            let rows: u64 = attribution
                .iter()
                .filter(|e| e.operator == op.name)
                .map(|e| e.rows)
                .sum();
            assert_eq!(rows, op.tuples_out, "row mismatch for operator {}", op.name);
        }
        // The USERS scan is genuinely shared: at least two statement types
        // recorded activations on it.
        let users_scan = operators
            .iter()
            .find(|o| o.name.starts_with("Scan(USERS)"))
            .unwrap();
        let sharers: Vec<&str> = attribution
            .iter()
            .filter(|e| e.operator == users_scan.name && e.activations > 0)
            .map(|e| e.statement.as_str())
            .collect();
        assert!(
            sharers.len() >= 2,
            "expected a shared scan, got {sharers:?}"
        );
        engine.reset_stats();
        assert!(engine.attribution_stats().is_empty());
    }

    #[test]
    fn top_n_query_respects_limit() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("topOrders", &[Value::Float(0.0)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 5);
        // Descending by TOTAL.
        let totals: Vec<f64> = outcome
            .rows()
            .iter()
            .map(|r| r[3].as_float().unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn updates_and_queries_interleave() {
        let engine = build_engine(EngineConfig::default());
        // Insert a new order for user 1 and then read it back via the join.
        let outcome = engine
            .execute_sync(
                "addOrder",
                &[Value::Int(10_000), Value::Int(1), Value::Float(99.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().iter().any(|r| r[4] == Value::Int(10_000)));
        // Delete the user's orders and observe the effect.
        let outcome = engine
            .execute_sync("cancelOrders", &[Value::Int(1)])
            .unwrap();
        assert!(outcome.rows_affected() >= 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().is_empty());
    }

    #[test]
    fn unknown_statement_and_missing_params_fail_fast() {
        let engine = build_engine(EngineConfig::default());
        assert!(matches!(
            engine.execute("noSuchStatement", &[]),
            Err(Error::UnknownStatement(_))
        ));
        assert!(matches!(
            engine.execute("ordersOfUser", &[]),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn core_budget_one_still_completes() {
        let engine = build_engine(EngineConfig::with_cores(1));
        let handles: Vec<_> = (0..10)
            .map(|_| engine.execute("usersByCountry", &[]).unwrap())
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().rows().len(), 2);
        }
    }

    #[test]
    fn shutdown_fails_pending_work() {
        let mut engine = build_engine(EngineConfig::default());
        engine.shutdown();
        assert!(matches!(
            engine.execute("usersByCountry", &[]),
            Err(Error::EngineShutdown)
        ));
    }

    #[test]
    fn operator_stats_are_recorded() {
        let engine = build_engine(EngineConfig::default());
        engine.execute_sync("usersByCountry", &[]).unwrap();
        let stats = engine.operator_stats();
        assert_eq!(stats.len(), engine.plan().len());
        // The USERS scan must have processed at least one active cycle.
        let users_scan = stats
            .iter()
            .find(|s| s.name.starts_with("Scan(USERS)"))
            .unwrap();
        assert!(users_scan.active_cycles >= 1);
        assert!(users_scan.tuples_out >= 100);
    }

    #[test]
    fn scan_segments_zero_is_rejected() {
        let engine = build_engine(EngineConfig::default());
        let catalog = engine.catalog();
        let plan = engine.plan().clone();
        let registry = StatementRegistry::new();
        assert!(matches!(
            Engine::start(
                catalog,
                plan,
                registry,
                EngineConfig::default().scan_segments(0),
            ),
            Err(Error::InvalidParameter(_))
        ));
    }

    /// 1-segment vs N-segment result equality over every statement shape of
    /// the fixture: group-by (partial-aggregate merge), parameterised join →
    /// sort (ordered merge over co-partitioned scans), Top-N (ordered merge)
    /// and the probe-rooted point query (not eligible — whole lane).
    #[test]
    fn segmented_results_match_single_segment() {
        let baseline = build_engine(EngineConfig::default());
        let segmented = build_engine(EngineConfig::default().scan_segments(4));
        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("usersByCountry", vec![]),
            ("ordersOfUser", vec![Value::text("user7")]),
            ("ordersOfUser", vec![Value::text("user42")]),
            ("topOrders", vec![Value::Float(0.0)]),
            ("userById", vec![Value::Int(33)]),
        ];
        for (statement, params) in &cases {
            let want = baseline.execute_sync(statement, params).unwrap();
            let got = segmented.execute_sync(statement, params).unwrap();
            if *statement == "topOrders" {
                // The fixture's totals are full of ties, so WHICH tied rows
                // make the top 5 is unspecified (same as cluster fanout);
                // the ordering-key values must match exactly.
                let totals = |o: &QueryOutcome| -> Vec<Value> {
                    o.rows().iter().map(|r| r[3].clone()).collect()
                };
                assert_eq!(totals(&want), totals(&got), "topOrders keys diverged");
                continue;
            }
            let mut want_rows = want.rows().to_vec();
            let mut got_rows = got.rows().to_vec();
            // Grouped results have no guaranteed group order; ordered shapes
            // are already deterministic, so sorting is harmless there.
            want_rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            got_rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            assert_eq!(want_rows, got_rows, "statement {statement} diverged");
        }
        // The segment lane actually ran: every segment recorded work for the
        // eligible statements.
        let seg_stats = segmented.segment_stats();
        assert_eq!(seg_stats.len(), 4);
        for s in &seg_stats {
            assert!(s.batches >= 1, "segment {} never executed", s.segment);
        }
        assert!(baseline.segment_stats().is_empty());
    }

    /// Satellite regression: with N segments executing one batch
    /// concurrently, per-operator busy must not be the sum over segment
    /// lanes — the busy fraction of a scan must stay <= 1 relative to the
    /// engine's wall clock even at high segment counts.
    #[test]
    fn segment_busy_is_not_double_counted() {
        let engine = build_engine(EngineConfig::default().scan_segments(8));
        for _ in 0..5 {
            engine.execute_sync("usersByCountry", &[]).unwrap();
        }
        let wall = engine.stats_wall();
        for op in engine.operator_stats() {
            let fraction = op.busy_fraction(wall);
            assert!(
                fraction <= 1.0,
                "operator {} reports busy fraction {fraction} > 1",
                op.name
            );
        }
        // One logical execution per call: per-segment partial rows must not
        // inflate the delivered result-row count.
        assert_eq!(engine.stats().result_rows, 10);
    }

    /// Updates stay unsegmented and group-committed: a delete submitted
    /// between segmented reads is observed atomically by the next batch.
    #[test]
    fn segmented_reads_observe_unsegmented_updates() {
        let engine = build_engine(EngineConfig::default().scan_segments(3));
        engine
            .execute_sync(
                "addOrder",
                &[Value::Int(10_000), Value::Int(1), Value::Float(99.0)],
            )
            .unwrap();
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().iter().any(|r| r[4] == Value::Int(10_000)));
        engine
            .execute_sync("cancelOrders", &[Value::Int(1)])
            .unwrap();
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().is_empty());
    }

    #[test]
    fn wait_timeout_reports_deadline() {
        let engine = build_engine(EngineConfig::default());
        // A timeout of zero cannot be met.
        let handle = engine.execute("usersByCountry", &[]).unwrap();
        match handle.wait_timeout(Duration::from_nanos(1)) {
            Err(Error::DeadlineExceeded) | Ok(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

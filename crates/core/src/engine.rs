//! The batched, push-based SharedDB runtime.
//!
//! The engine owns:
//!
//! * one **operator thread per plan node** (Section 4.3: "all database
//!   operators are executed in a separate hardware context"),
//! * an **admission queue** where freshly submitted queries and updates wait
//!   while the current batch is processed (Section 3.2),
//! * a **coordinator thread** that drains the admission queue at every
//!   heartbeat, forms a [`QueryBatch`], wires per-batch data channels between
//!   the operator threads, applies the batch's updates (group commit), routes
//!   the roots' outputs back to the waiting clients (the Γ(query_id) step) and
//!   records statistics,
//! * with `EngineConfig::scan_segments > 1`, a **segment worker pool**: the
//!   coordinator splits each batch into a *whole lane* (the operator threads,
//!   as above) and a *segment lane* — queries whose statement shape has a
//!   [`crate::scatter::ScatterSpec`] are rewritten into one activation set per
//!   row segment, each segment executes the plan on a pool worker, and the
//!   partial results recombine through [`crate::merge::merge_results`] before
//!   routing. Updates are never segmented (single-writer group commit), and
//!   every segment of a batch reads the batch's one snapshot.
//!
//! Clients interact through [`Engine::execute`] (asynchronous, returns a
//! [`QueryHandle`]) or [`Engine::execute_sync`].

use crate::batch::{bind_query, bind_update, Activation, ActiveQuery, ActiveUpdate, QueryBatch};
use crate::budget::CoreBudget;
use crate::config::{EngineConfig, HeartbeatPolicy};
use crate::merge::{merge_results, MergeSpec};
use crate::operators::{execute_operator, ExecContext};
use crate::plan::{GlobalPlan, OperatorId, OperatorSpec, StatementKind, StatementRegistry};
use crate::scatter::{scatter_spec, ScatterSpec};
use crate::stats::{
    AttributionEntry, AttributionTable, EngineStats, EngineStatsSnapshot, OperatorStats,
    OperatorStatsSnapshot, Phase, SegmentStats, SegmentStatsSnapshot, SlowQueryRecord,
    StatementPhaseSnapshot,
};
use crate::storage_ops::{build_storage_operators, StorageOperator};
use crate::trace::{TraceEvent, TraceJournal, TraceRecord};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::ids::{BatchId, QueryIdGenerator, TicketGenerator, TicketId};
use shareddb_common::metrics::HistogramSnapshot;
use shareddb_common::{Error, QTuple, QueryId, Result, Schema, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::Catalog;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The rows produced for one query.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Schema of the rows (after projection).
    pub schema: Schema,
    /// The result rows, in the order produced by the query's root operator.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Outcome of one statement execution.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A query returning rows.
    Rows(ResultSet),
    /// An update reporting its affected row count.
    Updated {
        /// Number of rows inserted / modified / deleted.
        rows_affected: usize,
    },
}

impl QueryOutcome {
    /// Convenience accessor: the rows of a query outcome (empty for updates).
    pub fn rows(&self) -> &[Tuple] {
        match self {
            QueryOutcome::Rows(rs) => &rs.rows,
            QueryOutcome::Updated { .. } => &[],
        }
    }

    /// Convenience accessor: rows affected by an update (0 for queries).
    pub fn rows_affected(&self) -> usize {
        match self {
            QueryOutcome::Rows(_) => 0,
            QueryOutcome::Updated { rows_affected } => *rows_affected,
        }
    }
}

/// Handle to a submitted statement execution.
#[derive(Debug)]
pub struct QueryHandle {
    ticket: TicketId,
    receiver: Receiver<Result<QueryOutcome>>,
    submitted: Instant,
}

impl QueryHandle {
    /// The ticket identifying this execution.
    pub fn ticket(&self) -> TicketId {
        self.ticket
    }

    /// Time since submission.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// Blocks until the result is available.
    pub fn wait(self) -> Result<QueryOutcome> {
        self.receiver.recv().map_err(|_| Error::EngineShutdown)?
    }

    /// Non-blocking poll: `None` while the statement is still in flight,
    /// `Some(outcome)` exactly once when it completes. Event-driven callers
    /// (the network reactor) pair this with
    /// [`SubmitOptions::completion_waker`] instead of parking a thread in
    /// [`QueryHandle::wait`].
    pub fn try_wait(&self) -> Option<Result<QueryOutcome>> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(outcome),
            // Every handle is delivered exactly one message before its sender
            // is dropped (the outcome, or the failure injected on engine
            // shutdown), so `Disconnected` only means the outcome was already
            // consumed by an earlier call — keep the "exactly once" contract
            // rather than surfacing a spurious shutdown error.
            Err(crossbeam_channel::TryRecvError::Empty)
            | Err(crossbeam_channel::TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the result is available or the deadline passes.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryOutcome> {
        match self.receiver.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(Error::DeadlineExceeded),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(Error::EngineShutdown),
        }
    }
}

// ---------------------------------------------------------------------------
// Internal messages
// ---------------------------------------------------------------------------

type TaskData = Arc<Vec<QTuple>>;

/// Γ routing table of one lane: root operator → query → that query's rows.
type RoutingTable = HashMap<OperatorId, HashMap<QueryId, Vec<Tuple>>>;

struct OperatorTask {
    activations: Vec<(QueryId, Activation)>,
    inputs: Vec<Receiver<TaskData>>,
    outputs: Vec<Sender<TaskData>>,
    collector: Option<Sender<(OperatorId, TaskData)>>,
    done: Sender<OperatorDone>,
    snapshot: Snapshot,
}

struct OperatorDone {
    id: OperatorId,
    result: Result<usize>,
    busy: Duration,
    had_queries: bool,
}

enum OperatorMessage {
    Task(Box<OperatorTask>),
    Shutdown,
}

/// One segment lane of one batch: the full plan, restricted to the
/// segment-eligible queries, over one row segment `(segment, of)`. A pool
/// worker executes the plan nodes **sequentially in id order** (plan ids are
/// topological), materialising each node's output for its consumers — no
/// per-segment channel mesh, no cross-segment synchronisation until the
/// coordinator's merge barrier.
struct SegmentJob {
    segment: u32,
    /// Bound activations per plan node (indexed by operator id); nodes with
    /// no activations are skipped.
    activations: Vec<Vec<(QueryId, Activation)>>,
    /// Root operators whose output the coordinator needs for merging.
    collect: Vec<bool>,
    snapshot: Snapshot,
    done: Sender<SegmentDone>,
}

struct SegmentDone {
    segment: u32,
    /// `(tuples_out, busy)` per executed plan node (`None` = not executed in
    /// this lane). Feeds the per-operator counters without double-counting:
    /// the coordinator folds lanes with max-busy / summed-tuples.
    node_stats: Vec<Option<(usize, Duration)>>,
    /// Root outputs by operator id, or the first node failure.
    outputs: Result<HashMap<OperatorId, Vec<QTuple>>>,
    /// Wall-clock duration of the whole segment job.
    busy: Duration,
}

enum Submission {
    Query(ActiveQuery),
    Update(ActiveUpdate),
}

impl Submission {
    fn statement_index(&self) -> usize {
        match self {
            Submission::Query(q) => q.statement_index,
            Submission::Update(u) => u.statement_index,
        }
    }
}

struct PendingResult {
    sender: Sender<Result<QueryOutcome>>,
    submitted: Instant,
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Admission lane of a statement type (see [`Engine::statement_lane`]).
///
/// The classification falls out of the plan shape: a query whose activations
/// touch only index probes and filters is a point lookup (*light*); anything
/// driving a table scan, join, sort, top-N, group-by, distinct or union is
/// *heavy*. Updates always ride the light lane — they are group-commit
/// appends whose latency gates read-your-writes fences, and keeping every
/// update in one lane preserves their arrival order within a batch (Phase 1
/// applies updates in batch order). [`EngineConfig::light_statements`] /
/// [`EngineConfig::heavy_statements`] override the classification for query
/// statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Latency-critical: point lookups and updates.
    Light,
    /// Throughput-bound: scans, joins, aggregates.
    Heavy,
}

impl Lane {
    /// Prometheus-friendly label value.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Light => "light",
            Lane::Heavy => "heavy",
        }
    }
}

fn classify_statement(
    spec: &crate::plan::StatementSpec,
    plan: &GlobalPlan,
    config: &EngineConfig,
) -> Lane {
    if matches!(spec.kind, StatementKind::Update { .. }) {
        return Lane::Light;
    }
    if config.heavy_statements.iter().any(|n| n == &spec.name) {
        return Lane::Heavy;
    }
    if config.light_statements.iter().any(|n| n == &spec.name) {
        return Lane::Light;
    }
    let probe_only = spec.activations.iter().all(|(op, _)| {
        matches!(
            plan.node(*op).spec,
            OperatorSpec::IndexProbe { .. } | OperatorSpec::Filter
        )
    });
    if probe_only {
        Lane::Light
    } else {
        Lane::Heavy
    }
}

/// A session's last-write fence, the carrier of read-your-writes guarantees
/// across engine replicas.
///
/// The submitter of an update attaches a fresh fence via
/// [`SubmitOptions::write_fence`]; the engine resolves it to the committed
/// MVCC watermark once the update's batch has group-committed (or failed —
/// a failed write constrains no read). A later read in the same session
/// carries the fence as [`SubmitOptions::read_after`]: any replica's
/// coordinator holds the read out of its batch until the shared committed
/// watermark covers the write, so a pipelined UPDATE → SELECT pair observes
/// the write no matter which replica serves the read.
#[derive(Debug, Default)]
pub struct WriteFence {
    /// Committed watermark covering the write, stored off by one so `0` can
    /// mean "not yet resolved" even when the watermark itself is 0 (a write
    /// that failed before anything ever committed constrains no read).
    ts_plus_one: AtomicU64,
}

impl WriteFence {
    /// An unresolved fence.
    pub fn new() -> WriteFence {
        WriteFence::default()
    }

    /// Marks the fence resolved at `ts` (the committed watermark covering
    /// the write). Monotonic; resolving twice keeps the larger watermark.
    pub fn resolve(&self, ts: u64) {
        self.ts_plus_one
            .fetch_max(ts.saturating_add(1), Ordering::Release);
    }

    /// The committed watermark covering the write, once resolved.
    pub fn committed_ts(&self) -> Option<u64> {
        match self.ts_plus_one.load(Ordering::Acquire) {
            0 => None,
            v => Some(v - 1),
        }
    }
}

/// Options for [`Engine::submit`].
#[derive(Clone, Default)]
pub struct SubmitOptions {
    /// Reject the submission with [`Error::Overloaded`] when the admission
    /// queue already holds this many statements. The check and the enqueue
    /// happen under the queue lock, so the bound is exact even with many
    /// concurrent submitters (no check-then-enqueue TOCTOU).
    pub max_queue_depth: Option<usize>,
    /// Invoked after the statement's outcome has been delivered to its
    /// [`QueryHandle`] (including the failure delivered on engine shutdown).
    /// Lets a nonblocking caller poll [`QueryHandle::try_wait`] only when
    /// woken instead of parking a thread per statement.
    pub completion_waker: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Restrict every shared-scan activation of this query to one horizontal
    /// partition `(index, of)` of its table: a row participates iff
    /// `tuple_partition(row, hash_columns, of) == index`. This is the
    /// replica-aware hook the cluster layer uses to fan one logical query out
    /// over N engine replicas (paper §4.5) and merge the partial results; a
    /// plain engine caller leaves it `None`.
    pub scan_partition: Option<(u32, u32)>,
    /// Per-scan-operator override of the columns hashed by the partition
    /// function (operator id → column indices into that scan's table schema).
    /// Scans not listed hash the table's primary key. The cluster layer uses
    /// this to co-partition the build and probe sides of a fanned-out
    /// equi-join by the join key, so rows that join always land in the same
    /// partition.
    pub partition_columns: Option<Arc<std::collections::HashMap<OperatorId, Vec<usize>>>>,
    /// Pin every storage read (shared scan / index probe) of this query to a
    /// fixed MVCC snapshot instead of the executing batch's own snapshot.
    /// The cluster layer captures one [`Catalog::snapshot`] per fanned-out
    /// execution and pins all partitions to it, so one logical query reads
    /// one version set even while its partitions run in different batches on
    /// different replicas under concurrent writes.
    pub pinned_snapshot: Option<Snapshot>,
    /// Ship partition-mergeable partial aggregates instead of final values:
    /// a shared group-by emits, for every AVG aggregate of this query, the
    /// partial sum in the AVG column plus a trailing hidden count column.
    /// Set by the cluster layer for fanned-out group-by roots (the merge
    /// step recombines sum/count and drops the hidden columns); meaningless
    /// without a merge step consuming the partials.
    pub partial_aggregation: bool,
    /// For updates: the session fence the engine resolves once this write's
    /// batch has group-committed. The submitter keeps the [`Arc`] and
    /// threads it into later reads of the same session as
    /// [`SubmitOptions::read_after`].
    pub write_fence: Option<Arc<WriteFence>>,
    /// For queries: hold this read out of any batch until the session's last
    /// write (the fence) is covered by the committed MVCC watermark — the
    /// read-your-writes session guarantee. A read whose write rides in the
    /// same batch is admitted directly (updates commit in Phase 1, before
    /// the batch's snapshot is taken).
    pub read_after: Option<Arc<WriteFence>>,
}

/// The two admission lanes. One mutex guards both, so the queue-depth bound
/// spans the lanes exactly and a drain sees one consistent picture.
#[derive(Default)]
struct Lanes {
    light: VecDeque<Submission>,
    heavy: VecDeque<Submission>,
}

impl Lanes {
    fn len(&self) -> usize {
        self.light.len() + self.heavy.len()
    }

    fn is_empty(&self) -> bool {
        self.light.is_empty() && self.heavy.is_empty()
    }
}

struct Admission {
    queue: Mutex<Lanes>,
    signal: Condvar,
}

struct EngineInner {
    catalog: Arc<Catalog>,
    plan: GlobalPlan,
    registry: StatementRegistry,
    config: EngineConfig,
    admission: Admission,
    /// Admission lane per statement (registry index), precomputed at start.
    lanes: Vec<Lane>,
    /// Statement indices currently classified light — the set whose merged
    /// `Total`-phase histogram the adaptive controller reads its p99 from.
    light_indices: Vec<usize>,
    /// Heartbeat interval currently in effect, µs: the adaptive controller's
    /// latest decision, or the configured constant under a fixed policy.
    heartbeat_us: AtomicU64,
    /// Number of interval changes the adaptive controller has made.
    heartbeat_adjustments: AtomicU64,
    pending: Mutex<HashMap<TicketId, PendingResult>>,
    query_ids: QueryIdGenerator,
    tickets: TicketGenerator,
    shutdown: AtomicBool,
    stats: EngineStats,
    /// Start of the current statistics window (engine start, or the last
    /// [`Engine::reset_stats`]); the wall clock for busy-fraction numbers.
    stats_epoch: Mutex<Instant>,
    operator_stats: Vec<OperatorStats>,
    /// Per-operator × per-statement-type cost attribution, recorded alongside
    /// `operator_stats` from the same folded per-batch numbers (so attributed
    /// busy times sum exactly to the per-operator busy counters).
    attribution: AttributionTable,
    operator_senders: Vec<Sender<OperatorMessage>>,
    trace: TraceJournal,
    /// Per-statement partitionability analysis, precomputed at start; `None`
    /// for updates and shapes the walker does not recognise. Only populated
    /// when `config.scan_segments > 1`.
    scatter_specs: Vec<Option<ScatterSpec>>,
    /// Job channel of the segment worker pool (`None` when segmenting is
    /// off); taken and dropped on shutdown to disconnect the workers.
    segment_jobs: Mutex<Option<Sender<SegmentJob>>>,
    /// One counter slot per segment lane (empty when segmenting is off).
    segment_stats: Vec<SegmentStats>,
}

/// The SharedDB engine: an always-on global plan plus the batching runtime.
pub struct Engine {
    inner: Arc<EngineInner>,
    coordinator: Option<JoinHandle<()>>,
    operators: Vec<JoinHandle<()>>,
    segment_workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts the engine: spawns one thread per plan operator plus the
    /// coordinator thread.
    pub fn start(
        catalog: Arc<Catalog>,
        plan: GlobalPlan,
        registry: StatementRegistry,
        config: EngineConfig,
    ) -> Result<Engine> {
        registry.validate(&plan)?;
        if config.scan_segments == 0 {
            return Err(Error::InvalidParameter(
                "scan_segments must be >= 1 (1 disables segment parallelism)".into(),
            ));
        }
        let storage_ops = Arc::new(build_storage_operators(&catalog, &plan)?);
        let budget = CoreBudget::new(config.core_budget);

        // Which statement shapes may run segment-parallel, and how their
        // partial results recombine. The analysis is per statement type, so
        // it runs once here instead of per submission.
        let scatter_specs: Vec<Option<ScatterSpec>> = if config.scan_segments > 1 {
            registry
                .iter()
                .map(|s| scatter_spec(&catalog, &plan, s))
                .collect()
        } else {
            registry.iter().map(|_| None).collect()
        };

        let mut operator_senders = Vec::with_capacity(plan.len());
        let mut operator_receivers = Vec::with_capacity(plan.len());
        for _ in 0..plan.len() {
            let (tx, rx) = unbounded::<OperatorMessage>();
            operator_senders.push(tx);
            operator_receivers.push(rx);
        }

        // Segment worker pool: one worker per segment lane, all draining one
        // shared job channel, so a batch's N segment jobs run concurrently.
        let mut segment_workers = Vec::new();
        let segment_jobs = if config.scan_segments > 1 {
            let (tx, rx) = unbounded::<SegmentJob>();
            for i in 0..config.scan_segments {
                let rx = rx.clone();
                let plan = plan.clone();
                let storage_ops = Arc::clone(&storage_ops);
                let catalog = Arc::clone(&catalog);
                let budget = budget.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shareddb-seg-{i}"))
                    .spawn(move || segment_worker_loop(rx, plan, storage_ops, catalog, budget))
                    .map_err(|e| Error::Internal(format!("failed to spawn segment worker: {e}")))?;
                segment_workers.push(handle);
            }
            Some(tx)
        } else {
            None
        };
        let segment_stats: Vec<SegmentStats> = if config.scan_segments > 1 {
            (0..config.scan_segments)
                .map(|_| SegmentStats::default())
                .collect()
        } else {
            Vec::new()
        };

        let statement_names: Vec<String> = registry.iter().map(|s| s.name.clone()).collect();
        let trace = TraceJournal::new(config.trace_capacity);
        // Lane classification is per statement type, precomputed once.
        let lanes: Vec<Lane> = registry
            .iter()
            .map(|s| classify_statement(s, &plan, &config))
            .collect();
        let light_indices: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Lane::Light)
            .map(|(i, _)| i)
            .collect();
        let initial_heartbeat_us = config.heartbeat.initial_interval().as_micros() as u64;
        let inner = Arc::new(EngineInner {
            catalog: Arc::clone(&catalog),
            plan: plan.clone(),
            registry,
            config,
            admission: Admission {
                queue: Mutex::new(Lanes::default()),
                signal: Condvar::new(),
            },
            lanes,
            light_indices,
            heartbeat_us: AtomicU64::new(initial_heartbeat_us),
            heartbeat_adjustments: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            query_ids: QueryIdGenerator::new(),
            tickets: TicketGenerator::new(),
            shutdown: AtomicBool::new(false),
            stats: EngineStats::with_statements(statement_names.clone()),
            stats_epoch: Mutex::new(Instant::now()),
            operator_stats: (0..plan.len()).map(|_| OperatorStats::default()).collect(),
            attribution: AttributionTable::new(
                plan.nodes().iter().map(|n| n.name.clone()).collect(),
                statement_names,
            ),
            operator_senders,
            trace,
            scatter_specs,
            segment_jobs: Mutex::new(segment_jobs),
            segment_stats,
        });

        // Operator threads.
        let mut operators = Vec::with_capacity(plan.len());
        for (node, rx) in plan.nodes().iter().zip(operator_receivers) {
            let node = node.clone();
            let storage_ops = Arc::clone(&storage_ops);
            let catalog = Arc::clone(&catalog);
            let budget = budget.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shareddb-op-{}", node.name))
                .spawn(move || operator_loop(node.id, node, rx, storage_ops, catalog, budget))
                .map_err(|e| Error::Internal(format!("failed to spawn operator thread: {e}")))?;
            operators.push(handle);
        }

        // Coordinator thread.
        let coordinator_inner = Arc::clone(&inner);
        let coordinator = std::thread::Builder::new()
            .name("shareddb-coordinator".to_string())
            .spawn(move || coordinator_loop(coordinator_inner))
            .map_err(|e| Error::Internal(format!("failed to spawn coordinator: {e}")))?;

        Ok(Engine {
            inner,
            coordinator: Some(coordinator),
            operators,
            segment_workers,
        })
    }

    /// The catalog the engine runs on.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.inner.catalog)
    }

    /// The global plan.
    pub fn plan(&self) -> &GlobalPlan {
        &self.inner.plan
    }

    /// The statement registry the engine executes from.
    pub fn registry(&self) -> &StatementRegistry {
        &self.inner.registry
    }

    /// Submits a statement execution; returns a handle to wait on.
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<QueryHandle> {
        self.submit(statement, params, SubmitOptions::default())
    }

    /// Submits a statement execution with admission options; returns a handle
    /// to wait on (or poll via [`QueryHandle::try_wait`]).
    pub fn submit(
        &self,
        statement: &str,
        params: &[Value],
        opts: SubmitOptions,
    ) -> Result<QueryHandle> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::EngineShutdown);
        }
        // The admission phase spans binding, pending registration and the
        // queue push — everything between the caller's submit call and the
        // statement waiting for its heartbeat.
        let submitted = Instant::now();
        let (index, spec) = self.inner.registry.get(statement)?;
        let ticket = self.inner.tickets.next_id();
        let submission = if spec.is_update() {
            let mut update = bind_update(spec, index, ticket, params)?;
            update.write_fence = opts.write_fence.clone();
            Submission::Update(update)
        } else {
            let query_id = self.inner.query_ids.next_id();
            let mut query = bind_query(spec, index, query_id, ticket, params, &opts)?;
            // Segment eligibility mirrors the cluster fanout gate: the shape
            // must have a scatter spec, and parameterised executions qualify
            // only when the shape scatters with parameters.
            if let Some(scatter) = &self.inner.scatter_specs[index] {
                query.segment_ok = params.is_empty() || scatter.scatter_with_params;
            }
            Submission::Query(query)
        };
        let (tx, rx) = unbounded();
        self.inner.pending.lock().insert(
            ticket,
            PendingResult {
                sender: tx,
                submitted,
                waker: opts.completion_waker,
            },
        );
        {
            let mut queue = self.inner.admission.queue.lock();
            // The depth bound spans BOTH lanes, checked and enqueued under
            // the one queue lock — adding lanes must not soften the exact
            // admission bound.
            if let Some(max) = opts.max_queue_depth {
                if queue.len() >= max {
                    drop(queue);
                    self.inner.pending.lock().remove(&ticket);
                    return Err(Error::Overloaded(format!(
                        "admission queue depth limit of {max} reached"
                    )));
                }
            }
            match self.inner.lanes.get(index).copied().unwrap_or(Lane::Heavy) {
                Lane::Light => queue.light.push_back(submission),
                Lane::Heavy => queue.heavy.push_back(submission),
            }
        }
        self.inner.admission.signal.notify_one();
        self.inner
            .stats
            .record_phase(index, Phase::Admission, submitted.elapsed());
        Ok(QueryHandle {
            ticket,
            receiver: rx,
            submitted,
        })
    }

    /// Submits a statement and blocks until its result is available.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<QueryOutcome> {
        self.execute(statement, params)?.wait()
    }

    /// Engine-level statistics.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Per-operator statistics.
    pub fn operator_stats(&self) -> Vec<OperatorStatsSnapshot> {
        self.inner
            .plan
            .nodes()
            .iter()
            .map(|n| self.inner.operator_stats[n.id].snapshot(&n.name))
            .collect()
    }

    /// Per-operator × per-statement-type cost attribution: for every
    /// operator, who (which statement type) the busy time and output rows
    /// were spent on, split by each batch's activation mix. The entries for
    /// one operator — including the `_idle` residual — sum exactly to that
    /// operator's totals in [`Engine::operator_stats`].
    pub fn attribution_stats(&self) -> Vec<AttributionEntry> {
        self.inner.attribution.snapshot()
    }

    /// Per-segment-lane statistics (empty when `scan_segments <= 1`): busy
    /// time, contributed rows and the per-batch execute-time histogram of
    /// each segment of the intra-engine parallel scan path.
    pub fn segment_stats(&self) -> Vec<SegmentStatsSnapshot> {
        self.inner
            .segment_stats
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Per-statement-type, per-phase latency histograms.
    pub fn phase_snapshot(&self) -> Vec<StatementPhaseSnapshot> {
        self.inner.stats.phase_snapshot()
    }

    /// Total slow-query offenders plus the retained tail of the log.
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        self.inner.stats.slow_queries()
    }

    /// The retained batch-lifecycle trace, oldest first.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.inner.trace.snapshot()
    }

    /// Wall-clock length of the current statistics window (time since engine
    /// start or the last [`Engine::reset_stats`]); the denominator for
    /// per-operator busy fractions.
    pub fn stats_wall(&self) -> Duration {
        self.inner.stats_epoch.lock().elapsed()
    }

    /// Zeroes the engine-level statistics, phase histograms, slow-query log
    /// and per-operator counters, and restarts the busy-fraction wall clock.
    /// Bench harnesses call this after warm-up so reported numbers cover only
    /// the measured window.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
        for op in &self.inner.operator_stats {
            op.reset();
        }
        self.inner.attribution.reset();
        for seg in &self.inner.segment_stats {
            seg.reset();
        }
        *self.inner.stats_epoch.lock() = Instant::now();
    }

    /// Number of statements queued but not yet admitted into a batch
    /// (both lanes).
    pub fn queued(&self) -> usize {
        self.inner.admission.queue.lock().len()
    }

    /// Depth of the two admission lanes as `(light, heavy)`.
    pub fn lane_depths(&self) -> (usize, usize) {
        let queue = self.inner.admission.queue.lock();
        (queue.light.len(), queue.heavy.len())
    }

    /// The admission lane the statement at registry `index` is classified
    /// into (point lookups and updates light, scans/joins/aggregates heavy,
    /// overridable via [`EngineConfig::light_statements`] /
    /// [`EngineConfig::heavy_statements`]).
    pub fn statement_lane(&self, index: usize) -> Lane {
        self.inner.lanes.get(index).copied().unwrap_or(Lane::Heavy)
    }

    /// The heartbeat interval currently in effect: the configured constant
    /// under a fixed policy, or the adaptive controller's latest decision.
    pub fn heartbeat_interval(&self) -> Duration {
        Duration::from_micros(self.inner.heartbeat_us.load(Ordering::Relaxed))
    }

    /// Number of interval changes the adaptive heartbeat controller has made
    /// (0 under a fixed policy).
    pub fn heartbeat_adjustments(&self) -> u64 {
        self.inner.heartbeat_adjustments.load(Ordering::Relaxed)
    }

    /// Stops the engine: drains nothing further, fails queued work with
    /// [`Error::EngineShutdown`] and joins all threads.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.admission.signal.notify_all();
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        // Disconnect the segment pool's job channel after the coordinator is
        // gone (it is the only sender of jobs); the workers' recv fails and
        // they exit.
        drop(self.inner.segment_jobs.lock().take());
        for handle in self.segment_workers.drain(..) {
            let _ = handle.join();
        }
        for sender in &self.inner.operator_senders {
            let _ = sender.send(OperatorMessage::Shutdown);
        }
        for handle in self.operators.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Operator threads
// ---------------------------------------------------------------------------

fn operator_loop(
    id: OperatorId,
    node: crate::plan::OperatorNode,
    receiver: Receiver<OperatorMessage>,
    storage_ops: Arc<Vec<Option<StorageOperator>>>,
    catalog: Arc<Catalog>,
    budget: CoreBudget,
) {
    while let Ok(message) = receiver.recv() {
        let task = match message {
            OperatorMessage::Task(task) => task,
            OperatorMessage::Shutdown => break,
        };
        // Gather the inputs of this batch first (waiting does not consume a
        // core), then acquire a core permit for the actual processing.
        let mut inputs: Vec<Vec<QTuple>> = Vec::with_capacity(task.inputs.len());
        let mut input_failed = false;
        for rx in &task.inputs {
            match rx.recv() {
                Ok(data) => inputs.push(data.as_ref().clone()),
                Err(_) => {
                    // The producer failed; propagate an empty input. The
                    // producer's error is reported through its own done
                    // message and fails the batch at the coordinator.
                    inputs.push(Vec::new());
                    input_failed = true;
                }
            }
        }

        let had_queries = !task.activations.is_empty();
        let permit = budget.acquire();
        let started = Instant::now();
        let result: Result<Vec<QTuple>> = if input_failed {
            Ok(Vec::new())
        } else if let Some(storage) = &storage_ops[id] {
            storage.execute(&task.activations)
        } else {
            let ctx = ExecContext {
                catalog: &catalog,
                snapshot: task.snapshot,
            };
            execute_operator(&node.spec, &task.activations, inputs, &ctx)
        };
        let busy = started.elapsed();
        drop(permit);

        match result {
            Ok(tuples) => {
                let count = tuples.len();
                let data: TaskData = Arc::new(tuples);
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Ok(count),
                    busy,
                    had_queries,
                });
            }
            Err(e) => {
                // Emit empty outputs so downstream operators do not hang, then
                // report the failure.
                let data: TaskData = Arc::new(Vec::new());
                for out in &task.outputs {
                    let _ = out.send(Arc::clone(&data));
                }
                if let Some(collector) = &task.collector {
                    let _ = collector.send((id, Arc::clone(&data)));
                }
                let _ = task.done.send(OperatorDone {
                    id,
                    result: Err(e),
                    busy,
                    had_queries,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Segment workers
// ---------------------------------------------------------------------------

/// One pool worker of the segment-parallel scan path: executes whole-plan
/// segment jobs, one at a time, holding one core-budget permit per job. Plan
/// node ids are assigned in topological order, so a single forward pass with
/// materialised per-node outputs respects every producer/consumer edge.
fn segment_worker_loop(
    jobs: Receiver<SegmentJob>,
    plan: GlobalPlan,
    storage_ops: Arc<Vec<Option<StorageOperator>>>,
    catalog: Arc<Catalog>,
    budget: CoreBudget,
) {
    while let Ok(job) = jobs.recv() {
        let permit = budget.acquire();
        let started = Instant::now();
        let mut outputs: Vec<Vec<QTuple>> = vec![Vec::new(); plan.len()];
        let mut node_stats: Vec<Option<(usize, Duration)>> = vec![None; plan.len()];
        let mut failure: Option<Error> = None;
        for node in plan.nodes() {
            let activations = &job.activations[node.id];
            if activations.is_empty() {
                continue;
            }
            let node_started = Instant::now();
            let result = if let Some(storage) = &storage_ops[node.id] {
                storage.execute(activations)
            } else {
                let inputs: Vec<Vec<QTuple>> =
                    node.inputs.iter().map(|i| outputs[*i].clone()).collect();
                let ctx = ExecContext {
                    catalog: &catalog,
                    snapshot: job.snapshot,
                };
                execute_operator(&node.spec, activations, inputs, &ctx)
            };
            match result {
                Ok(tuples) => {
                    node_stats[node.id] = Some((tuples.len(), node_started.elapsed()));
                    outputs[node.id] = tuples;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let busy = started.elapsed();
        drop(permit);
        let result = match failure {
            Some(e) => Err(e),
            None => Ok(job
                .collect
                .iter()
                .enumerate()
                .filter(|(_, wanted)| **wanted)
                .map(|(id, _)| (id, std::mem::take(&mut outputs[id])))
                .collect()),
        };
        let _ = job.done.send(SegmentDone {
            segment: job.segment,
            node_stats,
            outputs: result,
            busy,
        });
    }
}

/// Rewrites one bound activation for one row segment: scans additionally
/// restrict to segment `(index, of)` — hashing the cluster co-partition
/// columns when set (fanout partition columns take precedence over the
/// default primary-key segmenting), else the walker's own join-key columns,
/// else the table's primary key — and a group-by root switches to partial
/// mode when the shape merges partial aggregates.
fn segment_activation(
    activation: &Activation,
    op: OperatorId,
    index: u32,
    of: u32,
    spec: &ScatterSpec,
) -> Activation {
    match activation {
        Activation::Scan {
            predicate,
            partition,
            partition_columns,
            segment: _,
            snapshot,
        } => Activation::Scan {
            predicate: predicate.clone(),
            partition: *partition,
            partition_columns: partition_columns.clone().or_else(|| {
                spec.partition_columns
                    .as_ref()
                    .and_then(|m| m.get(&op).cloned())
            }),
            segment: Some((index, of)),
            snapshot: *snapshot,
        },
        Activation::Having { predicate, partial } => Activation::Having {
            predicate: predicate.clone(),
            partial: *partial || spec.partial_aggregation,
        },
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Multiplicative steps of the adaptive heartbeat controller. Shrinking is
/// stronger than growth and a dead band separates the two pressure
/// thresholds, so the interval converges instead of oscillating.
const HEARTBEAT_SHRINK: f64 = 0.75;
const HEARTBEAT_GROW: f64 = 1.25;
/// Queue pressure (admitted + still queued) at or above which the interval
/// grows — a longer heavy cycle amortizes shared work over more queries.
const GROW_PRESSURE: usize = 16;
/// Queue pressure at or below which the interval shrinks back toward `min`.
const SHRINK_PRESSURE: usize = 4;
/// Fresh light-lane completions required before the controller rolls its
/// p99 observation window.
const WINDOW_MIN_SAMPLES: u64 = 8;
/// How long a read defers on an unresolved (or uncovered) session write
/// fence before being admitted anyway — a wedged writer must not hang
/// readers forever.
const FENCE_WAIT_CAP: Duration = Duration::from_secs(1);
/// Pause between fence re-checks when every drained submission deferred.
const FENCE_POLL: Duration = Duration::from_micros(100);

/// The per-replica adaptive heartbeat controller (runs on the coordinator
/// thread, one `step` per batch).
///
/// The control signal is the light lane's windowed p99 (diff of the
/// cumulative Total-phase histogram over the light statement types) plus the
/// admission-queue pressure; the actuator is the heavy-lane admission
/// interval (the light lane is never gated, so a longer interval only
/// *spaces out* heavy cycles). Light p99 over target or a standing backlog →
/// grow: heavy batches run less often, each one amortizes the shared
/// operators over more of the backlog, and fewer light queries land behind
/// an in-flight heavy cycle. Near-idle with latency headroom → shrink back
/// toward `min`, keeping heavy admission latency low when there is nothing
/// to protect. Anything between the thresholds holds the interval
/// (hysteresis), and the asymmetric step sizes bias toward meeting the SLO.
struct HeartbeatController {
    policy: HeartbeatPolicy,
    /// Cumulative light-lane Total-phase histogram at the last window
    /// rollover; diffed against the live histogram to get a windowed p99.
    window_base: HistogramSnapshot,
    /// When the current observation window opened.
    window_started: Instant,
    /// Largest admission pressure (batch size + remaining backlog) seen
    /// during the current window.
    peak_pressure: usize,
    /// Light p99 of the last completed window, µs (0 until the first window
    /// fills — the controller only grows once it has evidence of headroom).
    light_p99_us: u64,
}

impl HeartbeatController {
    fn new(policy: HeartbeatPolicy) -> HeartbeatController {
        HeartbeatController {
            policy,
            window_base: HistogramSnapshot::default(),
            window_started: Instant::now(),
            peak_pressure: 0,
            light_p99_us: 0,
        }
    }

    /// One control step after a batch: `admitted` submissions were drained
    /// into it and `backlog` remained queued. Returns the interval for the
    /// next cycle and publishes it (and the adjustment counter) on `inner`.
    ///
    /// A decision is made at most once per observation window, and a window
    /// closes only after spanning at least two heavy cycles at the current
    /// interval — a shorter window mostly samples the gaps *between* heavy
    /// admissions, reads a calm p99, and shrinks the interval right before
    /// the next heavy cycle proves it wrong (the oscillation this rule
    /// exists to prevent). Between rollovers the interval holds.
    fn step(&mut self, inner: &EngineInner, admitted: usize, backlog: usize) -> Duration {
        let HeartbeatPolicy::Adaptive {
            min,
            max,
            target_light_p99,
        } = self.policy
        else {
            return self.policy.initial_interval();
        };
        let interval = Duration::from_micros(inner.heartbeat_us.load(Ordering::Relaxed));
        self.peak_pressure = self.peak_pressure.max(admitted + backlog);
        if self.window_started.elapsed() < interval * 2 {
            return interval;
        }
        let live = inner.stats.merged_phase(&inner.light_indices, Phase::Total);
        let window = live.diff(&self.window_base);
        let have_samples = window.count >= WINDOW_MIN_SAMPLES;
        if !have_samples && self.peak_pressure < GROW_PRESSURE {
            // Not enough light completions to judge the tail and no heavy
            // backlog to react to: keep accumulating.
            return interval;
        }
        if have_samples {
            self.light_p99_us = window.percentile_us(0.99);
        }
        let target_us = target_light_p99.as_micros() as u64;
        let proposed = if self.light_p99_us > target_us || self.peak_pressure >= GROW_PRESSURE {
            interval.mul_f64(HEARTBEAT_GROW)
        } else if self.peak_pressure <= SHRINK_PRESSURE && self.light_p99_us <= target_us / 2 {
            interval.mul_f64(HEARTBEAT_SHRINK)
        } else {
            interval
        };
        self.window_base = live;
        self.window_started = Instant::now();
        self.peak_pressure = 0;
        let next = Duration::from_micros(proposed.clamp(min, max).as_micros() as u64);
        if next != interval {
            inner
                .heartbeat_us
                .store(next.as_micros() as u64, Ordering::Relaxed);
            inner.heartbeat_adjustments.fetch_add(1, Ordering::Relaxed);
        }
        next
    }
}

fn coordinator_loop(inner: Arc<EngineInner>) {
    let mut batch_seq: u64 = 0;
    let adaptive = inner.config.heartbeat.is_adaptive();
    let mut heartbeat = inner.config.heartbeat.initial_interval();
    let mut controller = HeartbeatController::new(inner.config.heartbeat);
    let mut last_batch_start = Instant::now() - heartbeat;
    // The heavy lane has its own admission clock: gating it on
    // `last_batch_start` would let continuous light traffic (which resets
    // that clock every batch) postpone heavy work forever. This way a heavy
    // batch is admitted at least once per interval no matter how busy the
    // light lane is.
    let mut last_heavy_admit = last_batch_start;
    loop {
        // Wait for work (or shutdown). Under an adaptive policy the interval
        // gates only the *heavy* lane: light submissions open a batch
        // immediately, heavy ones wait out the remainder of the interval so
        // each shared heavy cycle amortizes over more of the backlog.
        let (submissions, backlog, shutting_down) = {
            let mut queue = inner.admission.queue.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if adaptive {
                    if !queue.light.is_empty() {
                        break;
                    }
                    if !queue.heavy.is_empty() {
                        let since = last_heavy_admit.elapsed();
                        if since >= heartbeat {
                            break;
                        }
                        inner
                            .admission
                            .signal
                            .wait_for(&mut queue, heartbeat - since);
                        continue;
                    }
                } else if !queue.is_empty() {
                    break;
                }
                inner.admission.signal.wait_for(&mut queue, heartbeat);
            }
            let shutting_down = inner.shutdown.load(Ordering::Acquire);
            if shutting_down && queue.is_empty() {
                break;
            }
            // Heartbeat pacing (fixed policy): in non-eager mode a new batch
            // starts at most once per heartbeat interval, letting more work
            // accumulate. Adaptive pacing happened in the wait loop above and
            // ignores the eager flag.
            if !adaptive && !inner.config.eager_heartbeat {
                let since = last_batch_start.elapsed();
                if since < heartbeat {
                    let mut wait = heartbeat - since;
                    drop(queue);
                    // Sleep in small slices so a shutdown (graceful drain)
                    // is observed promptly even with long heartbeats.
                    while !wait.is_zero() && !inner.shutdown.load(Ordering::Acquire) {
                        let slice = wait.min(Duration::from_millis(10));
                        std::thread::sleep(slice);
                        wait = wait.saturating_sub(slice);
                    }
                    queue = inner.admission.queue.lock();
                }
            }
            let limit = if inner.config.max_batch_size == 0 {
                queue.len()
            } else {
                inner.config.max_batch_size.min(queue.len())
            };
            // Light-first drain: light admissions never wait behind heavy
            // backlog. The heavy lane joins when the policy allows it (fixed:
            // always; adaptive: interval elapsed or draining for shutdown);
            // when the batch is capped with both lanes waiting, one slot
            // stays reserved for heavy work so a saturated light lane cannot
            // starve the heavy lane either. Adaptive eligibility is purely
            // clock-based: under a continuous light stream the light queue
            // still empties at most drain instants, so an "admit heavy when
            // no light is waiting" shortcut would defeat the pacing exactly
            // when the SLO needs it.
            let heavy_eligible =
                !adaptive || shutting_down || last_heavy_admit.elapsed() >= heartbeat;
            let light_take = if heavy_eligible && !queue.heavy.is_empty() {
                queue.light.len().min(limit.saturating_sub(1))
            } else {
                queue.light.len().min(limit)
            };
            let heavy_take = if heavy_eligible {
                queue.heavy.len().min(limit - light_take)
            } else {
                0
            };
            if heavy_take > 0 {
                last_heavy_admit = Instant::now();
            }
            let mut drained: Vec<Submission> = queue.light.drain(..light_take).collect();
            drained.extend(queue.heavy.drain(..heavy_take));
            let backlog = queue.len();
            (drained, backlog, shutting_down)
        };

        // Read-your-writes: hold back any query whose session fence is not
        // yet covered by the committed watermark — unless the covering
        // update rides in this very batch (updates group-commit in Phase 1,
        // before the batch snapshot is taken), the fence has been pending
        // past `FENCE_WAIT_CAP`, or the engine is draining for shutdown.
        let mut admitted: Vec<Submission> = Vec::with_capacity(submissions.len());
        let mut deferred: Vec<Submission> = Vec::new();
        let any_fenced = submissions
            .iter()
            .any(|s| matches!(s, Submission::Query(q) if q.read_after.is_some()));
        if any_fenced && !shutting_down {
            let watermark = inner.catalog.oracle().read_ts().ts.0;
            let batch_fences: Vec<Arc<WriteFence>> = submissions
                .iter()
                .filter_map(|s| match s {
                    Submission::Update(u) => u.write_fence.clone(),
                    _ => None,
                })
                .collect();
            for submission in submissions {
                let held = match &submission {
                    Submission::Query(q) => match &q.read_after {
                        Some(fence) => {
                            let covered = fence.committed_ts().is_some_and(|ts| ts <= watermark);
                            let in_batch = batch_fences.iter().any(|f| Arc::ptr_eq(f, fence));
                            !covered && !in_batch && q.enqueued.elapsed() < FENCE_WAIT_CAP
                        }
                        None => false,
                    },
                    Submission::Update(_) => false,
                };
                if held {
                    deferred.push(submission);
                } else {
                    admitted.push(submission);
                }
            }
        } else {
            admitted = submissions;
        }
        let deferred_only = admitted.is_empty() && !deferred.is_empty();
        if !deferred.is_empty() {
            // Deferred queries go back to the *front* of their lanes in
            // reverse drain order, preserving FIFO within each lane.
            let mut queue = inner.admission.queue.lock();
            for submission in deferred.into_iter().rev() {
                let lane = inner
                    .lanes
                    .get(submission.statement_index())
                    .copied()
                    .unwrap_or(Lane::Heavy);
                match lane {
                    Lane::Light => queue.light.push_front(submission),
                    Lane::Heavy => queue.heavy.push_front(submission),
                }
            }
        }
        if admitted.is_empty() {
            if deferred_only {
                // Only fenced reads are queued: their writes commit on some
                // *other* replica, so briefly sleep instead of spinning on
                // the watermark.
                std::thread::sleep(FENCE_POLL);
            }
            continue;
        }

        last_batch_start = Instant::now();
        batch_seq += 1;
        let admitted_count = admitted.len();
        let mut batch = QueryBatch {
            id: BatchId(batch_seq),
            ..Default::default()
        };
        for submission in admitted {
            match submission {
                Submission::Query(q) => batch.queries.push(q),
                Submission::Update(u) => batch.updates.push(u),
            }
        }
        process_batch(&inner, &batch, heartbeat);
        inner
            .stats
            .record_batch(batch.queries.len() + batch.updates.len());
        heartbeat = controller.step(&inner, admitted_count, backlog);
    }

    // Fail everything still pending.
    let drained: Vec<PendingResult> = {
        let mut pending = inner.pending.lock();
        pending.drain().map(|(_, result)| result).collect()
    };
    for result in drained {
        let _ = result.sender.send(Err(Error::EngineShutdown));
        if let Some(waker) = &result.waker {
            waker();
        }
    }
}

fn process_batch(inner: &Arc<EngineInner>, batch: &QueryBatch, heartbeat: Duration) {
    let batch_started = Instant::now();
    let heartbeat_us = heartbeat.as_micros() as u64;
    // The statement-type mix (computed only when tracing is on — it
    // allocates) is what the attribution table splits operator busy time by.
    let mix = if inner.trace.capacity() > 0 {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for q in &batch.queries {
            *counts.entry(q.statement_index).or_default() += 1;
        }
        for u in &batch.updates {
            *counts.entry(u.statement_index).or_default() += 1;
        }
        let mut mix: Vec<(usize, usize)> = counts.into_iter().collect();
        mix.sort_unstable();
        mix
    } else {
        Vec::new()
    };
    inner.trace.push(TraceEvent::BatchFormed {
        batch: batch.id.0,
        queries: batch.queries.len(),
        updates: batch.updates.len(),
        mix,
        heartbeat_us,
    });

    // Phase 1: apply the batch's updates in arrival order (one commit
    // timestamp for the whole batch, group commit into the WAL).
    if !batch.updates.is_empty() {
        let ops: Vec<(String, shareddb_storage::UpdateOp)> = batch
            .updates
            .iter()
            .map(|u| (u.table.clone(), u.op.clone()))
            .collect();
        let applied = inner.catalog.apply_batch(&ops);
        // Resolve session write fences at the watermark now covering this
        // group commit — in the error path too: a failed write constrains no
        // read, and a session must not block on it.
        let watermark = inner.catalog.oracle().read_ts().ts.0;
        for update in &batch.updates {
            if let Some(fence) = &update.write_fence {
                fence.resolve(watermark);
            }
        }
        match applied {
            Ok(results) => {
                for (update, result) in batch.updates.iter().zip(results) {
                    complete(
                        inner,
                        update.ticket,
                        Ok(QueryOutcome::Updated {
                            rows_affected: result.rows_affected,
                        }),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                            segments: 1,
                            heartbeat_us,
                        }),
                    );
                }
            }
            Err(e) => {
                for update in &batch.updates {
                    complete(
                        inner,
                        update.ticket,
                        Err(e.clone()),
                        Some(PhaseCtx {
                            statement_index: update.statement_index,
                            enqueued: update.enqueued,
                            batch_started,
                            segments: 1,
                            heartbeat_us,
                        }),
                    );
                }
            }
        }
    }

    if batch.queries.is_empty() {
        return;
    }

    // Phase 2: run the shared operators of the plan for this batch.
    let snapshot = inner.catalog.oracle().read_ts();
    let plan = &inner.plan;
    let segments = inner.config.scan_segments as u32;

    // Lane split. Queries whose statement shape is partitionable run
    // segment-parallel on the worker pool (segment lane); everything else —
    // and everything, when segmenting is off — runs on the operator threads
    // exactly as before (whole lane). Both lanes execute against this
    // batch's single snapshot, so the split is invisible to MVCC, and
    // updates were already applied in Phase 1, never segmented.
    let mut whole_lane: Vec<&ActiveQuery> = Vec::new();
    let mut seg_lane: Vec<&ActiveQuery> = Vec::new();
    for q in &batch.queries {
        if segments > 1 && q.segment_ok {
            seg_lane.push(q);
        } else {
            whole_lane.push(q);
        }
    }

    // Whole lane: per-operator activations and router subscriptions.
    let mut collect: Vec<bool> = vec![false; plan.len()];
    let mut node_activations: Vec<Vec<(QueryId, Activation)>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    for q in &whole_lane {
        collect[q.root] = true;
        for (op, activation) in &q.activations {
            node_activations[*op].push((q.query_id, activation.clone()));
        }
    }

    // Segment lane: rewrite each eligible query's activations per row
    // segment and dispatch one whole-plan job per segment to the pool.
    let (segment_done_tx, segment_done_rx) = unbounded::<SegmentDone>();
    let mut seg_error: Option<Error> = None;
    let mut dispatched_segments: u32 = 0;
    if !seg_lane.is_empty() {
        let mut seg_collect: Vec<bool> = vec![false; plan.len()];
        for q in &seg_lane {
            seg_collect[q.root] = true;
        }
        let jobs = inner.segment_jobs.lock();
        for s in 0..segments {
            let mut activations: Vec<Vec<(QueryId, Activation)>> =
                (0..plan.len()).map(|_| Vec::new()).collect();
            for q in &seg_lane {
                let spec = inner.scatter_specs[q.statement_index]
                    .as_ref()
                    .expect("segment_ok implies a scatter spec");
                for (op, activation) in &q.activations {
                    activations[*op].push((
                        q.query_id,
                        segment_activation(activation, *op, s, segments, spec),
                    ));
                }
            }
            let job = SegmentJob {
                segment: s,
                activations,
                collect: seg_collect.clone(),
                snapshot,
                done: segment_done_tx.clone(),
            };
            match jobs.as_ref() {
                Some(tx) if tx.send(job).is_ok() => dispatched_segments += 1,
                _ => {
                    seg_error = Some(Error::EngineShutdown);
                    break;
                }
            }
        }
    }
    drop(segment_done_tx);

    // Build the per-batch data channels along plan edges (whole lane).
    let mut input_receivers: Vec<Vec<Receiver<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    let mut output_senders: Vec<Vec<Sender<TaskData>>> =
        (0..plan.len()).map(|_| Vec::new()).collect();
    for node in plan.nodes() {
        for &input in &node.inputs {
            let (tx, rx) = unbounded::<TaskData>();
            output_senders[input].push(tx);
            input_receivers[node.id].push(rx);
        }
    }
    let (collector_tx, collector_rx) = unbounded::<(OperatorId, TaskData)>();
    let (done_tx, done_rx) = unbounded::<OperatorDone>();

    let expected_collects = collect.iter().filter(|&&c| c).count();

    // Dispatch one task per operator (always-on plan: every operator runs
    // every cycle, possibly with zero active queries).
    let mut receivers_iter: Vec<Vec<Receiver<TaskData>>> = input_receivers;
    let mut senders_iter: Vec<Vec<Sender<TaskData>>> = output_senders;
    let mut activations_iter = node_activations;
    for node in plan.nodes() {
        let task = OperatorTask {
            activations: std::mem::take(&mut activations_iter[node.id]),
            inputs: std::mem::take(&mut receivers_iter[node.id]),
            outputs: std::mem::take(&mut senders_iter[node.id]),
            collector: if collect[node.id] {
                Some(collector_tx.clone())
            } else {
                None
            },
            done: done_tx.clone(),
            snapshot,
        };
        let _ = inner.operator_senders[node.id].send(OperatorMessage::Task(Box::new(task)));
    }
    drop(collector_tx);
    drop(done_tx);

    // Gather per-operator completion. Per-operator counters are recorded
    // exactly ONCE per operator per batch, folding both lanes: tuples are
    // SUMMED (the lanes' row sets are disjoint), busy is the MAXIMUM across
    // lanes. The lanes run concurrently, so the max approximates the
    // wall-clock busy union; summing would let N parallel segments multiply
    // the reported busy-fraction and deflate tuples-per-active-cycle.
    let mut batch_error: Option<Error> = None;
    let mut active_operators = 0usize;
    let mut total_busy = Duration::ZERO;
    let mut op_tuples: Vec<usize> = vec![0; plan.len()];
    let mut op_busy: Vec<Duration> = vec![Duration::ZERO; plan.len()];
    let mut op_active: Vec<bool> = vec![false; plan.len()];
    for _ in 0..plan.len() {
        match done_rx.recv() {
            Ok(done) => {
                let tuples = match &done.result {
                    Ok(n) => *n,
                    Err(e) => {
                        if batch_error.is_none() {
                            batch_error = Some(e.clone());
                        }
                        0
                    }
                };
                op_tuples[done.id] += tuples;
                op_busy[done.id] = op_busy[done.id].max(done.busy);
                op_active[done.id] |= done.had_queries;
                total_busy += done.busy;
                if done.had_queries {
                    active_operators += 1;
                    inner.trace.push(TraceEvent::OperatorFired {
                        batch: batch.id.0,
                        operator: done.id,
                        tuples,
                        busy_us: done.busy.as_micros() as u64,
                    });
                }
            }
            Err(_) => {
                batch_error = Some(Error::Internal("operator thread disappeared".into()));
                break;
            }
        }
    }

    // Merge barrier of the segment lane: gather every dispatched segment
    // job. A failed segment fails only the segment lane's queries; the
    // whole lane is unaffected (and vice versa).
    let mut segment_outputs: Vec<Option<HashMap<OperatorId, Vec<QTuple>>>> =
        (0..segments).map(|_| None).collect();
    for _ in 0..dispatched_segments {
        match segment_done_rx.recv() {
            Ok(done) => {
                total_busy += done.busy;
                for (id, stats) in done.node_stats.iter().enumerate() {
                    if let Some((tuples, busy)) = stats {
                        op_tuples[id] += tuples;
                        op_busy[id] = op_busy[id].max(*busy);
                        op_active[id] = true;
                    }
                }
                match done.outputs {
                    Ok(outputs) => {
                        let rows = outputs.values().map(|o| o.len()).sum();
                        inner.segment_stats[done.segment as usize].record(rows, done.busy);
                        segment_outputs[done.segment as usize] = Some(outputs);
                    }
                    Err(e) => {
                        inner.segment_stats[done.segment as usize].record(0, done.busy);
                        if seg_error.is_none() {
                            seg_error = Some(e);
                        }
                    }
                }
            }
            Err(_) => {
                if seg_error.is_none() {
                    seg_error = Some(Error::Internal("segment worker disappeared".into()));
                }
                break;
            }
        }
    }

    for node in plan.nodes() {
        inner.operator_stats[node.id].record_cycle(
            op_active[node.id],
            op_tuples[node.id],
            op_busy[node.id],
        );
    }
    // Attribution: split every operator's folded cycle across the batch's
    // activation mix. Counting from the pre-rewrite activations covers both
    // lanes uniformly (a segmented query still has exactly one activation
    // per operator per execution), and feeding the same folded `op_busy` /
    // `op_tuples` that record_cycle just consumed is what makes the
    // attributed sums match the per-operator totals exactly.
    let n_stmts = inner.attribution.statement_count();
    let mut act_counts: Vec<u64> = vec![0; plan.len() * n_stmts];
    for q in &batch.queries {
        for (op, _) in &q.activations {
            act_counts[*op * n_stmts + q.statement_index] += 1;
        }
    }
    for node in plan.nodes() {
        inner.attribution.record_cycle(
            node.id,
            &act_counts[node.id * n_stmts..(node.id + 1) * n_stmts],
            op_tuples[node.id] as u64,
            op_busy[node.id],
        );
    }
    inner.trace.push(TraceEvent::OperatorsFired {
        batch: batch.id.0,
        fired: plan.len(),
        active: active_operators,
        total_busy_us: total_busy.as_micros() as u64,
    });

    // Gather the whole lane's root outputs.
    let mut root_outputs: HashMap<OperatorId, TaskData> = HashMap::new();
    for _ in 0..expected_collects {
        match collector_rx.recv() {
            Ok((id, data)) => {
                root_outputs.insert(id, data);
            }
            Err(_) => break,
        }
    }

    // Phase 3: route results back to the clients (Γ by query_id). The root
    // outputs are exploded into per-query row lists in ONE pass per root
    // operator, so routing cost is O(results), not O(results × queries).
    let mut routed: RoutingTable = HashMap::new();
    if batch_error.is_none() {
        for (root, output) in root_outputs.iter() {
            let per_query = routed.entry(*root).or_default();
            for tuple in output.iter() {
                for query_id in tuple.queries.iter() {
                    per_query
                        .entry(query_id)
                        .or_default()
                        .push(tuple.tuple.clone());
                }
            }
        }
    }
    // Segment lane: the same Γ step, once per segment; each query's
    // per-segment partial rows then recombine through its statement's merge
    // spec before finalisation.
    let mut seg_routed: Vec<RoutingTable> = (0..segments).map(|_| HashMap::new()).collect();
    if seg_error.is_none() {
        for (s, outputs) in segment_outputs.iter().enumerate() {
            let Some(outputs) = outputs else { continue };
            for (root, output) in outputs {
                let per_query = seg_routed[s].entry(*root).or_default();
                for tuple in output {
                    for query_id in tuple.queries.iter() {
                        per_query
                            .entry(query_id)
                            .or_default()
                            .push(tuple.tuple.clone());
                    }
                }
            }
        }
    }
    for q in &batch.queries {
        let segmented = segments > 1 && q.segment_ok;
        let ctx = Some(PhaseCtx {
            statement_index: q.statement_index,
            enqueued: q.enqueued,
            batch_started,
            segments: if segmented { segments } else { 1 },
            heartbeat_us,
        });
        let lane_error = if segmented { &seg_error } else { &batch_error };
        if let Some(error) = lane_error {
            inner.trace.push(TraceEvent::QueryRouted {
                batch: batch.id.0,
                statement: q.statement_index,
                ticket: q.ticket.0,
                rows: 0,
                ok: false,
            });
            complete(inner, q.ticket, Err(error.clone()), ctx);
            inner.stats.record_failure();
            continue;
        }
        let outcome = if segmented {
            merge_segment_partials(inner, q, &mut seg_routed)
                .and_then(|rows| finalize_query_result(inner, q, rows))
        } else {
            let rows = routed
                .get_mut(&q.root)
                .and_then(|per_query| per_query.remove(&q.query_id))
                .unwrap_or_default();
            finalize_query_result(inner, q, rows)
        };
        inner.trace.push(TraceEvent::QueryRouted {
            batch: batch.id.0,
            statement: q.statement_index,
            ticket: q.ticket.0,
            rows: outcome.as_ref().map(|o| o.rows().len()).unwrap_or(0),
            ok: outcome.is_ok(),
        });
        complete(inner, q.ticket, outcome, ctx);
    }
}

/// Recombines one segment-lane query's per-segment partial rows into the
/// single row list [`finalize_query_result`] expects, using the statement's
/// [`MergeSpec`] — the same machinery the cluster layer uses across replicas,
/// one level down.
///
/// Two composition cases for grouped merges:
///
/// * a **direct** caller gets final values: AVG sum/count partials are
///   recombined exactly and the query's own bound HAVING predicate is
///   applied per merged group (a segment must not filter a partial group
///   another segment may complete);
/// * a caller that itself requested partials (**cluster fanout** over a
///   segmented replica) gets back *partial* rows in the same extended
///   layout it asked for — AVG columns keep carrying partial sums, the
///   trailing hidden count columns are summed per group — and HAVING stays
///   deferred to the caller's own merge, which is the only place that sees
///   every partition's contribution to a group.
fn merge_segment_partials(
    inner: &Arc<EngineInner>,
    query: &ActiveQuery,
    seg_routed: &mut [RoutingTable],
) -> Result<Vec<Tuple>> {
    let spec = inner.scatter_specs[query.statement_index]
        .as_ref()
        .ok_or_else(|| Error::Internal("segment-lane query without scatter spec".into()))?;
    // The bound HAVING predicate and the caller-requested partial mode live
    // in the query's own (pre-rewrite) root activation.
    let mut bound_having: Option<shareddb_common::Expr> = None;
    let mut caller_wants_partials = false;
    for (op, activation) in &query.activations {
        if *op == query.root {
            if let Activation::Having { predicate, partial } = activation {
                bound_having = predicate.clone();
                caller_wants_partials = *partial;
            }
        }
    }
    let effective = match &spec.merge {
        MergeSpec::Grouped {
            group_width,
            functions,
            avg_partials,
            having: _,
        } => {
            if caller_wants_partials {
                let mut extended: Vec<AggregateFunction> = functions
                    .iter()
                    .map(|f| match f {
                        AggregateFunction::Avg => AggregateFunction::Sum,
                        other => *other,
                    })
                    .collect();
                let hidden = functions
                    .iter()
                    .filter(|f| **f == AggregateFunction::Avg)
                    .count();
                extended.extend(std::iter::repeat_n(AggregateFunction::Count, hidden));
                MergeSpec::Grouped {
                    group_width: *group_width,
                    functions: extended,
                    avg_partials: false,
                    having: None,
                }
            } else {
                MergeSpec::Grouped {
                    group_width: *group_width,
                    functions: functions.clone(),
                    avg_partials: *avg_partials,
                    having: bound_having,
                }
            }
        }
        other => other.clone(),
    };
    let schema = inner.plan.node(query.root).schema.clone();
    let parts: Vec<crate::engine::ResultSet> = seg_routed
        .iter_mut()
        .map(|routed| ResultSet {
            schema: schema.clone(),
            rows: routed
                .get_mut(&query.root)
                .and_then(|per_query| per_query.remove(&query.query_id))
                .unwrap_or_default(),
        })
        .collect();
    merge_results(&effective, parts).map(|rs| rs.rows)
}

fn finalize_query_result(
    inner: &Arc<EngineInner>,
    query: &ActiveQuery,
    mut rows: Vec<Tuple>,
) -> Result<QueryOutcome> {
    // DISTINCT statements dedup the *projected* rows, and their limit counts
    // deduplicated rows — so the truncate-early fast path only runs for
    // non-distinct statements.
    if !query.distinct {
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    // Computed output columns (expression projections) replace the plain
    // index projection: each result row is the evaluation of the bound
    // expressions over the root row.
    if !query.compute.is_empty() {
        let schema = Schema::new(
            query
                .compute
                .iter()
                .map(|c| shareddb_common::Column::nullable(c.name.clone(), c.data_type))
                .collect(),
        );
        let rows = rows
            .into_iter()
            .map(|r| {
                Ok(Tuple::new(
                    query
                        .compute
                        .iter()
                        .map(|c| c.expr.eval(&r))
                        .collect::<Result<Vec<Value>>>()?,
                ))
            })
            .collect::<Result<Vec<Tuple>>>()?;
        return Ok(QueryOutcome::Rows(ResultSet {
            schema,
            rows: finish_output_rows(query, rows),
        }));
    }
    let root_schema = inner.plan.node(query.root).schema.clone();
    let schema = if query.projection.is_empty() {
        root_schema
    } else {
        root_schema.project(&query.projection)
    };
    if !query.projection.is_empty() {
        rows = rows
            .into_iter()
            .map(|r| r.project(&query.projection))
            .collect();
    }
    Ok(QueryOutcome::Rows(ResultSet {
        schema,
        rows: finish_output_rows(query, rows),
    }))
}

/// Applies the statement's post-projection DISTINCT (keeping the first
/// occurrence, which preserves any ORDER BY) and the deferred limit.
fn finish_output_rows(query: &ActiveQuery, mut rows: Vec<Tuple>) -> Vec<Tuple> {
    if query.distinct {
        let mut seen = std::collections::HashSet::with_capacity(rows.len());
        rows.retain(|row| seen.insert(row.clone()));
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
    }
    rows
}

/// Phase context of a completion: everything needed to attribute the
/// batch-wait and execute spans to the right statement type.
struct PhaseCtx {
    statement_index: usize,
    enqueued: Instant,
    batch_started: Instant,
    /// Segment lanes the statement executed on (1 = whole lane).
    segments: u32,
    /// Heartbeat interval in effect when the batch formed, µs.
    heartbeat_us: u64,
}

fn complete(
    inner: &Arc<EngineInner>,
    ticket: TicketId,
    outcome: Result<QueryOutcome>,
    ctx: Option<PhaseCtx>,
) {
    let pending = inner.pending.lock().remove(&ticket);
    if let Some(pending) = pending {
        // One completion timestamp for every span, so total >= execute and
        // total >= batch_wait hold exactly (two elapsed() calls would let
        // the later-measured span overshoot the earlier one).
        let now = Instant::now();
        let latency = now.duration_since(pending.submitted);
        match &outcome {
            Ok(QueryOutcome::Rows(rs)) => inner.stats.record_query(rs.len(), latency),
            Ok(QueryOutcome::Updated { .. }) => inner.stats.record_update(latency),
            Err(_) => inner.stats.record_failure(),
        }
        if let Some(ctx) = ctx {
            let batch_wait = ctx.batch_started.duration_since(ctx.enqueued);
            let execute = now.duration_since(ctx.batch_started);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::BatchWait, batch_wait);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Execute, execute);
            inner
                .stats
                .record_phase(ctx.statement_index, Phase::Total, latency);
            if let Some(threshold) = inner.config.slow_query_threshold {
                if latency >= threshold {
                    inner.stats.record_slow(SlowQueryRecord {
                        statement: inner.registry.by_index(ctx.statement_index).name.clone(),
                        // The engine does not know its replica id; the
                        // cluster layer stamps it when concatenating logs.
                        replica: 0,
                        segments: ctx.segments,
                        total: latency,
                        admission: ctx.enqueued.duration_since(pending.submitted),
                        batch_wait,
                        execute,
                        heartbeat_us: ctx.heartbeat_us,
                    });
                }
            }
        }
        let _ = pending.sender.send(outcome);
        if let Some(waker) = &pending.waker {
            waker();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{
        ActivationTemplate, PlanBuilder, ProbeTemplate, StatementSpec, UpdateTemplate,
    };
    use shareddb_common::agg::AggregateFunction;
    use shareddb_common::{tuple, DataType, Expr, SortKey};
    use shareddb_storage::{IndexDef, TableDef};

    /// Builds a small catalog + plan resembling Figure 2 of the paper:
    /// USERS and ORDERS scans, a shared hash join, a group-by over USERS and
    /// a sort over the join output.
    fn build_engine(config: EngineConfig) -> Engine {
        let catalog = Arc::new(Catalog::new());
        catalog
            .create_table(
                TableDef::new("USERS")
                    .column("USER_ID", DataType::Int)
                    .column("USERNAME", DataType::Text)
                    .column("COUNTRY", DataType::Text)
                    .column("ACCOUNT", DataType::Int)
                    .primary_key(&["USER_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDERS")
                    .column("ORDER_ID", DataType::Int)
                    .column("USER_ID", DataType::Int)
                    .column("STATUS", DataType::Text)
                    .column("TOTAL", DataType::Float)
                    .primary_key(&["ORDER_ID"]),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "USERS_PK".into(),
                table: "USERS".into(),
                column: "USER_ID".into(),
            })
            .unwrap();
        let users: Vec<_> = (0..100i64)
            .map(|i| {
                tuple![
                    i,
                    format!("user{i}"),
                    if i % 2 == 0 { "CH" } else { "DE" },
                    i * 10
                ]
            })
            .collect();
        let orders: Vec<_> = (0..300i64)
            .map(|i| {
                tuple![
                    i,
                    i % 100,
                    if i % 3 == 0 { "OK" } else { "PENDING" },
                    (i % 50) as f64
                ]
            })
            .collect();
        catalog.bulk_load("USERS", users).unwrap();
        catalog.bulk_load("ORDERS", orders).unwrap();

        let mut b = PlanBuilder::new(&catalog);
        let users_scan = b.table_scan("USERS").unwrap();
        let orders_scan = b.table_scan("ORDERS").unwrap();
        let users_probe = b.index_probe("USERS").unwrap();
        let join = b
            .hash_join(users_scan, orders_scan, "USERS.USER_ID", "ORDERS.USER_ID")
            .unwrap();
        let join_sort = b.sort(join, vec![SortKey::asc(4)]).unwrap();
        let gamma = b
            .group_by(
                users_scan,
                vec!["USERS.COUNTRY"],
                vec![(AggregateFunction::Sum, "USERS.ACCOUNT", "SUM_ACCOUNT")],
            )
            .unwrap();
        let top = b.top_n(orders_scan, vec![SortKey::desc(3)]).unwrap();
        let plan = b.build();

        let mut registry = StatementRegistry::new();
        // Q1: SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY
        registry
            .register(
                StatementSpec::query("usersByCountry", gamma)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(gamma, ActivationTemplate::Having { predicate: None }),
            )
            .unwrap();
        // Q2: SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID
        //     AND U.USERNAME = ? AND O.STATUS = 'OK', sorted by order id.
        registry
            .register(
                StatementSpec::query("ordersOfUser", join_sort)
                    .activate(
                        users_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(1).eq(Expr::param(0)),
                        },
                    )
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(2).eq(Expr::lit("OK")),
                        },
                    )
                    .activate(join, ActivationTemplate::Participate)
                    .activate(join_sort, ActivationTemplate::Participate),
            )
            .unwrap();
        // Q3: point look-up of one user through the shared index probe.
        registry
            .register(StatementSpec::query("userById", users_probe).activate(
                users_probe,
                ActivationTemplate::Probe {
                    column: 0,
                    range: ProbeTemplate::Key(Expr::param(0)),
                    residual: None,
                },
            ))
            .unwrap();
        // Q4: top-N most expensive orders.
        registry
            .register(
                StatementSpec::query("topOrders", top)
                    .activate(
                        orders_scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::col(3).gt_eq(Expr::param(0)),
                        },
                    )
                    .activate(top, ActivationTemplate::TopN { limit: 5 }),
            )
            .unwrap();
        // U1: register a new order.
        registry
            .register(StatementSpec::update(
                "addOrder",
                "ORDERS",
                UpdateTemplate::Insert {
                    values: vec![
                        Expr::param(0),
                        Expr::param(1),
                        Expr::lit("OK"),
                        Expr::param(2),
                    ],
                },
            ))
            .unwrap();
        // U2: cancel the orders of one user.
        registry
            .register(StatementSpec::update(
                "cancelOrders",
                "ORDERS",
                UpdateTemplate::Delete {
                    predicate: Expr::col(1).eq(Expr::param(0)),
                },
            ))
            .unwrap();

        Engine::start(catalog, plan, registry, config).unwrap()
    }

    #[test]
    fn group_by_query_end_to_end() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("usersByCountry", &[]).unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 2);
        // 50 even users (CH) with accounts 0,20,..,980 -> 24500.
        let ch = rows.iter().find(|r| r[0] == Value::text("CH")).unwrap();
        assert_eq!(
            ch[1],
            Value::Int((0..100).filter(|i| i % 2 == 0).map(|i| i * 10).sum())
        );
    }

    #[test]
    fn join_query_with_parameters() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("ordersOfUser", &[Value::text("user7")])
            .unwrap();
        let rows = outcome.rows();
        // User 7 has orders 7, 107, 207; status OK only for multiples of 3 -> 207.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Int(207));
        assert_eq!(rows[0][1], Value::text("user7"));
    }

    #[test]
    fn concurrent_queries_share_one_batch() {
        let engine = build_engine(EngineConfig::default().heartbeat(Duration::from_millis(20)));
        let handles: Vec<_> = (0..50)
            .map(|i| {
                engine
                    .execute("ordersOfUser", &[Value::text(format!("user{}", i % 100))])
                    .unwrap()
            })
            .collect();
        for h in handles {
            let outcome = h.wait().unwrap();
            assert!(outcome.rows().len() <= 3);
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 50);
        // Batching must have grouped many queries into few batches.
        assert!(stats.batches < 50, "batches = {}", stats.batches);
    }

    #[test]
    fn index_probe_point_query() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine.execute_sync("userById", &[Value::Int(33)]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][1], Value::text("user33"));
    }

    #[test]
    fn attribution_sums_to_operator_busy_exactly() {
        let engine = build_engine(EngineConfig::default().heartbeat(Duration::from_millis(5)));
        // A mixed workload: three query types sharing the USERS/ORDERS scans.
        let mut handles = Vec::new();
        for i in 0..20i64 {
            handles.push(engine.execute("usersByCountry", &[]).unwrap());
            handles.push(
                engine
                    .execute("ordersOfUser", &[Value::text(format!("user{i}"))])
                    .unwrap(),
            );
            handles.push(engine.execute("topOrders", &[Value::Float(0.0)]).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let operators = engine.operator_stats();
        let attribution = engine.attribution_stats();
        // The invariant the whole attribution design hangs on: per operator,
        // the attributed busy times and rows — including the `_idle`
        // residual — sum EXACTLY to the operator's own counters.
        for op in &operators {
            let busy: Duration = attribution
                .iter()
                .filter(|e| e.operator == op.name)
                .map(|e| e.busy)
                .sum();
            assert_eq!(busy, op.busy, "busy mismatch for operator {}", op.name);
            let rows: u64 = attribution
                .iter()
                .filter(|e| e.operator == op.name)
                .map(|e| e.rows)
                .sum();
            assert_eq!(rows, op.tuples_out, "row mismatch for operator {}", op.name);
        }
        // The USERS scan is genuinely shared: at least two statement types
        // recorded activations on it.
        let users_scan = operators
            .iter()
            .find(|o| o.name.starts_with("Scan(USERS)"))
            .unwrap();
        let sharers: Vec<&str> = attribution
            .iter()
            .filter(|e| e.operator == users_scan.name && e.activations > 0)
            .map(|e| e.statement.as_str())
            .collect();
        assert!(
            sharers.len() >= 2,
            "expected a shared scan, got {sharers:?}"
        );
        engine.reset_stats();
        assert!(engine.attribution_stats().is_empty());
    }

    #[test]
    fn top_n_query_respects_limit() {
        let engine = build_engine(EngineConfig::default());
        let outcome = engine
            .execute_sync("topOrders", &[Value::Float(0.0)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 5);
        // Descending by TOTAL.
        let totals: Vec<f64> = outcome
            .rows()
            .iter()
            .map(|r| r[3].as_float().unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn updates_and_queries_interleave() {
        let engine = build_engine(EngineConfig::default());
        // Insert a new order for user 1 and then read it back via the join.
        let outcome = engine
            .execute_sync(
                "addOrder",
                &[Value::Int(10_000), Value::Int(1), Value::Float(99.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().iter().any(|r| r[4] == Value::Int(10_000)));
        // Delete the user's orders and observe the effect.
        let outcome = engine
            .execute_sync("cancelOrders", &[Value::Int(1)])
            .unwrap();
        assert!(outcome.rows_affected() >= 1);
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().is_empty());
    }

    #[test]
    fn unknown_statement_and_missing_params_fail_fast() {
        let engine = build_engine(EngineConfig::default());
        assert!(matches!(
            engine.execute("noSuchStatement", &[]),
            Err(Error::UnknownStatement(_))
        ));
        assert!(matches!(
            engine.execute("ordersOfUser", &[]),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn core_budget_one_still_completes() {
        let engine = build_engine(EngineConfig::with_cores(1));
        let handles: Vec<_> = (0..10)
            .map(|_| engine.execute("usersByCountry", &[]).unwrap())
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().rows().len(), 2);
        }
    }

    #[test]
    fn shutdown_fails_pending_work() {
        let mut engine = build_engine(EngineConfig::default());
        engine.shutdown();
        assert!(matches!(
            engine.execute("usersByCountry", &[]),
            Err(Error::EngineShutdown)
        ));
    }

    #[test]
    fn operator_stats_are_recorded() {
        let engine = build_engine(EngineConfig::default());
        engine.execute_sync("usersByCountry", &[]).unwrap();
        let stats = engine.operator_stats();
        assert_eq!(stats.len(), engine.plan().len());
        // The USERS scan must have processed at least one active cycle.
        let users_scan = stats
            .iter()
            .find(|s| s.name.starts_with("Scan(USERS)"))
            .unwrap();
        assert!(users_scan.active_cycles >= 1);
        assert!(users_scan.tuples_out >= 100);
    }

    #[test]
    fn scan_segments_zero_is_rejected() {
        let engine = build_engine(EngineConfig::default());
        let catalog = engine.catalog();
        let plan = engine.plan().clone();
        let registry = StatementRegistry::new();
        assert!(matches!(
            Engine::start(
                catalog,
                plan,
                registry,
                EngineConfig::default().scan_segments(0),
            ),
            Err(Error::InvalidParameter(_))
        ));
    }

    /// 1-segment vs N-segment result equality over every statement shape of
    /// the fixture: group-by (partial-aggregate merge), parameterised join →
    /// sort (ordered merge over co-partitioned scans), Top-N (ordered merge)
    /// and the probe-rooted point query (not eligible — whole lane).
    #[test]
    fn segmented_results_match_single_segment() {
        let baseline = build_engine(EngineConfig::default());
        let segmented = build_engine(EngineConfig::default().scan_segments(4));
        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("usersByCountry", vec![]),
            ("ordersOfUser", vec![Value::text("user7")]),
            ("ordersOfUser", vec![Value::text("user42")]),
            ("topOrders", vec![Value::Float(0.0)]),
            ("userById", vec![Value::Int(33)]),
        ];
        for (statement, params) in &cases {
            let want = baseline.execute_sync(statement, params).unwrap();
            let got = segmented.execute_sync(statement, params).unwrap();
            if *statement == "topOrders" {
                // The fixture's totals are full of ties, so WHICH tied rows
                // make the top 5 is unspecified (same as cluster fanout);
                // the ordering-key values must match exactly.
                let totals = |o: &QueryOutcome| -> Vec<Value> {
                    o.rows().iter().map(|r| r[3].clone()).collect()
                };
                assert_eq!(totals(&want), totals(&got), "topOrders keys diverged");
                continue;
            }
            let mut want_rows = want.rows().to_vec();
            let mut got_rows = got.rows().to_vec();
            // Grouped results have no guaranteed group order; ordered shapes
            // are already deterministic, so sorting is harmless there.
            want_rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            got_rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            assert_eq!(want_rows, got_rows, "statement {statement} diverged");
        }
        // The segment lane actually ran: every segment recorded work for the
        // eligible statements.
        let seg_stats = segmented.segment_stats();
        assert_eq!(seg_stats.len(), 4);
        for s in &seg_stats {
            assert!(s.batches >= 1, "segment {} never executed", s.segment);
        }
        assert!(baseline.segment_stats().is_empty());
    }

    /// Satellite regression: with N segments executing one batch
    /// concurrently, per-operator busy must not be the sum over segment
    /// lanes — the busy fraction of a scan must stay <= 1 relative to the
    /// engine's wall clock even at high segment counts.
    #[test]
    fn segment_busy_is_not_double_counted() {
        let engine = build_engine(EngineConfig::default().scan_segments(8));
        for _ in 0..5 {
            engine.execute_sync("usersByCountry", &[]).unwrap();
        }
        let wall = engine.stats_wall();
        for op in engine.operator_stats() {
            let fraction = op.busy_fraction(wall);
            assert!(
                fraction <= 1.0,
                "operator {} reports busy fraction {fraction} > 1",
                op.name
            );
        }
        // One logical execution per call: per-segment partial rows must not
        // inflate the delivered result-row count.
        assert_eq!(engine.stats().result_rows, 10);
    }

    /// Updates stay unsegmented and group-committed: a delete submitted
    /// between segmented reads is observed atomically by the next batch.
    #[test]
    fn segmented_reads_observe_unsegmented_updates() {
        let engine = build_engine(EngineConfig::default().scan_segments(3));
        engine
            .execute_sync(
                "addOrder",
                &[Value::Int(10_000), Value::Int(1), Value::Float(99.0)],
            )
            .unwrap();
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().iter().any(|r| r[4] == Value::Int(10_000)));
        engine
            .execute_sync("cancelOrders", &[Value::Int(1)])
            .unwrap();
        let rows = engine
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(rows.rows().is_empty());
    }

    #[test]
    fn wait_timeout_reports_deadline() {
        let engine = build_engine(EngineConfig::default());
        // A timeout of zero cannot be met.
        let handle = engine.execute("usersByCountry", &[]).unwrap();
        match handle.wait_timeout(Duration::from_nanos(1)) {
            Err(Error::DeadlineExceeded) | Ok(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    // -- priority admission lanes -------------------------------------------

    /// Fixture registration order: usersByCountry=0, ordersOfUser=1,
    /// userById=2, topOrders=3, addOrder=4, cancelOrders=5.
    #[test]
    fn lane_classification_follows_plan_shape_and_overrides() {
        let engine = build_engine(EngineConfig::default());
        // Probe-only shape is light; scans/joins/aggregates are heavy;
        // updates are always light (group-commit appends that gate RYW).
        assert!(matches!(engine.statement_lane(0), Lane::Heavy)); // group-by
        assert!(matches!(engine.statement_lane(1), Lane::Heavy)); // join+sort
        assert!(matches!(engine.statement_lane(2), Lane::Light)); // point probe
        assert!(matches!(engine.statement_lane(3), Lane::Heavy)); // top-N scan
        assert!(matches!(engine.statement_lane(4), Lane::Light)); // insert
        assert!(matches!(engine.statement_lane(5), Lane::Light)); // delete

        let engine = build_engine(
            EngineConfig::default()
                .heavy_statements(["userById"])
                .light_statements(["topOrders"]),
        );
        assert!(matches!(engine.statement_lane(2), Lane::Heavy)); // overridden
        assert!(matches!(engine.statement_lane(3), Lane::Light)); // overridden
                                                                  // Updates ignore the overrides.
        let engine = build_engine(EngineConfig::default().heavy_statements(["addOrder"]));
        assert!(matches!(engine.statement_lane(4), Lane::Light));
    }

    /// A saturated heavy lane must not block light admissions — and the
    /// exact queue-depth bound still spans both lanes.
    #[test]
    fn heavy_backlog_never_starves_light_admissions() {
        // min == max pins the adaptive interval: heavy batches are admitted
        // at most once per 300ms, light batches immediately.
        let policy = HeartbeatPolicy::parse("adaptive:300,300,50").unwrap();
        let engine = build_engine(EngineConfig::default().heartbeat_policy(policy));
        // Burn the initially-eligible heavy admission slot.
        engine
            .execute_sync("topOrders", &[Value::Float(0.0)])
            .unwrap();
        // Saturate the heavy lane; these wait for the next heavy admission.
        let heavy: Vec<_> = (0..16)
            .map(|_| engine.execute("topOrders", &[Value::Float(0.0)]).unwrap())
            .collect();
        // Light queries sail past the heavy backlog.
        let light_started = Instant::now();
        for i in 0..10 {
            let rows = engine.execute_sync("userById", &[Value::Int(i)]).unwrap();
            assert_eq!(rows.rows().len(), 1);
        }
        assert!(
            light_started.elapsed() < Duration::from_millis(250),
            "light queries waited behind the gated heavy lane: {:?}",
            light_started.elapsed()
        );
        let (_, heavy_depth) = engine.lane_depths();
        assert!(
            heavy_depth > 0,
            "heavy lane should still be gated while light queries completed"
        );
        // The heavy lane drains once its interval elapses — no lost work.
        for h in heavy {
            h.wait().unwrap();
        }

        // Exact bound across both lanes: block the coordinator with a pinned
        // heavy interval, fill the bound with heavy work, and watch a light
        // submission be rejected with the same bound.
        let policy = HeartbeatPolicy::parse("adaptive:400,400,50").unwrap();
        let engine = build_engine(EngineConfig::default().heartbeat_policy(policy));
        engine
            .execute_sync("topOrders", &[Value::Float(0.0)])
            .unwrap();
        let opts = |_i: usize| SubmitOptions {
            max_queue_depth: Some(4),
            ..SubmitOptions::default()
        };
        let mut held = Vec::new();
        for i in 0..4 {
            held.push(
                engine
                    .submit("topOrders", &[Value::Float(0.0)], opts(i))
                    .unwrap(),
            );
        }
        assert!(matches!(
            engine.submit("userById", &[Value::Int(1)], opts(4)),
            Err(Error::Overloaded(_))
        ));
        for h in held {
            h.wait().unwrap();
        }
    }

    // -- adaptive heartbeat controller --------------------------------------

    /// Heavy backlog with latency headroom grows the interval toward `max`;
    /// a subsequent light-only phase drifts it back down to `min`.
    #[test]
    fn adaptive_interval_tracks_load() {
        // Generous 50ms target: the tiny fixture never exceeds it, so the
        // only active control rules are grow-under-pressure and
        // drift-when-idle.
        let policy = HeartbeatPolicy::parse("adaptive:0.5,20,50").unwrap();
        let min = Duration::from_micros(500);
        let engine = build_engine(EngineConfig::default().heartbeat_policy(policy));
        assert_eq!(engine.heartbeat_interval(), min);
        // Waves of concurrent heavy queries: pressure >= GROW_PRESSURE per
        // batch, light p99 far under target/2.
        for _ in 0..6 {
            let wave: Vec<_> = (0..24)
                .map(|_| engine.execute("topOrders", &[Value::Float(0.0)]).unwrap())
                .collect();
            for h in wave {
                h.wait().unwrap();
            }
        }
        let grown = engine.heartbeat_interval();
        assert!(
            grown > min,
            "interval should grow under heavy backlog, still at {grown:?}"
        );
        assert!(engine.heartbeat_adjustments() > 0);
        // Light-only phase: single-statement batches keep pressure under
        // SHRINK_PRESSURE, so the interval decays back to the floor — one
        // shrink step per observation window (each spanning twice the
        // current interval), hence the deadline loop.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut i = 0i64;
        while engine.heartbeat_interval() > min && Instant::now() < deadline {
            engine
                .execute_sync("userById", &[Value::Int(i % 100)])
                .unwrap();
            i += 1;
        }
        assert_eq!(
            engine.heartbeat_interval(),
            min,
            "interval should drift back to min in a light phase"
        );
    }

    /// The adaptive policy keeps light p99 under the target where a fixed
    /// interval pinned at the adaptive `max` (the negative control)
    /// violates it: light queries there wait out the full batch pacing.
    #[test]
    fn adaptive_meets_light_slo_where_fixed_max_does_not() {
        let target = Duration::from_millis(5);
        let light_p99 = |engine: &Engine| {
            let light: Vec<usize> = (0..6)
                .filter(|&i| matches!(engine.statement_lane(i), Lane::Light))
                .collect();
            engine
                .inner
                .stats
                .merged_phase(&light, Phase::Total)
                .percentile_us(0.99)
        };
        // Negative control: fixed interval at the adaptive max, non-eager,
        // so every light query waits for the 10ms pacing.
        let fixed = build_engine(EngineConfig {
            heartbeat: HeartbeatPolicy::Fixed(Duration::from_millis(10)),
            eager_heartbeat: false,
            ..EngineConfig::default()
        });
        for i in 0..20 {
            fixed
                .execute_sync("userById", &[Value::Int(i % 100)])
                .unwrap();
        }
        let fixed_p99 = light_p99(&fixed);
        assert!(
            fixed_p99 > target.as_micros() as u64,
            "negative control: fixed-max pacing should violate the {target:?} target, p99 {fixed_p99}us"
        );
        // Adaptive with the same max admits light immediately.
        let policy = HeartbeatPolicy::parse("adaptive:0.5,10,5").unwrap();
        let adaptive = build_engine(EngineConfig::default().heartbeat_policy(policy));
        for i in 0..20 {
            adaptive
                .execute_sync("userById", &[Value::Int(i % 100)])
                .unwrap();
        }
        let adaptive_p99 = light_p99(&adaptive);
        assert!(
            adaptive_p99 <= target.as_micros() as u64,
            "adaptive policy should keep light p99 under {target:?}, got {adaptive_p99}us"
        );
    }

    // -- read-your-writes session fences ------------------------------------

    /// Two engines over one shared catalog emulate two replicas: a slow
    /// writer (50ms paced heartbeat) and a fast reader. A read carrying the
    /// session's write fence observes the write on every round; the
    /// unfenced negative control reads stale data.
    #[test]
    fn read_your_writes_fence_blocks_stale_reads() {
        let writer = build_engine(EngineConfig {
            heartbeat: HeartbeatPolicy::Fixed(Duration::from_millis(50)),
            eager_heartbeat: false,
            ..EngineConfig::default()
        });
        let reader = Engine::start(
            writer.catalog(),
            writer.plan().clone(),
            registry_like(&writer),
            EngineConfig::default(),
        )
        .unwrap();
        // Warm-up batch: the pacing clock starts already-elapsed, so the
        // first submission would commit immediately; consume that slot.
        writer.execute_sync("userById", &[Value::Int(0)]).unwrap();
        // Negative control first (on pristine data): pipelined write → read
        // without a fence races the writer's 50ms pacing and loses.
        let handle = writer
            .execute(
                "addOrder",
                &[Value::Int(20_000), Value::Int(1), Value::Float(1.0)],
            )
            .unwrap();
        let rows = reader
            .execute_sync("ordersOfUser", &[Value::text("user1")])
            .unwrap();
        assert!(
            !rows.rows().iter().any(|r| r[4] == Value::Int(20_000)),
            "unfenced pipelined read should miss the still-uncommitted write"
        );
        handle.wait().unwrap();
        // Fenced rounds: 100% of N pipelined write→read pairs observe the
        // session's write, whichever replica executes the read.
        for round in 0..10i64 {
            let fence = Arc::new(WriteFence::new());
            let write = writer
                .submit(
                    "addOrder",
                    &[Value::Int(30_000 + round), Value::Int(2), Value::Float(1.0)],
                    SubmitOptions {
                        write_fence: Some(Arc::clone(&fence)),
                        ..SubmitOptions::default()
                    },
                )
                .unwrap();
            let rows = reader
                .submit(
                    "ordersOfUser",
                    &[Value::text("user2")],
                    SubmitOptions {
                        read_after: Some(Arc::clone(&fence)),
                        ..SubmitOptions::default()
                    },
                )
                .unwrap()
                .wait()
                .unwrap();
            assert!(
                rows.rows()
                    .iter()
                    .any(|r| r[4] == Value::Int(30_000 + round)),
                "round {round}: fenced read missed the session's write"
            );
            write.wait().unwrap();
        }
    }

    /// A fence resolved by a *failed* write must not wedge fenced readers.
    #[test]
    fn failed_write_releases_its_fence() {
        let fence = WriteFence::new();
        assert_eq!(fence.committed_ts(), None);
        fence.resolve(0); // watermark 0: nothing ever committed
        assert_eq!(fence.committed_ts(), Some(0));
        fence.resolve(7);
        assert_eq!(fence.committed_ts(), Some(7));
        fence.resolve(3); // monotonic
        assert_eq!(fence.committed_ts(), Some(7));
    }

    /// Rebuilds the writer fixture's registry for a second engine over the
    /// same catalog and plan (registries are not cloneable through the
    /// engine, so re-register the same statement specs).
    fn registry_like(engine: &Engine) -> StatementRegistry {
        let mut registry = StatementRegistry::new();
        for spec in engine.registry().iter() {
            registry.register(spec.clone()).unwrap();
        }
        registry
    }
}

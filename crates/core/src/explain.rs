//! EXPLAIN / EXPLAIN ANALYZE over the live global plan.
//!
//! SharedDB never compiles a per-query plan, so a classical EXPLAIN ("the
//! plan this query will get") does not exist. What *does* exist — and what
//! this module renders — is the statement type's view of the always-on
//! [`GlobalPlan`]: the operator subtree under the statement's root, each node
//! annotated with its **sharing set** (which other registered statement types
//! run through the same operator). `EXPLAIN ANALYZE` additionally folds in
//! live runtime stats: per-node cycle/row/busy counters and the
//! per-statement-type cost attribution of
//! [`crate::stats::AttributionTable`], which is the only way to see who pays
//! for a shared cycle.
//!
//! Everything here is a pure function over plan + registry (+ optional
//! snapshots), so the server, the `plan_dump` bin and the golden-output
//! conformance tests all render through one code path.

use crate::plan::{GlobalPlan, OperatorId, StatementKind, StatementRegistry};
use crate::stats::{AttributionEntry, OperatorStatsSnapshot};
use std::fmt::Write as _;
use std::time::Duration;

/// One operator of an [`ExplainTree`], annotated with its sharing set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainNode {
    /// Operator id in the global plan.
    pub id: OperatorId,
    /// Operator name (e.g. `Scan(ITEM)#0`).
    pub name: String,
    /// Ids of the input operators.
    pub inputs: Vec<OperatorId>,
    /// Names of every statement type sharing this operator (reachability ∪
    /// activations over the whole registry), in registry order. Always
    /// includes the explained statement itself.
    pub sharing: Vec<String>,
    /// True when the explained statement has an activation template on this
    /// operator (as opposed to merely consuming its output downstream).
    pub activated: bool,
}

/// The annotated operator subtree of one statement type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainTree {
    /// Statement name.
    pub statement: String,
    /// Root operator (the statement's result source); `None` for updates,
    /// which bypass the operator plan entirely.
    pub root: Option<OperatorId>,
    /// The subtree nodes in ascending id order (empty for updates).
    pub nodes: Vec<ExplainNode>,
}

impl ExplainTree {
    /// The node for operator `id`, if it is part of this statement's subtree.
    pub fn node(&self, id: OperatorId) -> Option<&ExplainNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Nodes shared with at least one *other* statement type.
    pub fn shared_nodes(&self) -> Vec<&ExplainNode> {
        self.nodes.iter().filter(|n| n.sharing.len() > 1).collect()
    }
}

/// Live runtime stats folded into `EXPLAIN ANALYZE` output: per-operator
/// counters (indexed by operator id, full plan order), the attribution
/// snapshot, and the wall-clock window the counters cover.
#[derive(Debug, Clone)]
pub struct AnalyzeData {
    /// Per-operator counters in plan order.
    pub operators: Vec<OperatorStatsSnapshot>,
    /// Nonzero attribution cells (operator × statement type).
    pub attribution: Vec<AttributionEntry>,
    /// Wall-clock window the counters were accumulated over.
    pub wall: Duration,
}

/// The per-operator sharing sets of the whole plan: for each operator, the
/// ascending registry indices of every statement type whose subtree or
/// activation list touches it. An operator's **sharing factor** is the length
/// of its set — the quantity SharedDB exists to maximise.
pub fn sharing_sets(plan: &GlobalPlan, registry: &StatementRegistry) -> Vec<Vec<usize>> {
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); plan.len()];
    for (idx, spec) in registry.iter().enumerate() {
        let mut touched = vec![false; plan.len()];
        if let Some(root) = spec.root() {
            mark_subtree(plan, root, &mut touched);
        }
        for (op, _) in &spec.activations {
            touched[*op] = true;
        }
        for (op, hit) in touched.iter().enumerate() {
            if *hit {
                sets[op].push(idx);
            }
        }
    }
    sets
}

fn mark_subtree(plan: &GlobalPlan, root: OperatorId, touched: &mut [bool]) {
    if touched[root] {
        return;
    }
    touched[root] = true;
    for &input in &plan.node(root).inputs {
        mark_subtree(plan, input, touched);
    }
}

/// Builds the annotated subtree for the statement at `index`.
pub fn explain_statement(
    plan: &GlobalPlan,
    registry: &StatementRegistry,
    index: usize,
) -> ExplainTree {
    let spec = registry.by_index(index);
    let root = spec.root();
    let mut nodes = Vec::new();
    if let Some(root) = root {
        let sets = sharing_sets(plan, registry);
        let mut touched = vec![false; plan.len()];
        mark_subtree(plan, root, &mut touched);
        for (op, _) in &spec.activations {
            touched[*op] = true;
        }
        for node in plan.nodes() {
            if !touched[node.id] {
                continue;
            }
            nodes.push(ExplainNode {
                id: node.id,
                name: node.name.clone(),
                inputs: node.inputs.clone(),
                sharing: sets[node.id]
                    .iter()
                    .map(|&s| registry.by_index(s).name.clone())
                    .collect(),
                activated: spec.activations.iter().any(|(o, _)| *o == node.id),
            });
        }
    }
    ExplainTree {
        statement: spec.name.clone(),
        root,
        nodes,
    }
}

/// Renders the statement's annotated subtree as indented text — the body of
/// an `EXPLAIN [ANALYZE]` reply. Deterministic for a fixed plan + registry
/// (golden-tested over the SQL conformance corpus); `analyze` appends live
/// counters and the per-statement attributed costs under each node.
pub fn render_explain_text(
    plan: &GlobalPlan,
    registry: &StatementRegistry,
    index: usize,
    analyze: Option<&AnalyzeData>,
) -> String {
    let tree = explain_statement(plan, registry, index);
    let spec = registry.by_index(index);
    let mut out = String::new();
    match (&spec.kind, tree.root) {
        (StatementKind::Update { table, .. }, _) => {
            let _ = writeln!(
                out,
                "statement {}: update on table {table} (no shared operators; applied \
                 by the storage owner of {table})",
                tree.statement
            );
        }
        (_, Some(root)) => {
            let _ = writeln!(out, "statement {}: query", tree.statement);
            render_node_text(&tree, root, 1, analyze, &mut out);
        }
        (_, None) => {
            let _ = writeln!(out, "statement {}: query (no root)", tree.statement);
        }
    }
    out
}

fn render_node_text(
    tree: &ExplainTree,
    id: OperatorId,
    depth: usize,
    analyze: Option<&AnalyzeData>,
    out: &mut String,
) {
    let Some(node) = tree.node(id) else { return };
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{} [shared by {}: {}]",
        node.name,
        node.sharing.len(),
        node.sharing.join(", ")
    );
    if node.activated {
        out.push_str(" (activated)");
    }
    out.push('\n');
    if let Some(data) = analyze {
        if let Some(op) = data.operators.get(id) {
            let _ = writeln!(
                out,
                "{indent}  · cycles={} active={} rows={} busy={}us",
                op.cycles,
                op.active_cycles,
                op.tuples_out,
                op.busy.as_micros()
            );
        }
        for entry in data.attribution.iter().filter(|e| {
            e.operator == node.name && (e.activations > 0 || e.rows > 0 || !e.busy.is_zero())
        }) {
            let _ = writeln!(
                out,
                "{indent}  · attributed {}: activations={} rows={} busy={}us",
                entry.statement,
                entry.activations,
                entry.rows,
                entry.busy.as_micros()
            );
        }
    }
    for &input in &node.inputs {
        render_node_text(tree, input, depth + 1, analyze, out);
    }
}

/// Renders the whole plan as a Graphviz digraph, with the subtree of the
/// statement at `index` (when given) filled and every node labelled with its
/// sharing factor. Edges point data-flow-wise, input → consumer.
pub fn render_dot(
    plan: &GlobalPlan,
    registry: &StatementRegistry,
    highlight: Option<usize>,
) -> String {
    let sets = sharing_sets(plan, registry);
    let mut touched = vec![false; plan.len()];
    if let Some(index) = highlight {
        let spec = registry.by_index(index);
        if let Some(root) = spec.root() {
            mark_subtree(plan, root, &mut touched);
        }
        for (op, _) in &spec.activations {
            touched[*op] = true;
        }
    }
    let mut out = String::from("digraph global_plan {\n  rankdir=BT;\n  node [shape=box];\n");
    for node in plan.nodes() {
        let style = if touched[node.id] {
            ", style=filled, fillcolor=lightgoldenrod"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  op{} [label=\"{}\\nshared by {}\"{style}];",
            node.id,
            node.name.replace('"', "\\\""),
            sets[node.id].len()
        );
    }
    for node in plan.nodes() {
        for &input in &node.inputs {
            let _ = writeln!(out, "  op{input} -> op{};", node.id);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ActivationTemplate, PlanBuilder, StatementSpec, UpdateTemplate};
    use shareddb_common::{DataType, Expr, SortKey};
    use shareddb_storage::{Catalog, TableDef};

    fn fixture() -> (GlobalPlan, StatementRegistry) {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("T")
                    .column("ID", DataType::Int)
                    .column("V", DataType::Int)
                    .primary_key(&["ID"]),
            )
            .unwrap();
        let mut builder = PlanBuilder::new(&catalog);
        let scan = builder.table_scan("T").unwrap();
        let sort = builder.sort(scan, vec![SortKey::asc(0)]).unwrap();
        let plan = builder.build();
        let mut registry = StatementRegistry::new();
        registry
            .register(StatementSpec::query("pointT", scan).activate(
                scan,
                ActivationTemplate::Scan {
                    predicate: Expr::col(0).eq(Expr::param(0)),
                },
            ))
            .unwrap();
        registry
            .register(
                StatementSpec::query("allT", sort)
                    .activate(
                        scan,
                        ActivationTemplate::Scan {
                            predicate: Expr::lit(true),
                        },
                    )
                    .activate(sort, ActivationTemplate::Participate),
            )
            .unwrap();
        registry
            .register(StatementSpec::update(
                "addT",
                "T",
                UpdateTemplate::Insert {
                    values: vec![Expr::lit(0i64), Expr::lit(0i64)],
                },
            ))
            .unwrap();
        registry.validate(&plan).unwrap();
        (plan, registry)
    }

    #[test]
    fn sharing_sets_cover_subtrees_and_activations() {
        let (plan, registry) = fixture();
        let sets = sharing_sets(&plan, &registry);
        // The scan is shared by both queries; the sort only by allT; the
        // update statement shares nothing.
        assert_eq!(sets[0], vec![0, 1]);
        assert_eq!(sets[1], vec![1]);
    }

    #[test]
    fn explain_tree_annotates_sharing_and_activation() {
        let (plan, registry) = fixture();
        let tree = explain_statement(&plan, &registry, 1);
        assert_eq!(tree.statement, "allT");
        assert_eq!(tree.nodes.len(), 2);
        let scan = tree.node(0).unwrap();
        assert_eq!(scan.sharing, vec!["pointT".to_string(), "allT".to_string()]);
        assert!(scan.activated);
        let sort = tree.node(1).unwrap();
        assert_eq!(sort.sharing, vec!["allT".to_string()]);
        assert!(sort.activated);
        assert_eq!(tree.shared_nodes().len(), 1);
        // From pointT's side the sort is invisible (not in its subtree).
        let point = explain_statement(&plan, &registry, 0);
        assert_eq!(point.nodes.len(), 1);
        assert!(point.node(1).is_none());
    }

    #[test]
    fn text_rendering_is_deterministic_and_marks_updates() {
        let (plan, registry) = fixture();
        let text = render_explain_text(&plan, &registry, 1, None);
        assert!(text.starts_with("statement allT: query\n"));
        assert!(text.contains("[shared by 2: pointT, allT]"));
        assert_eq!(text, render_explain_text(&plan, &registry, 1, None));
        let update = render_explain_text(&plan, &registry, 2, None);
        assert!(update.contains("update on table T"));
        let dot = render_dot(&plan, &registry, Some(1));
        assert!(dot.starts_with("digraph global_plan {"));
        assert!(dot.contains("op0 -> op1;"));
        assert!(dot.contains("fillcolor=lightgoldenrod"));
    }

    #[test]
    fn analyze_appends_runtime_and_attribution() {
        let (plan, registry) = fixture();
        let data = AnalyzeData {
            operators: vec![
                OperatorStatsSnapshot {
                    name: plan.node(0).name.clone(),
                    cycles: 4,
                    active_cycles: 3,
                    tuples_out: 12,
                    busy: Duration::from_micros(90),
                },
                OperatorStatsSnapshot {
                    name: plan.node(1).name.clone(),
                    cycles: 4,
                    active_cycles: 1,
                    tuples_out: 12,
                    busy: Duration::from_micros(30),
                },
            ],
            attribution: vec![AttributionEntry {
                operator: plan.node(0).name.clone(),
                statement: "pointT".into(),
                activations: 3,
                rows: 9,
                busy: Duration::from_micros(60),
            }],
            wall: Duration::from_secs(1),
        };
        let text = render_explain_text(&plan, &registry, 0, Some(&data));
        assert!(text.contains("cycles=4 active=3 rows=12 busy=90us"));
        assert!(text.contains("attributed pointT: activations=3 rows=9 busy=60us"));
    }
}

//! Storage-backed plan operators: shared scans and shared index probes.
//!
//! These adapt the activations of the current batch to the batch interfaces of
//! the `shareddb-storage` operators ([`ClockScan`] and [`IndexProbe`]) and
//! return tuples in the data-query model. Updates are *not* routed through
//! these adapters: the engine applies the updates of a batch through
//! [`Catalog::apply_batch`] (one commit timestamp per heartbeat, group commit
//! into the WAL) before any storage read of the batch runs, which gives every
//! query of the batch a snapshot that includes the batch's own updates — the
//! same ordering ClockScan implements internally.

use crate::batch::Activation;
use shareddb_common::{Error, QTuple, QueryId, Result};
use shareddb_storage::{Catalog, ClockScan, IndexProbe, ProbeQuery, ScanQuery};
use std::sync::Arc;

/// A storage operator instance owned by one plan node.
pub enum StorageOperator {
    /// Shared full-table scan.
    Scan(ClockScan),
    /// Shared index probe.
    Probe(IndexProbe),
}

impl StorageOperator {
    /// Creates the storage operator for a `TableScan` plan node.
    pub fn scan(catalog: &Catalog, table: &str) -> Result<Self> {
        Ok(StorageOperator::Scan(ClockScan::new(
            catalog.table(table)?,
            catalog.oracle(),
        )))
    }

    /// Creates the storage operator for an `IndexProbe` plan node.
    pub fn probe(catalog: &Catalog, table: &str) -> Result<Self> {
        Ok(StorageOperator::Probe(IndexProbe::new(
            catalog.table(table)?,
            catalog.oracle(),
        )))
    }

    /// Executes the storage operator for one batch of activations.
    pub fn execute(&self, activations: &[(QueryId, Activation)]) -> Result<Vec<QTuple>> {
        match self {
            StorageOperator::Scan(scan) => {
                let queries: Vec<ScanQuery> = activations
                    .iter()
                    .map(|(q, a)| match a {
                        Activation::Scan { predicate } => Ok(ScanQuery::new(*q, predicate.clone())),
                        other => Err(Error::Internal(format!(
                            "scan operator received a non-scan activation: {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                Ok(scan.execute_batch(&queries, &[])?.tuples)
            }
            StorageOperator::Probe(probe) => {
                let queries: Vec<ProbeQuery> = activations
                    .iter()
                    .map(|(q, a)| match a {
                        Activation::Probe {
                            column,
                            range,
                            residual,
                        } => {
                            let mut pq = ProbeQuery::range(*q, *column, range.clone());
                            if let Some(residual) = residual {
                                pq = pq.with_residual(residual.clone());
                            }
                            Ok(pq)
                        }
                        other => Err(Error::Internal(format!(
                            "probe operator received a non-probe activation: {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                Ok(probe.execute_batch(&queries, &[])?.tuples)
            }
        }
    }
}

/// Builds the storage operator instances for every storage node of a plan.
pub fn build_storage_operators(
    catalog: &Arc<Catalog>,
    plan: &crate::plan::GlobalPlan,
) -> Result<Vec<Option<StorageOperator>>> {
    plan.nodes()
        .iter()
        .map(|node| match &node.spec {
            crate::plan::OperatorSpec::TableScan { table } => {
                StorageOperator::scan(catalog, table).map(Some)
            }
            crate::plan::OperatorSpec::IndexProbe { table } => {
                StorageOperator::probe(catalog, table).map(Some)
            }
            _ => Ok(None),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, DataType, Expr, Value};
    use shareddb_storage::{ProbeRange, TableDef};

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..50i64)
                    .map(|i| tuple![i, if i % 5 == 0 { "HISTORY" } else { "FICTION" }])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    #[test]
    fn scan_operator_executes_activations() {
        let catalog = catalog();
        let scan = StorageOperator::scan(&catalog, "ITEM").unwrap();
        let out = scan
            .execute(&[
                (
                    QueryId(1),
                    Activation::Scan {
                        predicate: Expr::col(1).eq(Expr::lit("HISTORY")),
                    },
                ),
                (
                    QueryId(2),
                    Activation::Scan {
                        predicate: Expr::col(0).lt(Expr::lit(3i64)),
                    },
                ),
            ])
            .unwrap();
        let q1 = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .count();
        let q2 = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .count();
        assert_eq!(q1, 10);
        assert_eq!(q2, 3);
        // Wrong activation kind is rejected.
        assert!(scan
            .execute(&[(QueryId(1), Activation::Participate)])
            .is_err());
    }

    #[test]
    fn probe_operator_executes_activations() {
        let catalog = catalog();
        let probe = StorageOperator::probe(&catalog, "ITEM").unwrap();
        let out = probe
            .execute(&[(
                QueryId(7),
                Activation::Probe {
                    column: 0,
                    range: ProbeRange::Key(Value::Int(10)),
                    residual: None,
                },
            )])
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple[0], Value::Int(10));
        assert!(probe
            .execute(&[(QueryId(1), Activation::Participate)])
            .is_err());
    }

    #[test]
    fn build_for_plan_nodes() {
        let catalog = catalog();
        let mut b = crate::plan::PlanBuilder::new(&catalog);
        let scan = b.table_scan("ITEM").unwrap();
        let probe = b.index_probe("ITEM").unwrap();
        let filter = b.filter(scan).unwrap();
        let plan = b.build();
        let ops = build_storage_operators(&catalog, &plan).unwrap();
        assert!(ops[scan].is_some());
        assert!(ops[probe].is_some());
        assert!(ops[filter].is_none());
    }
}

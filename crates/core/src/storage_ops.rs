//! Storage-backed plan operators: shared scans and shared index probes.
//!
//! These adapt the activations of the current batch to the batch interfaces of
//! the `shareddb-storage` operators ([`ClockScan`] and [`IndexProbe`]) and
//! return tuples in the data-query model. Updates are *not* routed through
//! these adapters: the engine applies the updates of a batch through
//! [`Catalog::apply_batch`] (one commit timestamp per heartbeat, group commit
//! into the WAL) before any storage read of the batch runs, which gives every
//! query of the batch a snapshot that includes the batch's own updates — the
//! same ordering ClockScan implements internally.

use crate::batch::Activation;
use shareddb_common::{Error, QTuple, QueryId, Result};
use shareddb_storage::{Catalog, ClockScan, IndexProbe, ProbeQuery, ScanQuery, SegmentView};
use std::sync::Arc;

// The stable pk-hash partition function lives in `shareddb-common` so the
// storage layer's segment-view cursor can apply the same hash below the
// predicate index; re-exported here because the cluster layer historically
// imports it from this module.
pub use shareddb_common::partition::tuple_partition;

/// A storage operator instance owned by one plan node.
pub enum StorageOperator {
    /// Shared full-table scan (with the table's primary-key columns, the
    /// stable identity rows are partitioned by).
    Scan {
        /// The shared scan.
        scan: ClockScan,
        /// Primary-key column indices (empty = no primary key).
        key_columns: Vec<usize>,
    },
    /// Shared index probe.
    Probe(IndexProbe),
}

impl StorageOperator {
    /// Creates the storage operator for a `TableScan` plan node.
    pub fn scan(catalog: &Catalog, table: &str) -> Result<Self> {
        let handle = catalog.table(table)?;
        let key_columns = handle.read().primary_key().to_vec();
        Ok(StorageOperator::Scan {
            scan: ClockScan::new(handle, catalog.oracle()),
            key_columns,
        })
    }

    /// Creates the storage operator for an `IndexProbe` plan node.
    pub fn probe(catalog: &Catalog, table: &str) -> Result<Self> {
        Ok(StorageOperator::Probe(IndexProbe::new(
            catalog.table(table)?,
            catalog.oracle(),
        )))
    }

    /// Executes the storage operator for one batch of activations.
    pub fn execute(&self, activations: &[(QueryId, Activation)]) -> Result<Vec<QTuple>> {
        match self {
            StorageOperator::Scan { scan, key_columns } => {
                let mut partitioned: Vec<PartitionedQuery<'_>> = Vec::new();
                let mut segmented: Vec<PartitionedQuery<'_>> = Vec::new();
                let queries: Vec<ScanQuery> = activations
                    .iter()
                    .map(|(q, a)| match a {
                        Activation::Scan {
                            predicate,
                            partition,
                            partition_columns,
                            segment,
                            snapshot,
                        } => {
                            if let Some(partition) = partition {
                                partitioned.push((*q, *partition, partition_columns.as_ref()));
                            }
                            if let Some(segment) = segment {
                                segmented.push((*q, *segment, partition_columns.as_ref()));
                            }
                            Ok(ScanQuery::new(*q, predicate.clone()).at_snapshot(*snapshot))
                        }
                        other => Err(Error::Internal(format!(
                            "scan operator received a non-scan activation: {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                // Fast path: when every activation of the call reads the same
                // segment with the same hash columns (the per-segment jobs of
                // the engine's segment pool always do), the restriction
                // becomes a segment-view cursor — rows outside the segment
                // are skipped before the predicate index evaluates them.
                let view = uniform_view(&segmented, activations.len(), key_columns);
                let mut tuples = scan
                    .execute_batch_segmented(&queries, &[], view.as_ref())?
                    .tuples;
                // Partitioned (and mixed-segment) activations only subscribe
                // to their slice of the table: unsubscribe them from
                // out-of-slice rows and drop tuples no query is interested in
                // any more. Each activation hashes either the table's primary
                // key (stable row identity) or its per-operator column
                // override (e.g. the join key of a co-partitioned fanout —
                // which also takes precedence over pk segmenting).
                let residual: Vec<&PartitionedQuery<'_>> = partitioned
                    .iter()
                    .chain(if view.is_some() {
                        [].iter()
                    } else {
                        segmented.iter()
                    })
                    .collect();
                if !residual.is_empty() {
                    tuples.retain_mut(|t| {
                        for (q, (index, of), columns) in &residual {
                            let hash_columns = columns.map(|c| c.as_slice()).unwrap_or(key_columns);
                            if t.queries.contains(*q)
                                && tuple_partition(&t.tuple, hash_columns, *of) != *index
                            {
                                t.queries.remove(*q);
                            }
                        }
                        !t.queries.is_empty()
                    });
                }
                Ok(tuples)
            }
            StorageOperator::Probe(probe) => {
                let queries: Vec<ProbeQuery> = activations
                    .iter()
                    .map(|(q, a)| match a {
                        Activation::Probe {
                            column,
                            range,
                            residual,
                            snapshot,
                        } => {
                            let mut pq = ProbeQuery::range(*q, *column, range.clone())
                                .at_snapshot(*snapshot);
                            if let Some(residual) = residual {
                                pq = pq.with_residual(residual.clone());
                            }
                            Ok(pq)
                        }
                        other => Err(Error::Internal(format!(
                            "probe operator received a non-probe activation: {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                Ok(probe.execute_batch(&queries, &[])?.tuples)
            }
        }
    }
}

/// A query's partition restriction: `(query, (index, of), hash-column
/// override)`.
type PartitionedQuery<'a> = (QueryId, (u32, u32), Option<&'a Vec<usize>>);

/// The shared [`SegmentView`] when *all* activations of a scan call restrict
/// to one identical segment with identical hash columns, `None` otherwise
/// (then the per-query retain pass applies the segment restrictions).
fn uniform_view(
    segmented: &[PartitionedQuery<'_>],
    total_activations: usize,
    key_columns: &[usize],
) -> Option<SegmentView> {
    if segmented.is_empty() || segmented.len() != total_activations {
        return None;
    }
    let (_, (index, of), first_cols) = &segmented[0];
    let cols = first_cols.map(|c| c.as_slice()).unwrap_or(key_columns);
    let uniform = segmented.iter().all(|(_, seg, c)| {
        *seg == (*index, *of) && c.map(|c| c.as_slice()).unwrap_or(key_columns) == cols
    });
    uniform.then(|| SegmentView {
        index: *index,
        of: *of,
        key_columns: cols.to_vec(),
    })
}

/// Builds the storage operator instances for every storage node of a plan.
pub fn build_storage_operators(
    catalog: &Arc<Catalog>,
    plan: &crate::plan::GlobalPlan,
) -> Result<Vec<Option<StorageOperator>>> {
    plan.nodes()
        .iter()
        .map(|node| match &node.spec {
            crate::plan::OperatorSpec::TableScan { table } => {
                StorageOperator::scan(catalog, table).map(Some)
            }
            crate::plan::OperatorSpec::IndexProbe { table } => {
                StorageOperator::probe(catalog, table).map(Some)
            }
            _ => Ok(None),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, DataType, Expr, Value};
    use shareddb_storage::{ProbeRange, TableDef};

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..50i64)
                    .map(|i| tuple![i, if i % 5 == 0 { "HISTORY" } else { "FICTION" }])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    fn scan_act(predicate: Expr, partition: Option<(u32, u32)>) -> Activation {
        Activation::Scan {
            predicate,
            partition,
            partition_columns: None,
            segment: None,
            snapshot: None,
        }
    }

    #[test]
    fn scan_operator_executes_activations() {
        let catalog = catalog();
        let scan = StorageOperator::scan(&catalog, "ITEM").unwrap();
        let out = scan
            .execute(&[
                (
                    QueryId(1),
                    scan_act(Expr::col(1).eq(Expr::lit("HISTORY")), None),
                ),
                (QueryId(2), scan_act(Expr::col(0).lt(Expr::lit(3i64)), None)),
            ])
            .unwrap();
        let q1 = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .count();
        let q2 = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .count();
        assert_eq!(q1, 10);
        assert_eq!(q2, 3);
        // Wrong activation kind is rejected.
        assert!(scan
            .execute(&[(QueryId(1), Activation::Participate)])
            .is_err());
    }

    #[test]
    fn probe_operator_executes_activations() {
        let catalog = catalog();
        let probe = StorageOperator::probe(&catalog, "ITEM").unwrap();
        let out = probe
            .execute(&[(
                QueryId(7),
                Activation::Probe {
                    column: 0,
                    range: ProbeRange::Key(Value::Int(10)),
                    residual: None,
                    snapshot: None,
                },
            )])
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple[0], Value::Int(10));
        assert!(probe
            .execute(&[(QueryId(1), Activation::Participate)])
            .is_err());
    }

    /// Partitioned scan activations split a table into disjoint, complete
    /// slices: the union over all partitions equals the unpartitioned scan
    /// and no row lands in two partitions.
    #[test]
    fn partitioned_scans_are_disjoint_and_complete() {
        let catalog = catalog();
        let scan = StorageOperator::scan(&catalog, "ITEM").unwrap();
        const OF: u32 = 4;
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for index in 0..OF {
            let out = scan
                .execute(&[(QueryId(1), scan_act(Expr::lit(true), Some((index, OF))))])
                .unwrap();
            for t in &out {
                assert_eq!(tuple_partition(&t.tuple, &[0], OF), index);
                assert!(seen.insert(t.tuple[0].clone()), "row in two partitions");
                total += 1;
            }
        }
        assert_eq!(total, 50);
        // A mixed batch: one partitioned and one unpartitioned query share
        // the scan; the unpartitioned one still sees every row.
        let out = scan
            .execute(&[
                (QueryId(1), scan_act(Expr::lit(true), Some((0, OF)))),
                (QueryId(2), scan_act(Expr::lit(true), None)),
            ])
            .unwrap();
        let q2: usize = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .count();
        assert_eq!(q2, 50);
        let q1: usize = out
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .count();
        assert!(q1 < 50, "partition 0 of 4 held the whole table");
    }

    /// A per-operator column override hashes the named columns instead of the
    /// primary key, and the override partitions stay disjoint and complete —
    /// this is what co-partitions the probe side of a fanned-out equi-join by
    /// the join key.
    #[test]
    fn partition_column_override_is_disjoint_and_complete() {
        let catalog = catalog();
        let scan = StorageOperator::scan(&catalog, "ITEM").unwrap();
        const OF: u32 = 3;
        let override_cols = vec![1usize]; // hash I_SUBJECT, not the pk
        let mut total = 0usize;
        for index in 0..OF {
            let out = scan
                .execute(&[(
                    QueryId(1),
                    Activation::Scan {
                        predicate: Expr::lit(true),
                        partition: Some((index, OF)),
                        partition_columns: Some(override_cols.clone()),
                        segment: None,
                        snapshot: None,
                    },
                )])
                .unwrap();
            for t in &out {
                assert_eq!(tuple_partition(&t.tuple, &override_cols, OF), index);
                total += 1;
            }
        }
        assert_eq!(total, 50);
        // All rows with the same override-column value land in one partition.
        let history_partition = tuple_partition(&tuple![0i64, "HISTORY"], &override_cols, OF);
        let out = scan
            .execute(&[(
                QueryId(1),
                Activation::Scan {
                    predicate: Expr::lit(true),
                    partition: Some((history_partition, OF)),
                    partition_columns: Some(override_cols.clone()),
                    segment: None,
                    snapshot: None,
                },
            )])
            .unwrap();
        assert_eq!(
            out.iter()
                .filter(|t| t.tuple[1] == Value::text("HISTORY"))
                .count(),
            10,
            "co-partitioning split a key group across partitions"
        );
    }

    /// A pinned snapshot flows through the scan adapter: the query reads the
    /// pinned version set even after later commits.
    #[test]
    fn pinned_snapshot_flows_through_scan() {
        let catalog = catalog();
        let scan = StorageOperator::scan(&catalog, "ITEM").unwrap();
        let pinned = catalog.snapshot();
        catalog
            .apply_batch(&[(
                "ITEM".into(),
                shareddb_storage::UpdateOp::Delete {
                    predicate: Expr::lit(true),
                },
            )])
            .unwrap();
        let out = scan
            .execute(&[
                (
                    QueryId(1),
                    Activation::Scan {
                        predicate: Expr::lit(true),
                        partition: None,
                        partition_columns: None,
                        segment: None,
                        snapshot: Some(pinned),
                    },
                ),
                (QueryId(2), scan_act(Expr::lit(true), None)),
            ])
            .unwrap();
        let count = |q: u32| {
            out.iter()
                .filter(|t| t.queries.contains(QueryId(q)))
                .count()
        };
        assert_eq!(count(1), 50, "pinned query lost the old version set");
        assert_eq!(count(2), 0);
    }

    #[test]
    fn partition_of_one_is_identity() {
        let t = shareddb_common::tuple![1i64, "x"];
        assert_eq!(tuple_partition(&t, &[0], 0), 0);
        assert_eq!(tuple_partition(&t, &[0], 1), 0);
        // Stable across calls, and key-based: updating a non-key column
        // never moves the row to another partition.
        assert_eq!(tuple_partition(&t, &[0], 7), tuple_partition(&t, &[0], 7));
        let updated = shareddb_common::tuple![1i64, "y"];
        assert_eq!(
            tuple_partition(&t, &[0], 7),
            tuple_partition(&updated, &[0], 7)
        );
        // Without a primary key the whole tuple is the identity.
        assert_ne!(
            tuple_partition(&t, &[], 1 << 30),
            tuple_partition(&updated, &[], 1 << 30)
        );
    }

    #[test]
    fn build_for_plan_nodes() {
        let catalog = catalog();
        let mut b = crate::plan::PlanBuilder::new(&catalog);
        let scan = b.table_scan("ITEM").unwrap();
        let probe = b.index_probe("ITEM").unwrap();
        let filter = b.filter(scan).unwrap();
        let plan = b.build();
        let ops = build_storage_operators(&catalog, &plan).unwrap();
        assert!(ops[scan].is_some());
        assert!(ops[probe].is_some());
        assert!(ops[filter].is_none());
    }
}

//! Engine and operator statistics.
//!
//! SharedDB's value proposition is *predictability*: the engine therefore
//! keeps cheap, always-on counters — per-operator cycle counts and busy time,
//! and engine-level batch/query/latency counters — which the benchmark
//! harnesses read to produce the paper's figures.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Point-in-time snapshot of one operator's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorStatsSnapshot {
    /// Operator name.
    pub name: String,
    /// Number of cycles (batches) processed.
    pub cycles: u64,
    /// Number of cycles that had at least one active query.
    pub active_cycles: u64,
    /// Total tuples emitted.
    pub tuples_out: u64,
    /// Total busy time across cycles.
    pub busy: Duration,
}

/// Mutable per-operator counters (owned by the engine, updated by operator
/// threads).
#[derive(Debug, Default)]
pub struct OperatorStats {
    cycles: AtomicU64,
    active_cycles: AtomicU64,
    tuples_out: AtomicU64,
    busy_nanos: AtomicU64,
}

impl OperatorStats {
    /// Records one processed cycle.
    pub fn record_cycle(&self, had_queries: bool, tuples_out: usize, busy: Duration) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
        if had_queries {
            self.active_cycles.fetch_add(1, Ordering::Relaxed);
        }
        self.tuples_out
            .fetch_add(tuples_out as u64, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self, name: &str) -> OperatorStatsSnapshot {
        OperatorStatsSnapshot {
            name: name.to_string(),
            cycles: self.cycles.load(Ordering::Relaxed),
            active_cycles: self.active_cycles.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Engine-level statistics.
#[derive(Debug, Default)]
pub struct EngineStats {
    batches: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    failed: AtomicU64,
    result_rows: AtomicU64,
    /// Sum of query latencies in nanoseconds (submission to completion).
    latency_nanos: AtomicU64,
    /// Maximum observed latency in nanoseconds.
    max_latency_nanos: AtomicU64,
    /// Latency histogram with fixed bucket boundaries (µs).
    histogram: Mutex<LatencyHistogram>,
}

/// A simple fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Upper bounds of the buckets, in microseconds.
    pub bounds_us: Vec<u64>,
    /// Observation counts per bucket (last bucket is the overflow bucket).
    pub counts: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        // 10µs .. ~100s in roughly geometric steps.
        let bounds_us = vec![
            10,
            25,
            50,
            100,
            250,
            500,
            1_000,
            2_500,
            5_000,
            10_000,
            25_000,
            50_000,
            100_000,
            250_000,
            500_000,
            1_000_000,
            2_500_000,
            5_000_000,
            10_000_000,
            100_000_000,
        ];
        let counts = vec![0; bounds_us.len() + 1];
        LatencyHistogram { bounds_us, counts }
    }
}

impl LatencyHistogram {
    fn observe(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        let idx = self
            .bounds_us
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds_us.len());
        self.counts[idx] += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns the upper bound (µs) of the bucket containing the requested
    /// percentile (0.0 ..= 1.0), or `None` when empty. This is the statistic
    /// used for "99% of queries answered within X" SLA checks.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return Some(self.bounds_us.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Point-in-time snapshot of the engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStatsSnapshot {
    /// Number of processed batches (heartbeats with work).
    pub batches: u64,
    /// Number of completed queries.
    pub queries: u64,
    /// Number of completed updates.
    pub updates: u64,
    /// Number of failed queries/updates.
    pub failed: u64,
    /// Total result rows delivered.
    pub result_rows: u64,
    /// Mean query latency.
    pub mean_latency: Duration,
    /// Maximum query latency.
    pub max_latency: Duration,
    /// 99th-percentile latency upper bound.
    pub p99_latency: Duration,
}

impl EngineStats {
    /// Records a completed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed query with its end-to-end latency.
    pub fn record_query(&self, rows: usize, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.result_rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a completed update with its end-to-end latency.
    pub fn record_update(&self, latency: Duration) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a failed query or update.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    fn record_latency(&self, latency: Duration) {
        let nanos = latency.as_nanos() as u64;
        self.latency_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_latency_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.histogram.lock().observe(latency);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let updates = self.updates.load(Ordering::Relaxed);
        let completed = queries + updates;
        let total_latency = self.latency_nanos.load(Ordering::Relaxed);
        let histogram = self.histogram.lock();
        EngineStatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            queries,
            updates,
            failed: self.failed.load(Ordering::Relaxed),
            result_rows: self.result_rows.load(Ordering::Relaxed),
            mean_latency: Duration::from_nanos(total_latency.checked_div(completed).unwrap_or(0)),
            max_latency: Duration::from_nanos(self.max_latency_nanos.load(Ordering::Relaxed)),
            p99_latency: Duration::from_micros(histogram.percentile_us(0.99).unwrap_or(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_stats_accumulate() {
        let stats = OperatorStats::default();
        stats.record_cycle(true, 10, Duration::from_millis(2));
        stats.record_cycle(false, 0, Duration::from_millis(1));
        let snap = stats.snapshot("HashJoin#3");
        assert_eq!(snap.cycles, 2);
        assert_eq!(snap.active_cycles, 1);
        assert_eq!(snap.tuples_out, 10);
        assert_eq!(snap.busy, Duration::from_millis(3));
        assert_eq!(snap.name, "HashJoin#3");
    }

    #[test]
    fn engine_stats_latencies() {
        let stats = EngineStats::default();
        stats.record_query(5, Duration::from_millis(1));
        stats.record_query(5, Duration::from_millis(3));
        stats.record_update(Duration::from_millis(2));
        stats.record_failure();
        stats.record_batch();
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.result_rows, 10);
        assert_eq!(snap.mean_latency, Duration::from_millis(2));
        assert_eq!(snap.max_latency, Duration::from_millis(3));
        assert!(snap.p99_latency >= Duration::from_millis(3));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.99), None);
        for _ in 0..99 {
            h.observe(Duration::from_micros(40));
        }
        h.observe(Duration::from_millis(40));
        assert_eq!(h.total(), 100);
        // p50 falls in the <=50µs bucket, p100 in the <=50ms bucket.
        assert_eq!(h.percentile_us(0.5), Some(50));
        assert_eq!(h.percentile_us(1.0), Some(50_000));
        // Overflow bucket.
        h.observe(Duration::from_secs(1000));
        assert_eq!(h.percentile_us(1.0), Some(u64::MAX));
    }
}

//! Engine and operator statistics.
//!
//! SharedDB's value proposition is *predictability*: the engine therefore
//! keeps cheap, always-on counters — per-operator cycle counts and busy time,
//! engine-level batch/query/latency counters, and **phase-tagged latency
//! histograms** that break a statement's life into admission → batch-wait →
//! execute (→ scatter → merge at the cluster layer → flush at the network
//! layer). All hot-path recording is lock-free
//! ([`shareddb_common::metrics::Histogram`]); the benchmark harnesses and the
//! server's metrics endpoint read the same counters.

use parking_lot::Mutex;
use shareddb_common::metrics::{Histogram, HistogramSnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Point-in-time snapshot of one operator's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorStatsSnapshot {
    /// Operator name.
    pub name: String,
    /// Number of cycles (batches) processed.
    pub cycles: u64,
    /// Number of cycles that had at least one active query.
    pub active_cycles: u64,
    /// Total tuples emitted.
    pub tuples_out: u64,
    /// Total busy time across cycles.
    pub busy: Duration,
}

impl OperatorStatsSnapshot {
    /// Fraction of `wall` this operator spent busy (0.0 when `wall` is zero).
    ///
    /// Computed against a caller-supplied wall-clock window (engine uptime,
    /// or time since the last stats reset) so the number stays meaningful
    /// after [`EngineStats::reset`] — snapshots taken against a stale wall
    /// clock were how replica imbalance used to hide.
    pub fn busy_fraction(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / wall.as_secs_f64()
        }
    }

    /// Mean tuples emitted per cycle that actually had active queries.
    pub fn tuples_per_active_cycle(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.tuples_out as f64 / self.active_cycles as f64
        }
    }
}

/// Mutable per-operator counters (owned by the engine, updated by operator
/// threads).
#[derive(Debug, Default)]
pub struct OperatorStats {
    cycles: AtomicU64,
    active_cycles: AtomicU64,
    tuples_out: AtomicU64,
    busy_nanos: AtomicU64,
}

impl OperatorStats {
    /// Records one processed cycle.
    pub fn record_cycle(&self, had_queries: bool, tuples_out: usize, busy: Duration) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
        if had_queries {
            self.active_cycles.fetch_add(1, Ordering::Relaxed);
        }
        self.tuples_out
            .fetch_add(tuples_out as u64, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self, name: &str) -> OperatorStatsSnapshot {
        OperatorStatsSnapshot {
            name: name.to_string(),
            cycles: self.cycles.load(Ordering::Relaxed),
            active_cycles: self.active_cycles.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.cycles.store(0, Ordering::Relaxed);
        self.active_cycles.store(0, Ordering::Relaxed);
        self.tuples_out.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Per-segment statistics (intra-engine segment parallelism)
// ---------------------------------------------------------------------------

/// Point-in-time snapshot of one segment lane's counters
/// (`EngineConfig::scan_segments > 1`; empty when segmenting is off).
#[derive(Debug, Clone)]
pub struct SegmentStatsSnapshot {
    /// Segment index (0-based, `< scan_segments`).
    pub segment: usize,
    /// Batches in which this segment lane executed at least one query.
    pub batches: u64,
    /// Result rows this segment contributed (pre-merge partial rows).
    pub rows: u64,
    /// Total busy time of this segment's pool jobs.
    pub busy: Duration,
    /// Per-batch execute-time histogram of this segment's pool jobs; the
    /// spread across segments is the skew the merge barrier waits on.
    pub execute: HistogramSnapshot,
}

impl SegmentStatsSnapshot {
    /// Fraction of `wall` this segment lane spent busy (0.0 when `wall` is
    /// zero). Same wall-clock convention as
    /// [`OperatorStatsSnapshot::busy_fraction`].
    pub fn busy_fraction(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / wall.as_secs_f64()
        }
    }
}

/// Mutable counters of one segment lane (owned by the engine, updated by the
/// coordinator as segment jobs complete).
#[derive(Debug, Default)]
pub struct SegmentStats {
    batches: AtomicU64,
    rows: AtomicU64,
    busy_nanos: AtomicU64,
    execute: Histogram,
}

impl SegmentStats {
    /// Records one completed segment job.
    pub fn record(&self, rows: usize, busy: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.execute.record(busy);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self, segment: usize) -> SegmentStatsSnapshot {
        SegmentStatsSnapshot {
            segment,
            batches: self.batches.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            execute: self.execute.snapshot(),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.rows.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
        self.execute.reset();
    }
}

// ---------------------------------------------------------------------------
// Per-operator × per-statement-type cost attribution
// ---------------------------------------------------------------------------

/// The reserved attribution column for operator cycles in which no registered
/// statement type had an activation (e.g. a shared scan revolving for a batch
/// whose queries all target other operators). Keeping this residual explicit
/// is what makes the attribution *exact*: for every operator, the attributed
/// busy times across all columns — including `_idle` — sum to the operator's
/// total busy time in [`OperatorStats`].
pub const IDLE_STATEMENT: &str = "_idle";

/// One cell of the attribution matrix (lock-free, updated by the coordinator
/// once per operator per batch).
#[derive(Debug, Default)]
struct AttributionCell {
    activations: AtomicU64,
    rows: AtomicU64,
    busy_nanos: AtomicU64,
}

/// One nonzero cell of the attribution matrix (plain-data snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionEntry {
    /// Operator name (`GlobalPlan` node name, e.g. `ClockScan#0`).
    pub operator: String,
    /// Statement type name, or [`IDLE_STATEMENT`] for the residual column.
    pub statement: String,
    /// Batches in which this statement type activated this operator, summed
    /// over the statement's queries (two pipelined `getItem`s in one batch
    /// count as two activations).
    pub activations: u64,
    /// Tuples of the operator's output attributed to this statement type.
    pub rows: u64,
    /// Operator busy time attributed to this statement type.
    pub busy: Duration,
}

/// Per-operator × per-statement-type cost attribution.
///
/// SharedDB executes *one* shared cycle per operator per batch, so a plain
/// per-operator counter cannot say **who** paid for a heavy cycle. This table
/// splits each cycle's busy time and output rows across the batch's
/// *activation mix*: if a `ClockScan` cycle served 3 `getItem` activations
/// and 1 `allItems` activation, `getItem` is attributed 3/4 of the cycle's
/// busy time and `allItems` 1/4. The split is proportional-by-activation
/// (the engine has no per-activation timer inside a shared cycle — that is
/// the whole point of sharing), with the integer-division remainder assigned
/// to the last active statement so per-batch sums are exact, not rounded.
///
/// Storage is a flat `operators × (statements + 1)` matrix of atomics sized
/// once at engine start — recording is alloc-free and lock-free, same
/// discipline as [`shareddb_common::metrics::Histogram`]. The extra column is
/// [`IDLE_STATEMENT`].
#[derive(Debug, Default)]
pub struct AttributionTable {
    operators: Vec<String>,
    statements: Vec<String>,
    cells: Vec<AttributionCell>,
}

impl AttributionTable {
    /// A matrix with one row per operator (plan order) and one column per
    /// statement (registry order) plus the `_idle` residual column.
    pub fn new(operators: Vec<String>, statements: Vec<String>) -> AttributionTable {
        let cells = (0..operators.len() * (statements.len() + 1))
            .map(|_| AttributionCell::default())
            .collect();
        AttributionTable {
            operators,
            statements,
            cells,
        }
    }

    /// Number of statement columns (excluding the `_idle` residual).
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Records one operator cycle: `counts[i]` activations of statement `i`
    /// in this batch, and the cycle's total output tuples and busy time.
    /// `counts.len()` must equal [`AttributionTable::statement_count`].
    ///
    /// Busy time and rows are split proportionally to the activation counts;
    /// the division remainder goes to the last active statement, so the
    /// row-sum invariant (`Σ attributed busy == operator busy`) holds
    /// exactly. A cycle with no activations lands entirely in `_idle`.
    pub fn record_cycle(&self, operator: usize, counts: &[u64], tuples: u64, busy: Duration) {
        debug_assert_eq!(counts.len(), self.statements.len());
        let cols = self.statements.len() + 1;
        let base = operator * cols;
        let total: u64 = counts.iter().sum();
        let busy_nanos = busy.as_nanos() as u64;
        if total == 0 {
            let idle = &self.cells[base + self.statements.len()];
            idle.rows.fetch_add(tuples, Ordering::Relaxed);
            idle.busy_nanos.fetch_add(busy_nanos, Ordering::Relaxed);
            return;
        }
        let last = counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("total > 0 implies a nonzero count");
        let mut given_busy = 0u64;
        let mut given_rows = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (share_busy, share_rows) = if i == last {
                (busy_nanos - given_busy, tuples - given_rows)
            } else {
                let b = (busy_nanos as u128 * count as u128 / total as u128) as u64;
                let r = (tuples as u128 * count as u128 / total as u128) as u64;
                (b, r)
            };
            given_busy += share_busy;
            given_rows += share_rows;
            let cell = &self.cells[base + i];
            cell.activations.fetch_add(count, Ordering::Relaxed);
            cell.rows.fetch_add(share_rows, Ordering::Relaxed);
            cell.busy_nanos.fetch_add(share_busy, Ordering::Relaxed);
        }
    }

    /// Every nonzero cell, operator-major, statement columns in registry
    /// order with `_idle` last.
    pub fn snapshot(&self) -> Vec<AttributionEntry> {
        let cols = self.statements.len() + 1;
        let mut out = Vec::new();
        for (op, operator) in self.operators.iter().enumerate() {
            for col in 0..cols {
                let cell = &self.cells[op * cols + col];
                let activations = cell.activations.load(Ordering::Relaxed);
                let rows = cell.rows.load(Ordering::Relaxed);
                let busy_nanos = cell.busy_nanos.load(Ordering::Relaxed);
                if activations == 0 && rows == 0 && busy_nanos == 0 {
                    continue;
                }
                out.push(AttributionEntry {
                    operator: operator.clone(),
                    statement: self
                        .statements
                        .get(col)
                        .cloned()
                        .unwrap_or_else(|| IDLE_STATEMENT.to_string()),
                    activations,
                    rows,
                    busy: Duration::from_nanos(busy_nanos),
                });
            }
        }
        out
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.activations.store(0, Ordering::Relaxed);
            cell.rows.store(0, Ordering::Relaxed);
            cell.busy_nanos.store(0, Ordering::Relaxed);
        }
    }
}

/// Merges per-replica attribution snapshots by `(operator, statement)` key,
/// summing counters. Order is first-seen, which for replicas of one shared
/// plan (identical operator/statement universes) reproduces the single-
/// replica order — cell-exact, the same property the phase histograms get
/// from bucket-wise merging.
pub fn merge_attribution(per_replica: &[Vec<AttributionEntry>]) -> Vec<AttributionEntry> {
    let mut index: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    let mut out: Vec<AttributionEntry> = Vec::new();
    for part in per_replica {
        for entry in part {
            let key = (entry.operator.clone(), entry.statement.clone());
            match index.get(&key) {
                Some(&slot) => {
                    let merged = &mut out[slot];
                    merged.activations += entry.activations;
                    merged.rows += entry.rows;
                    merged.busy += entry.busy;
                }
                None => {
                    index.insert(key, out.len());
                    out.push(entry.clone());
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Phase-tagged latency histograms
// ---------------------------------------------------------------------------

/// The phases of a statement's life, in order. The engine records the first
/// three plus `Total`; the cluster layer records `Scatter` and `Merge` for
/// fanned-out statements; the network reactor records `Flush`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Submit call → enqueued on the admission queue (binding + lock wait).
    Admission = 0,
    /// Admission queue → drained into a batch at a heartbeat.
    BatchWait = 1,
    /// Batch formation → this statement's result routed (shared-cycle time).
    Execute = 2,
    /// Cluster fanout: scatter of all partitions to their replicas.
    Scatter = 3,
    /// Cluster fanout: last partition completed → merged result posted.
    Merge = 4,
    /// Outcome ready at the reactor → reply bytes flushed to the socket.
    Flush = 5,
    /// Submission → outcome delivered (end-to-end, per statement type).
    Total = 6,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 7;

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Admission,
        Phase::BatchWait,
        Phase::Execute,
        Phase::Scatter,
        Phase::Merge,
        Phase::Flush,
        Phase::Total,
    ];

    /// Stable lower-case name (used as the `phase` metric label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::BatchWait => "batch_wait",
            Phase::Execute => "execute",
            Phase::Scatter => "scatter",
            Phase::Merge => "merge",
            Phase::Flush => "flush",
            Phase::Total => "total",
        }
    }

    /// Inverse of `self as u8` (wire decoding); `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<Phase> {
        Phase::ALL.get(v as usize).copied()
    }
}

/// One histogram per phase.
#[derive(Debug, Default)]
pub struct PhaseHistograms {
    per_phase: [Histogram; NUM_PHASES],
}

impl PhaseHistograms {
    /// Records one observation for `phase`.
    pub fn record(&self, phase: Phase, d: Duration) {
        self.per_phase[phase as usize].record(d);
    }

    /// Snapshots every phase histogram.
    pub fn snapshot(&self) -> [HistogramSnapshot; NUM_PHASES] {
        std::array::from_fn(|i| self.per_phase[i].snapshot())
    }

    /// True when no phase recorded anything.
    pub fn is_empty(&self) -> bool {
        self.per_phase.iter().all(|h| h.count() == 0)
    }

    fn reset(&self) {
        for h in &self.per_phase {
            h.reset();
        }
    }
}

/// Per-phase histograms of one statement type (plain-data snapshot).
#[derive(Debug, Clone)]
pub struct StatementPhaseSnapshot {
    /// Statement name (registry name, or `_other` for untracked statements).
    pub statement: String,
    /// One histogram snapshot per [`Phase`], indexed by `Phase as usize`.
    pub phases: [HistogramSnapshot; NUM_PHASES],
}

impl StatementPhaseSnapshot {
    /// The snapshot of one phase.
    pub fn phase(&self, phase: Phase) -> &HistogramSnapshot {
        &self.phases[phase as usize]
    }
}

/// Per-statement-type phase histograms, keyed by registry index.
///
/// Slots are allocated once at engine start from the statement registry, so
/// the hot path is a bounds-checked index — no lock, no hashing. Statements
/// outside the registry range (none today) fall into a shared `_other` slot.
#[derive(Debug, Default)]
pub struct PhaseTable {
    slots: Vec<(String, PhaseHistograms)>,
    other: PhaseHistograms,
}

impl PhaseTable {
    /// A table with one slot per statement name, in registry order.
    pub fn new(statement_names: Vec<String>) -> PhaseTable {
        PhaseTable {
            slots: statement_names
                .into_iter()
                .map(|n| (n, PhaseHistograms::default()))
                .collect(),
            other: PhaseHistograms::default(),
        }
    }

    /// Records one phase observation for the statement at `index`.
    pub fn record(&self, index: usize, phase: Phase, d: Duration) {
        match self.slots.get(index) {
            Some((_, h)) => h.record(phase, d),
            None => self.other.record(phase, d),
        }
    }

    /// Merged snapshot of one phase over a set of statement slots. The
    /// adaptive-heartbeat controller reads the light-lane `Total` phase this
    /// way — one fixed-size snapshot instead of the full per-statement
    /// allocation — and diffs consecutive reads into a live window.
    pub fn merged_phase(&self, indices: &[usize], phase: Phase) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for &i in indices {
            if let Some((_, h)) = self.slots.get(i) {
                out.merge_from(&h.per_phase[phase as usize].snapshot());
            }
        }
        out
    }

    /// Snapshots every statement that has recorded at least one observation.
    pub fn snapshot(&self) -> Vec<StatementPhaseSnapshot> {
        let mut out = Vec::new();
        for (name, hist) in &self.slots {
            if !hist.is_empty() {
                out.push(StatementPhaseSnapshot {
                    statement: name.clone(),
                    phases: hist.snapshot(),
                });
            }
        }
        if !self.other.is_empty() {
            out.push(StatementPhaseSnapshot {
                statement: "_other".to_string(),
                phases: self.other.snapshot(),
            });
        }
        out
    }

    /// Zeroes every histogram.
    pub fn reset(&self) {
        for (_, h) in &self.slots {
            h.reset();
        }
        self.other.reset();
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// One offender in the slow-query log: the full phase breakdown of a
/// statement whose end-to-end latency crossed the configured threshold.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Statement name.
    pub statement: String,
    /// Replica the statement was routed to (stamped by the cluster layer;
    /// 0 inside a single engine). Without it a slow fanned-out query is
    /// indistinguishable from a pinned one in the log.
    pub replica: usize,
    /// Segment lanes the statement executed on (1 = whole lane).
    pub segments: u32,
    /// End-to-end latency (submission → completion).
    pub total: Duration,
    /// Time spent binding + enqueueing.
    pub admission: Duration,
    /// Time spent waiting on the admission queue for a heartbeat.
    pub batch_wait: Duration,
    /// Time spent in the shared execution cycle.
    pub execute: Duration,
    /// Heartbeat interval in effect when the statement's batch formed, µs.
    /// Attributes an SLO miss to the adaptive controller's decision (or to
    /// the fixed interval it was configured with).
    pub heartbeat_us: u64,
}

const SLOW_LOG_CAPACITY: usize = 128;

// ---------------------------------------------------------------------------
// Engine-level statistics
// ---------------------------------------------------------------------------

/// Engine-level statistics.
#[derive(Debug, Default)]
pub struct EngineStats {
    batches: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    failed: AtomicU64,
    result_rows: AtomicU64,
    /// Sum of query latencies in nanoseconds (submission to completion).
    latency_nanos: AtomicU64,
    /// Maximum observed latency in nanoseconds.
    max_latency_nanos: AtomicU64,
    /// End-to-end latency histogram over all statement types.
    histogram: Histogram,
    /// Batch-occupancy histogram: statements per processed batch. The shape
    /// of this distribution *is* the sharing opportunity — a p50 of 1 means
    /// the heartbeat mostly forms singleton batches and shared cycles are
    /// wasted revolutions.
    occupancy: Histogram,
    /// Per-statement-type, per-phase latency histograms.
    phases: PhaseTable,
    /// Total statements that crossed the slow-query threshold.
    slow_total: AtomicU64,
    /// The most recent offenders (bounded ring).
    slow: Mutex<VecDeque<SlowQueryRecord>>,
}

/// Point-in-time snapshot of the engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStatsSnapshot {
    /// Number of processed batches (heartbeats with work).
    pub batches: u64,
    /// Number of completed queries.
    pub queries: u64,
    /// Number of completed updates.
    pub updates: u64,
    /// Number of failed queries/updates.
    pub failed: u64,
    /// Total result rows delivered.
    pub result_rows: u64,
    /// Mean query latency.
    pub mean_latency: Duration,
    /// Maximum query latency.
    pub max_latency: Duration,
    /// Median latency upper bound.
    pub p50_latency: Duration,
    /// 95th-percentile latency upper bound.
    pub p95_latency: Duration,
    /// 99th-percentile latency upper bound.
    pub p99_latency: Duration,
    /// The full end-to-end latency histogram the percentiles were read from;
    /// merging these across replicas reproduces the cluster-wide percentiles
    /// exactly instead of approximating them from per-replica numbers.
    pub histogram: HistogramSnapshot,
    /// Statements-per-batch occupancy histogram (recorded in "microsecond"
    /// units: one unit = one statement), merged bucket-wise across replicas
    /// like the latency histograms.
    pub occupancy: HistogramSnapshot,
}

impl EngineStats {
    /// Statistics with one phase-table slot per registered statement.
    pub fn with_statements(statement_names: Vec<String>) -> EngineStats {
        EngineStats {
            phases: PhaseTable::new(statement_names),
            ..EngineStats::default()
        }
    }

    /// Records a completed batch and its occupancy (statements it carried).
    pub fn record_batch(&self, statements: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.occupancy
            .record(Duration::from_micros(statements as u64));
    }

    /// Records a completed query with its end-to-end latency.
    pub fn record_query(&self, rows: usize, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.result_rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a completed update with its end-to-end latency.
    pub fn record_update(&self, latency: Duration) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.record_latency(latency);
    }

    /// Records a failed query or update.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one phase observation for the statement at `statement_index`.
    pub fn record_phase(&self, statement_index: usize, phase: Phase, d: Duration) {
        self.phases.record(statement_index, phase, d);
    }

    /// Appends one offender to the slow-query log (bounded; the oldest entry
    /// is dropped at capacity) and bumps the total-offenders counter.
    pub fn record_slow(&self, record: SlowQueryRecord) {
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        let mut slow = self.slow.lock();
        if slow.len() >= SLOW_LOG_CAPACITY {
            slow.pop_front();
        }
        slow.push_back(record);
    }

    /// Total offenders plus the retained tail of the slow-query log.
    pub fn slow_queries(&self) -> (u64, Vec<SlowQueryRecord>) {
        (
            self.slow_total.load(Ordering::Relaxed),
            self.slow.lock().iter().cloned().collect(),
        )
    }

    /// Per-statement per-phase histograms (statements with observations only).
    pub fn phase_snapshot(&self) -> Vec<StatementPhaseSnapshot> {
        self.phases.snapshot()
    }

    /// Merged snapshot of one phase over a set of statement indices (see
    /// [`PhaseTable::merged_phase`]).
    pub fn merged_phase(&self, indices: &[usize], phase: Phase) -> HistogramSnapshot {
        self.phases.merged_phase(indices, phase)
    }

    fn record_latency(&self, latency: Duration) {
        let nanos = latency.as_nanos() as u64;
        self.latency_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_latency_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.histogram.record(latency);
    }

    /// Zeroes every counter, histogram and the slow-query log, so multi-phase
    /// bench harnesses can measure without warm-up contamination.
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.updates.store(0, Ordering::Relaxed);
        self.failed.store(0, Ordering::Relaxed);
        self.result_rows.store(0, Ordering::Relaxed);
        self.latency_nanos.store(0, Ordering::Relaxed);
        self.max_latency_nanos.store(0, Ordering::Relaxed);
        self.histogram.reset();
        self.occupancy.reset();
        self.phases.reset();
        self.slow_total.store(0, Ordering::Relaxed);
        self.slow.lock().clear();
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let updates = self.updates.load(Ordering::Relaxed);
        let completed = queries + updates;
        let total_latency = self.latency_nanos.load(Ordering::Relaxed);
        let histogram = self.histogram.snapshot();
        EngineStatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            queries,
            updates,
            failed: self.failed.load(Ordering::Relaxed),
            result_rows: self.result_rows.load(Ordering::Relaxed),
            mean_latency: Duration::from_nanos(total_latency.checked_div(completed).unwrap_or(0)),
            max_latency: Duration::from_nanos(self.max_latency_nanos.load(Ordering::Relaxed)),
            p50_latency: Duration::from_micros(histogram.percentile_us(0.50)),
            p95_latency: Duration::from_micros(histogram.percentile_us(0.95)),
            p99_latency: Duration::from_micros(histogram.percentile_us(0.99)),
            histogram,
            occupancy: self.occupancy.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_stats_accumulate() {
        let stats = OperatorStats::default();
        stats.record_cycle(true, 10, Duration::from_millis(2));
        stats.record_cycle(false, 0, Duration::from_millis(1));
        let snap = stats.snapshot("HashJoin#3");
        assert_eq!(snap.cycles, 2);
        assert_eq!(snap.active_cycles, 1);
        assert_eq!(snap.tuples_out, 10);
        assert_eq!(snap.busy, Duration::from_millis(3));
        assert_eq!(snap.name, "HashJoin#3");
        assert_eq!(snap.tuples_per_active_cycle(), 10.0);
        let frac = snap.busy_fraction(Duration::from_millis(6));
        assert!((frac - 0.5).abs() < 1e-9);
        stats.reset();
        assert_eq!(stats.snapshot("HashJoin#3").cycles, 0);
    }

    #[test]
    fn engine_stats_latencies() {
        let stats = EngineStats::default();
        stats.record_query(5, Duration::from_millis(1));
        stats.record_query(5, Duration::from_millis(3));
        stats.record_update(Duration::from_millis(2));
        stats.record_failure();
        stats.record_batch(3);
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.occupancy.count, 1);
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.result_rows, 10);
        assert_eq!(snap.mean_latency, Duration::from_millis(2));
        assert_eq!(snap.max_latency, Duration::from_millis(3));
        assert!(snap.p99_latency >= Duration::from_millis(3));
        assert!(snap.p50_latency <= snap.p95_latency);
        assert!(snap.p95_latency <= snap.p99_latency);
        assert_eq!(snap.histogram.count, 3);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.histogram.count, 0);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }

    #[test]
    fn phase_table_records_per_statement_and_phase() {
        let table = PhaseTable::new(vec!["light".into(), "heavy".into()]);
        table.record(0, Phase::Execute, Duration::from_micros(100));
        table.record(0, Phase::Execute, Duration::from_micros(200));
        table.record(1, Phase::BatchWait, Duration::from_millis(5));
        // Out-of-range indexes land in the `_other` slot.
        table.record(99, Phase::Total, Duration::from_micros(1));
        let snap = table.snapshot();
        assert_eq!(snap.len(), 3);
        let light = snap.iter().find(|s| s.statement == "light").unwrap();
        assert_eq!(light.phase(Phase::Execute).count, 2);
        assert_eq!(light.phase(Phase::BatchWait).count, 0);
        let heavy = snap.iter().find(|s| s.statement == "heavy").unwrap();
        assert_eq!(heavy.phase(Phase::BatchWait).count, 1);
        assert!(snap.iter().any(|s| s.statement == "_other"));
        table.reset();
        assert!(table.snapshot().is_empty());
    }

    #[test]
    fn slow_query_log_is_bounded() {
        let stats = EngineStats::default();
        for i in 0..(SLOW_LOG_CAPACITY + 10) {
            stats.record_slow(SlowQueryRecord {
                statement: format!("q{i}"),
                replica: 0,
                segments: 1,
                total: Duration::from_millis(i as u64),
                admission: Duration::ZERO,
                batch_wait: Duration::ZERO,
                execute: Duration::ZERO,
                heartbeat_us: 2000,
            });
        }
        let (total, tail) = stats.slow_queries();
        assert_eq!(total, (SLOW_LOG_CAPACITY + 10) as u64);
        assert_eq!(tail.len(), SLOW_LOG_CAPACITY);
        // The oldest entries were dropped.
        assert_eq!(tail[0].statement, "q10");
    }

    #[test]
    fn attribution_splits_are_exact() {
        let table = AttributionTable::new(
            vec!["Scan#0".into(), "Join#1".into()],
            vec!["light".into(), "heavy".into()],
        );
        // A batch where Scan#0 serves 3 light + 1 heavy activations; the
        // 1000ns cycle does not divide evenly (750 / 250 does, so use 999).
        table.record_cycle(0, &[3, 1], 10, Duration::from_nanos(999));
        // A cycle with no activations lands in _idle.
        table.record_cycle(1, &[0, 0], 2, Duration::from_nanos(77));
        let snap = table.snapshot();
        let cell = |op: &str, stmt: &str| {
            snap.iter()
                .find(|e| e.operator == op && e.statement == stmt)
                .unwrap()
                .clone()
        };
        let light = cell("Scan#0", "light");
        let heavy = cell("Scan#0", "heavy");
        assert_eq!(light.activations, 3);
        assert_eq!(heavy.activations, 1);
        // Proportional split with the remainder on the last active column:
        // exact sum back to the cycle totals.
        assert_eq!(
            light.busy + heavy.busy,
            Duration::from_nanos(999),
            "attributed busy must sum exactly to the cycle's busy time"
        );
        assert_eq!(light.rows + heavy.rows, 10);
        assert!(light.busy > heavy.busy);
        let idle = cell("Join#1", IDLE_STATEMENT);
        assert_eq!(idle.activations, 0);
        assert_eq!(idle.rows, 2);
        assert_eq!(idle.busy, Duration::from_nanos(77));
        table.reset();
        assert!(table.snapshot().is_empty());
    }

    #[test]
    fn attribution_merge_sums_by_key() {
        let make = |busy: u64| {
            let t = AttributionTable::new(vec!["Scan#0".into()], vec!["light".into()]);
            t.record_cycle(0, &[2], 5, Duration::from_nanos(busy));
            t.snapshot()
        };
        let merged = merge_attribution(&[make(100), make(300)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].operator, "Scan#0");
        assert_eq!(merged[0].statement, "light");
        assert_eq!(merged[0].activations, 4);
        assert_eq!(merged[0].rows, 10);
        assert_eq!(merged[0].busy, Duration::from_nanos(400));
        // Merging one snapshot is the identity.
        assert_eq!(merge_attribution(&[make(100)]), make(100));
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_u8(phase as u8), Some(phase));
            assert!(!phase.name().is_empty());
        }
        assert_eq!(Phase::from_u8(200), None);
    }
}

//! The partitionability walker: which statement shapes can run over disjoint
//! horizontal row partitions, and how their partial results recombine.
//!
//! Two consumers share this analysis:
//!
//! * **cluster fanout** (`shareddb-cluster`) scatters one execution across
//!   engine replicas, each scanning one `(index, of)` partition;
//! * **intra-engine segment parallelism** ([`crate::engine::Engine`] with
//!   `scan_segments > 1`) splits one engine's shared scan into row segments
//!   executed on a worker pool, recombined per batch.
//!
//! Both levels compose: a fanned-out partition may itself run segmented, in
//! which case the fanout's partition columns take precedence over the default
//! primary-key segmenting (the column sets are identical by construction —
//! both come from this walker — so the composition is a further restriction
//! of the same hash).

use crate::merge::MergeSpec;
use crate::plan::StatementSpec;
use crate::plan::{ActivationTemplate, GlobalPlan, OperatorId, OperatorSpec, StatementKind};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::Expr;
use shareddb_storage::Catalog;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Partitioned ("scatter/gather") execution plan of one eligible statement
/// type: how to split its scans and how to merge the partial results.
#[derive(Debug, Clone)]
pub struct ScatterSpec {
    /// How the partial results of the partitions recombine.
    pub merge: MergeSpec,
    /// Statement-level LIMIT, re-applied after the merge.
    pub limit: Option<usize>,
    /// Per-scan partition-hash column overrides (co-partitioned join fanout:
    /// both join inputs hash the join key). `None` = every scan hashes its
    /// table's primary key.
    pub partition_columns: Option<Arc<HashMap<OperatorId, Vec<usize>>>>,
    /// Ship AVG aggregates as (sum, hidden count) partials
    /// ([`crate::SubmitOptions::partial_aggregation`]).
    pub partial_aggregation: bool,
    /// Scatter parameterised executions too. Heavy shapes (joins, blocking
    /// roots) win from partitioned work even when every execution carries
    /// parameters; cheap scan/filter roots keep hash-partitioned input
    /// routing instead, which preserves per-key batch locality and does not
    /// multiply per-statement admission work.
    pub scatter_with_params: bool,
}

/// Where a statement's tuples come from: one partitioned scan, or a
/// co-partitioned tree of hash equi-joins over scans.
enum Source {
    /// One shared table scan (partitioned by the table's primary key).
    Scan(OperatorId),
    /// A tree of hash equi-joins whose leaves are shared scans (possibly
    /// through filters), **every join keyed on one transitive equivalence
    /// class** that contains the partition key. Each leaf scan partitions by
    /// its own join-key column with the same `(index, of)`, so rows that join
    /// — directly or through the chain — always land in the same partition.
    Join(JoinTree),
}

/// Partitioning summary of a hash-equi-join tree.
struct JoinTree {
    /// Per-scan partition-hash column override (the scan's join key).
    scan_columns: HashMap<OperatorId, Vec<usize>>,
    /// Columns of the tree root's output schema that carry the partition key
    /// (the transitive join-key equivalence class).
    key_columns: Vec<usize>,
    /// At least one scan of the tree joins on its table's single-column
    /// primary key (the partitioning-key rule).
    keyed_on_pk: bool,
}

/// A shared group-by on the path between the source and the root.
struct GroupInfo {
    group_columns: Vec<usize>,
}

/// Decides whether a statement type can be scattered over partitioned scans,
/// and how its partial results merge. Conservative by construction: a shape
/// this function does not recognise is simply not partitioned (at cluster
/// level it still benefits from hash-partitioned input routing when hot).
///
/// Recognised shapes (all with identity projection and no computed columns):
///
/// * `scan → [filter*] → root`, where root is the scan/filter itself
///   (concat merge), a sort/Top-N (ordered merge), a group-by with no HAVING
///   (partial-aggregate merge, AVG shipped as sum/count partials) or a
///   DISTINCT (re-deduplicating merge);
/// * `scan ⨝ scan` equi-joins of the same form — including **multi-join
///   chains** (trees of hash equi-joins over scans) — **when every join of
///   the chain is keyed on the partitioning key**: the joins' key columns
///   form one transitive equivalence class, and at least one scan joins on
///   its table's single-column primary key. Every scan then scatters with
///   the same partition function over its own join-key column
///   (co-partitioning), which keeps every join match — direct or through the
///   chain — inside one partition. Joins not keyed on the partition class
///   stay pinned.
/// * a group-by **root** may carry a HAVING predicate: the group-by operators
///   run in partial mode (HAVING deferred) and the merge applies the
///   predicate to each recombined group — a partition must not filter a
///   partial group another partition may complete.
/// * a group-by *below* a sort/Top-N root (the `getBestSellers` shape) is
///   eligible when the grouping key contains the partition key — then every
///   group is complete within its partition and the per-partition Top-N
///   partials (and any local HAVING) merge exactly.
pub fn scatter_spec(
    catalog: &Catalog,
    plan: &GlobalPlan,
    spec: &StatementSpec,
) -> Option<ScatterSpec> {
    let StatementKind::Query {
        root,
        projection,
        compute,
        limit,
        // With the identity projection required below, the post-projection
        // DISTINCT equals the full-row dedup the Distinct merge performs.
        distinct: _,
    } = &spec.kind
    else {
        return None;
    };
    // Computed projections and non-identity column projections change the
    // row layout relative to the root schema the merge keys index into.
    if !compute.is_empty() {
        return None;
    }
    let width = plan.node(*root).schema.len();
    if !projection.is_empty() && *projection != (0..width).collect::<Vec<_>>() {
        return None;
    }

    let mut templates: HashMap<OperatorId, &ActivationTemplate> = HashMap::new();
    for (op, template) in &spec.activations {
        if templates.insert(*op, template).is_some() {
            return None; // several activations on one operator: bail
        }
    }
    let mut visited: HashSet<OperatorId> = HashSet::new();

    // Classify the root, then walk down to the source.
    let root_node = plan.node(*root);
    let mut topn_limit: Option<usize> = None;
    let mut group: Option<GroupInfo> = None;
    // HAVING of a group-by *root*: deferred to the merge (partial mode).
    let mut root_having: Option<Expr> = None;
    let source = match (&root_node.spec, templates.get(root)?) {
        (OperatorSpec::TableScan { .. }, _)
        | (OperatorSpec::Filter, _)
        | (OperatorSpec::HashJoin { .. }, _) => {
            find_source(catalog, plan, &templates, &mut visited, *root)?
        }
        (OperatorSpec::Sort { .. }, ActivationTemplate::Participate) => {
            visited.insert(*root);
            let (g, source) = peel_group(
                catalog,
                plan,
                &templates,
                &mut visited,
                root_node.inputs.first()?,
            )?;
            group = g;
            source
        }
        (OperatorSpec::TopN { .. }, ActivationTemplate::TopN { limit }) => {
            topn_limit = Some(*limit);
            visited.insert(*root);
            let (g, source) = peel_group(
                catalog,
                plan,
                &templates,
                &mut visited,
                root_node.inputs.first()?,
            )?;
            group = g;
            source
        }
        (OperatorSpec::GroupBy { .. }, ActivationTemplate::Having { predicate }) => {
            root_having = predicate.clone();
            visited.insert(*root);
            find_source(
                catalog,
                plan,
                &templates,
                &mut visited,
                *root_node.inputs.first()?,
            )?
        }
        (OperatorSpec::Distinct, ActivationTemplate::Participate) => {
            visited.insert(*root);
            find_source(
                catalog,
                plan,
                &templates,
                &mut visited,
                *root_node.inputs.first()?,
            )?
        }
        // Probes bypass the partitioned scan; anything else is unknown.
        _ => return None,
    };

    // Every activated operator must lie on the recognised path — a stray
    // activation (second scan, probe, another join) breaks the shape.
    if visited.len() != spec.activations.len() {
        return None;
    }

    // Partitioning: single scans hash their primary key; join-tree scans
    // co-partition by their join-key column, and the tree must be keyed on a
    // partitioning key (at least one scan joins on its single-column primary
    // key). Per-join key-class and data-type checks live in [`join_tree`].
    let partition_columns = match &source {
        Source::Scan(_) => None,
        Source::Join(tree) => {
            if !tree.keyed_on_pk {
                return None;
            }
            Some(Arc::new(tree.scan_columns.clone()))
        }
    };

    // A group-by below the root: every group must be complete within its
    // partition, i.e. the grouping key must contain the partition key.
    if let Some(info) = &group {
        let determined = match &source {
            Source::Scan(scan) => {
                let pk = table_pk(catalog, plan, *scan)?;
                !pk.is_empty() && pk.iter().all(|c| info.group_columns.contains(c))
            }
            Source::Join(tree) => tree
                .key_columns
                .iter()
                .any(|c| info.group_columns.contains(c)),
        };
        if !determined {
            return None;
        }
    }

    let mut partial_aggregation = false;
    let merge = match &root_node.spec {
        OperatorSpec::TableScan { .. } | OperatorSpec::Filter | OperatorSpec::HashJoin { .. } => {
            MergeSpec::Concat
        }
        OperatorSpec::Sort { keys } => MergeSpec::Ordered {
            keys: keys.clone(),
            limit: *limit,
        },
        OperatorSpec::TopN { keys } => MergeSpec::Ordered {
            keys: keys.clone(),
            limit: match (topn_limit, *limit) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        },
        OperatorSpec::GroupBy {
            group_columns,
            aggregates,
        } => {
            // A LIMIT over groups would drop partial groups per partition.
            if limit.is_some() {
                return None;
            }
            // AVG partials ship as (sum, hidden count) and recombine exactly
            // at the merge. Partial mode also defers HAVING to the merge —
            // either one requires it.
            let avg_partials = aggregates
                .iter()
                .any(|a| a.function == AggregateFunction::Avg);
            partial_aggregation = avg_partials || root_having.is_some();
            MergeSpec::Grouped {
                group_width: group_columns.len(),
                functions: aggregates.iter().map(|a| a.function).collect(),
                avg_partials,
                having: root_having,
            }
        }
        OperatorSpec::Distinct => {
            if limit.is_some() {
                return None;
            }
            MergeSpec::Distinct
        }
        _ => return None,
    };
    // Heavy shapes — joins and blocking roots (sort / Top-N / group-by /
    // distinct) — scatter even when parameterised; a bare scan/filter root
    // with parameters stays hash-routed (point look-ups must not multiply
    // their admission work N-fold).
    let scatter_with_params =
        matches!(source, Source::Join { .. }) || !matches!(merge, MergeSpec::Concat);
    Some(ScatterSpec {
        merge,
        limit: *limit,
        partition_columns,
        partial_aggregation,
        scatter_with_params,
    })
}

/// The primary-key column indices of the table scanned by `scan_op`.
fn table_pk(catalog: &Catalog, plan: &GlobalPlan, scan_op: OperatorId) -> Option<Vec<usize>> {
    let OperatorSpec::TableScan { table } = &plan.node(scan_op).spec else {
        return None;
    };
    Some(catalog.table(table).ok()?.read().primary_key().to_vec())
}

/// Walks `filter* → (group-by)?` from a sort/Top-N root's input: returns the
/// group-by (if one is on the path) and the source below it. A HAVING on
/// this group-by stays local: eligibility later requires the grouping key to
/// contain the partition key, so every group is complete — and its final
/// aggregate values filterable — within its own partition.
fn peel_group(
    catalog: &Catalog,
    plan: &GlobalPlan,
    templates: &HashMap<OperatorId, &ActivationTemplate>,
    visited: &mut HashSet<OperatorId>,
    start: &OperatorId,
) -> Option<(Option<GroupInfo>, Source)> {
    let mut op = *start;
    loop {
        let node = plan.node(op);
        match (&node.spec, templates.get(&op)?) {
            (
                OperatorSpec::Filter,
                ActivationTemplate::Filter { .. } | ActivationTemplate::Participate,
            ) => {
                visited.insert(op);
                op = *node.inputs.first()?;
            }
            (OperatorSpec::GroupBy { group_columns, .. }, ActivationTemplate::Having { .. }) => {
                visited.insert(op);
                let info = GroupInfo {
                    group_columns: group_columns.clone(),
                };
                let source = find_source(catalog, plan, templates, visited, *node.inputs.first()?)?;
                return Some((Some(info), source));
            }
            _ => return Some((None, find_source(catalog, plan, templates, visited, op)?)),
        }
    }
}

/// Walks `filter* → (scan | join tree)` and returns the source.
fn find_source(
    catalog: &Catalog,
    plan: &GlobalPlan,
    templates: &HashMap<OperatorId, &ActivationTemplate>,
    visited: &mut HashSet<OperatorId>,
    start: OperatorId,
) -> Option<Source> {
    let mut op = start;
    loop {
        let node = plan.node(op);
        match (&node.spec, templates.get(&op)?) {
            (OperatorSpec::TableScan { .. }, ActivationTemplate::Scan { .. }) => {
                visited.insert(op);
                return Some(Source::Scan(op));
            }
            (
                OperatorSpec::Filter,
                ActivationTemplate::Filter { .. } | ActivationTemplate::Participate,
            ) => {
                visited.insert(op);
                op = *node.inputs.first()?;
            }
            (OperatorSpec::HashJoin { .. }, ActivationTemplate::Participate) => {
                return join_tree(catalog, plan, templates, visited, op).map(Source::Join);
            }
            _ => return None,
        }
    }
}

/// Recursively walks a tree of hash equi-joins whose leaves are
/// `filter* → scan` chains, accumulating the partitioning summary. Returns
/// `None` when the tree is not co-partitionable:
///
/// * a join over a nested join subtree must be keyed on the subtree's
///   partition-key class (its side key ∈ the subtree's key columns), so one
///   transitive equivalence class spans the whole chain;
/// * every scan hashes exactly one column — a scan reached twice (both sides
///   of one join, or two chain levels) cannot hash two key sets and bails;
/// * the partition hash is type-tagged (`hash_values` distinguishes Int from
///   Float) while SQL join equality is numeric-normalizing (`Int(5)` joins
///   `Float(5.0)`): a cross-type equi-join would scatter matching rows into
///   different partitions and silently lose the match, so all key columns
///   must share one data type.
fn join_tree(
    catalog: &Catalog,
    plan: &GlobalPlan,
    templates: &HashMap<OperatorId, &ActivationTemplate>,
    visited: &mut HashSet<OperatorId>,
    join_op: OperatorId,
) -> Option<JoinTree> {
    let node = plan.node(join_op);
    let OperatorSpec::HashJoin {
        build_key,
        probe_key,
    } = &node.spec
    else {
        return None;
    };
    visited.insert(join_op);
    let build_input = *node.inputs.first()?;
    let probe_input = *node.inputs.get(1)?;
    let build_width = plan.node(build_input).schema.len();
    let build_type = plan.node(build_input).schema.column(*build_key).data_type;
    let probe_type = plan.node(probe_input).schema.column(*probe_key).data_type;
    if build_type != probe_type {
        return None;
    }
    let mut tree = JoinTree {
        scan_columns: HashMap::new(),
        key_columns: Vec::new(),
        keyed_on_pk: false,
    };
    for (input, key, offset) in [
        (build_input, *build_key, 0usize),
        (probe_input, *probe_key, build_width),
    ] {
        match find_source(catalog, plan, templates, visited, input)? {
            Source::Scan(scan) => {
                if tree.scan_columns.insert(scan, vec![key]).is_some() {
                    return None;
                }
                tree.keyed_on_pk |= table_pk(catalog, plan, scan)? == std::slice::from_ref(&key);
                tree.key_columns.push(offset + key);
            }
            Source::Join(sub) => {
                if !sub.key_columns.contains(&key) {
                    return None;
                }
                for (scan, cols) in sub.scan_columns {
                    if tree.scan_columns.insert(scan, cols).is_some() {
                        return None;
                    }
                }
                tree.keyed_on_pk |= sub.keyed_on_pk;
                tree.key_columns
                    .extend(sub.key_columns.iter().map(|c| offset + c));
            }
        }
    }
    Some(tree)
}

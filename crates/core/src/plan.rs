//! The global query plan and the statement registry.
//!
//! A [`GlobalPlan`] is a DAG of always-on shared operators (Figure 2 and
//! Figure 6 of the paper). Query *types* ([`StatementSpec`], e.g. JDBC
//! prepared statements) are registered against the plan: each statement
//! describes an acyclic path through the data-flow network (Section 4.1) by
//! listing, for every operator it touches, how to *activate* that operator for
//! one concrete execution (predicates, probe keys, limits, ...).
//!
//! The plan is static: it is compiled once for the whole workload and reused
//! for the lifetime of the engine. Per-query variation only enters through
//! activation parameters — this is what makes the computation shareable.

use shareddb_common::agg::AggregateFunction;
use shareddb_common::{Error, Expr, Result, Schema, SortKey, Value};
use shareddb_storage::{Catalog, ProbeRange};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an operator node within a [`GlobalPlan`].
pub type OperatorId = usize;

/// One aggregate computed by a shared group-by operator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub function: AggregateFunction,
    /// Input column (index into the operator's input schema). For `COUNT(*)`
    /// any column may be used together with [`AggregateFunction::Count`].
    pub column: usize,
    /// Name of the output column.
    pub output_name: String,
}

/// The kind of a shared operator node.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorSpec {
    /// Shared table scan (ClockScan) over a base table. Activated with a
    /// per-query selection predicate.
    TableScan {
        /// Base table name.
        table: String,
    },
    /// Shared index probe over a base table. Activated with a per-query key
    /// or key range.
    IndexProbe {
        /// Base table name.
        table: String,
    },
    /// Shared filter: evaluates each activated query's residual predicate
    /// once per candidate tuple (the "Like Expression" / "Disjunction" boxes
    /// of Figure 6).
    Filter,
    /// Shared hash join between input 0 (build side) and input 1 (probe side).
    /// The effective join predicate is `build_key = probe_key AND
    /// build.query_id ∩ probe.query_id ≠ ∅` (Section 3.3).
    HashJoin {
        /// Join column in the build input's schema.
        build_key: usize,
        /// Join column in the probe input's schema.
        probe_key: usize,
    },
    /// Shared nested-loop join (cross product) between input 0 and input 1.
    /// There is no key predicate: every pair of tuples whose query sets
    /// intersect combines. Residual equality predicates (cycle-closing join
    /// edges) are applied by a shared filter above. Execution is a batched
    /// block-nested loop, so the quadratic pass is amortised across all
    /// statements of the batch (the inner block is scanned once per outer
    /// block, not once per outer tuple).
    NestedLoopJoin,
    /// Shared index nested-loops join: for every tuple of input 0 (outer), the
    /// inner base table is probed through its index on `inner_column`.
    IndexNlJoin {
        /// Inner base table name.
        table: String,
        /// Join column in the outer input's schema.
        outer_key: usize,
        /// Indexed column of the inner table.
        inner_column: usize,
    },
    /// Shared sort (Figure 4): one big sort over the union of all interested
    /// tuples.
    Sort {
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
    },
    /// Shared Top-N: shared sort followed by a per-query limit.
    TopN {
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
    },
    /// Shared group-by: shared grouping phase, per-query aggregation and
    /// HAVING phase (Section 3.4).
    GroupBy {
        /// Grouping columns (indices into the input schema).
        group_columns: Vec<usize>,
        /// Aggregates to compute per group and query.
        aggregates: Vec<AggregateSpec>,
    },
    /// Shared duplicate elimination over the full input tuple.
    Distinct,
    /// Union of the tuples of all inputs (inputs must share a schema).
    Union,
}

impl OperatorSpec {
    /// Short name used in plan rendering and statistics.
    pub fn label(&self) -> String {
        match self {
            OperatorSpec::TableScan { table } => format!("Scan({table})"),
            OperatorSpec::IndexProbe { table } => format!("Probe({table})"),
            OperatorSpec::Filter => "Filter".to_string(),
            OperatorSpec::HashJoin { .. } => "HashJoin".to_string(),
            OperatorSpec::NestedLoopJoin => "NestedLoopJoin".to_string(),
            OperatorSpec::IndexNlJoin { table, .. } => format!("IndexNlJoin({table})"),
            OperatorSpec::Sort { .. } => "Sort".to_string(),
            OperatorSpec::TopN { .. } => "TopN".to_string(),
            OperatorSpec::GroupBy { .. } => "GroupBy".to_string(),
            OperatorSpec::Distinct => "Distinct".to_string(),
            OperatorSpec::Union => "Union".to_string(),
        }
    }

    /// True when the operator reads a base table (no plan inputs).
    pub fn is_storage(&self) -> bool {
        matches!(
            self,
            OperatorSpec::TableScan { .. } | OperatorSpec::IndexProbe { .. }
        )
    }

    /// The base table accessed by storage operators.
    pub fn storage_table(&self) -> Option<&str> {
        match self {
            OperatorSpec::TableScan { table } | OperatorSpec::IndexProbe { table } => {
                Some(table.as_str())
            }
            OperatorSpec::IndexNlJoin { table, .. } => Some(table.as_str()),
            _ => None,
        }
    }
}

/// One node of the global plan.
#[derive(Debug, Clone)]
pub struct OperatorNode {
    /// Node id (index into [`GlobalPlan::nodes`]).
    pub id: OperatorId,
    /// What the operator does.
    pub spec: OperatorSpec,
    /// Ids of the input operators (child nodes), in positional order.
    pub inputs: Vec<OperatorId>,
    /// Output schema of the operator.
    pub schema: Schema,
    /// Human-readable name (defaults to the spec label).
    pub name: String,
}

/// The always-on global plan: a DAG of shared operators.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlan {
    nodes: Vec<OperatorNode>,
}

impl GlobalPlan {
    /// The nodes of the plan in id order.
    pub fn nodes(&self) -> &[OperatorNode] {
        &self.nodes
    }

    /// Returns one node.
    pub fn node(&self, id: OperatorId) -> &OperatorNode {
        &self.nodes[id]
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of the operators that consume the output of `id`.
    pub fn parents(&self, id: OperatorId) -> Vec<OperatorId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Returns the nodes in a topological order (inputs before consumers).
    /// The plan builder only allows referencing already-created nodes as
    /// inputs, so ids are already topologically ordered.
    pub fn topological_order(&self) -> Vec<OperatorId> {
        (0..self.nodes.len()).collect()
    }

    /// Renders the plan as an indented tree rooted at each sink (an operator
    /// nobody consumes), for logging and the `fig6_plan` harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let consumed: Vec<bool> = {
            let mut c = vec![false; self.nodes.len()];
            for n in &self.nodes {
                for &i in &n.inputs {
                    c[i] = true;
                }
            }
            c
        };
        for node in &self.nodes {
            if !consumed[node.id] {
                self.render_node(node.id, 0, &mut out);
            }
        }
        out
    }

    fn render_node(&self, id: OperatorId, depth: usize, out: &mut String) {
        let node = &self.nodes[id];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("[{}] {}\n", node.id, node.name));
        for &input in &node.inputs {
            self.render_node(input, depth + 1, out);
        }
    }

    /// Counts operators per kind label (used by tests and the plan harness).
    pub fn operator_census(&self) -> HashMap<String, usize> {
        let mut census = HashMap::new();
        for n in &self.nodes {
            *census.entry(n.spec.label()).or_insert(0) += 1;
        }
        census
    }
}

/// Builder for [`GlobalPlan`]s. Nodes must be added bottom-up: an operator can
/// only reference inputs that already exist, which guarantees acyclicity.
pub struct PlanBuilder<'a> {
    catalog: &'a Catalog,
    nodes: Vec<OperatorNode>,
}

impl<'a> PlanBuilder<'a> {
    /// Starts building a plan against a catalog (used to resolve table
    /// schemas).
    pub fn new(catalog: &'a Catalog) -> Self {
        PlanBuilder {
            catalog,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, spec: OperatorSpec, inputs: Vec<OperatorId>, schema: Schema) -> OperatorId {
        let id = self.nodes.len();
        let name = format!("{}#{id}", spec.label());
        self.nodes.push(OperatorNode {
            id,
            spec,
            inputs,
            schema,
            name,
        });
        id
    }

    fn input_schema(&self, id: OperatorId) -> Result<Schema> {
        self.nodes
            .get(id)
            .map(|n| n.schema.clone())
            .ok_or_else(|| Error::Internal(format!("unknown plan input {id}")))
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(self.catalog.table(table)?.read().schema().clone())
    }

    /// Adds a shared table scan (ClockScan).
    pub fn table_scan(&mut self, table: &str) -> Result<OperatorId> {
        let schema = self.table_schema(table)?;
        Ok(self.push(
            OperatorSpec::TableScan {
                table: table.to_ascii_uppercase(),
            },
            vec![],
            schema,
        ))
    }

    /// Adds a shared index probe.
    pub fn index_probe(&mut self, table: &str) -> Result<OperatorId> {
        let schema = self.table_schema(table)?;
        Ok(self.push(
            OperatorSpec::IndexProbe {
                table: table.to_ascii_uppercase(),
            },
            vec![],
            schema,
        ))
    }

    /// Adds a shared filter over `input`.
    pub fn filter(&mut self, input: OperatorId) -> Result<OperatorId> {
        let schema = self.input_schema(input)?;
        Ok(self.push(OperatorSpec::Filter, vec![input], schema))
    }

    /// Adds a shared hash join; `build_key` / `probe_key` are column paths
    /// (e.g. `"ORDERS.O_ITEM_ID"`) resolved against the respective inputs.
    pub fn hash_join(
        &mut self,
        build: OperatorId,
        probe: OperatorId,
        build_key: &str,
        probe_key: &str,
    ) -> Result<OperatorId> {
        let build_schema = self.input_schema(build)?;
        let probe_schema = self.input_schema(probe)?;
        let build_col = build_schema.resolve_path(build_key)?;
        let probe_col = probe_schema.resolve_path(probe_key)?;
        let schema = build_schema.join(&probe_schema);
        Ok(self.push(
            OperatorSpec::HashJoin {
                build_key: build_col,
                probe_key: probe_col,
            },
            vec![build, probe],
            schema,
        ))
    }

    /// Adds a shared nested-loop join (cross product) of two inputs. The
    /// output schema is the concatenation `build × probe`.
    pub fn nested_loop_join(&mut self, build: OperatorId, probe: OperatorId) -> Result<OperatorId> {
        let build_schema = self.input_schema(build)?;
        let probe_schema = self.input_schema(probe)?;
        let schema = build_schema.join(&probe_schema);
        Ok(self.push(OperatorSpec::NestedLoopJoin, vec![build, probe], schema))
    }

    /// Adds a shared index nested-loops join probing `table` on
    /// `inner_column` with the outer tuple's `outer_key`.
    pub fn index_nl_join(
        &mut self,
        outer: OperatorId,
        table: &str,
        outer_key: &str,
        inner_column: &str,
    ) -> Result<OperatorId> {
        let outer_schema = self.input_schema(outer)?;
        let inner_schema = self.table_schema(table)?;
        let outer_col = outer_schema.resolve_path(outer_key)?;
        let inner_col = inner_schema.resolve_path(inner_column)?;
        let schema = outer_schema.join(&inner_schema);
        Ok(self.push(
            OperatorSpec::IndexNlJoin {
                table: table.to_ascii_uppercase(),
                outer_key: outer_col,
                inner_column: inner_col,
            },
            vec![outer],
            schema,
        ))
    }

    /// Adds a shared sort.
    pub fn sort(&mut self, input: OperatorId, keys: Vec<SortKey>) -> Result<OperatorId> {
        let schema = self.input_schema(input)?;
        Ok(self.push(OperatorSpec::Sort { keys }, vec![input], schema))
    }

    /// Adds a shared Top-N (sorted per `keys`, per-query limit set at
    /// activation time).
    pub fn top_n(&mut self, input: OperatorId, keys: Vec<SortKey>) -> Result<OperatorId> {
        let schema = self.input_schema(input)?;
        Ok(self.push(OperatorSpec::TopN { keys }, vec![input], schema))
    }

    /// Adds a shared group-by. The output schema is the grouping columns
    /// followed by one column per aggregate.
    pub fn group_by(
        &mut self,
        input: OperatorId,
        group_columns: Vec<&str>,
        aggregates: Vec<(AggregateFunction, &str, &str)>,
    ) -> Result<OperatorId> {
        let input_schema = self.input_schema(input)?;
        let group_cols: Vec<usize> = group_columns
            .iter()
            .map(|c| input_schema.resolve_path(c))
            .collect::<Result<_>>()?;
        let agg_specs: Vec<AggregateSpec> = aggregates
            .iter()
            .map(|(f, col, name)| {
                Ok(AggregateSpec {
                    function: *f,
                    column: input_schema.resolve_path(col)?,
                    output_name: name.to_string(),
                })
            })
            .collect::<Result<_>>()?;
        let mut columns: Vec<shareddb_common::Column> = group_cols
            .iter()
            .map(|&c| input_schema.column(c).clone())
            .collect();
        for agg in &agg_specs {
            let input_col = input_schema.column(agg.column);
            let data_type = match agg.function {
                AggregateFunction::Count => shareddb_common::DataType::Int,
                AggregateFunction::Avg => shareddb_common::DataType::Float,
                _ => input_col.data_type,
            };
            columns.push(shareddb_common::Column::nullable(
                agg.output_name.clone(),
                data_type,
            ));
        }
        let schema = Schema::new(columns);
        Ok(self.push(
            OperatorSpec::GroupBy {
                group_columns: group_cols,
                aggregates: agg_specs,
            },
            vec![input],
            schema,
        ))
    }

    /// Adds a shared duplicate-elimination operator.
    pub fn distinct(&mut self, input: OperatorId) -> Result<OperatorId> {
        let schema = self.input_schema(input)?;
        Ok(self.push(OperatorSpec::Distinct, vec![input], schema))
    }

    /// Adds a union of several same-schema inputs.
    pub fn union(&mut self, inputs: Vec<OperatorId>) -> Result<OperatorId> {
        if inputs.is_empty() {
            return Err(Error::Internal("union of zero inputs".into()));
        }
        let schema = self.input_schema(inputs[0])?;
        for &i in &inputs[1..] {
            if self.input_schema(i)?.len() != schema.len() {
                return Err(Error::Internal(
                    "union inputs must have the same arity".into(),
                ));
            }
        }
        Ok(self.push(OperatorSpec::Union, inputs, schema))
    }

    /// Finishes the plan.
    pub fn build(self) -> GlobalPlan {
        GlobalPlan { nodes: self.nodes }
    }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// How one statement activates one operator node per execution. Parameters
/// (`Expr::Param`) are bound with the statement's parameter vector when a
/// query is admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivationTemplate {
    /// Selection predicate pushed into a shared scan.
    Scan {
        /// Predicate template (may contain parameters).
        predicate: Expr,
    },
    /// Key or range look-up pushed into a shared index probe.
    Probe {
        /// Probed column (index into the table schema).
        column: usize,
        /// Key expression (parameter or literal) for an exact look-up; or
        /// a range described by optional bound expressions.
        range: ProbeTemplate,
        /// Residual predicate evaluated on fetched rows.
        residual: Option<Expr>,
    },
    /// Residual predicate evaluated by a shared filter operator.
    Filter {
        /// Predicate template.
        predicate: Expr,
    },
    /// The query participates in the operator without per-query configuration
    /// (joins, sorts, distinct, union).
    Participate,
    /// Per-query row limit of a shared Top-N operator.
    TopN {
        /// Maximum number of rows for this query.
        limit: usize,
    },
    /// Per-query HAVING predicate of a shared group-by (over the operator's
    /// output schema). `None` keeps all groups.
    Having {
        /// Optional predicate template.
        predicate: Option<Expr>,
    },
}

/// Template for a probe key or key range; expressions may contain parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeTemplate {
    /// Exact key look-up.
    Key(Expr),
    /// Range look-up `[low, high]` with inclusive flags.
    Range {
        /// Lower bound (None = unbounded).
        low: Option<(Expr, bool)>,
        /// Upper bound (None = unbounded).
        high: Option<(Expr, bool)>,
    },
}

impl ProbeTemplate {
    /// Binds parameters and evaluates the bound expressions to a concrete
    /// [`ProbeRange`].
    pub fn bind(&self, params: &[Value]) -> Result<ProbeRange> {
        let eval =
            |e: &Expr| -> Result<Value> { e.bind(params)?.eval(&shareddb_common::Tuple::empty()) };
        Ok(match self {
            ProbeTemplate::Key(e) => ProbeRange::Key(eval(e)?),
            ProbeTemplate::Range { low, high } => {
                let low = match low {
                    None => std::ops::Bound::Unbounded,
                    Some((e, inclusive)) => {
                        let v = eval(e)?;
                        if *inclusive {
                            std::ops::Bound::Included(v)
                        } else {
                            std::ops::Bound::Excluded(v)
                        }
                    }
                };
                let high = match high {
                    None => std::ops::Bound::Unbounded,
                    Some((e, inclusive)) => {
                        let v = eval(e)?;
                        if *inclusive {
                            std::ops::Bound::Included(v)
                        } else {
                            std::ops::Bound::Excluded(v)
                        }
                    }
                };
                ProbeRange::Range { low, high }
            }
        })
    }
}

/// One computed output column of a query statement: a scalar expression
/// evaluated over the root operator's output rows when results are routed
/// back to the client (`SELECT a + b, price * qty FROM ...`). Expressions are
/// resolved (only [`Expr::Column`] references) and may contain parameters,
/// which are bound per execution like activation templates.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputedColumn {
    /// Output column name (e.g. the rendered expression text).
    pub name: String,
    /// Output column type (best-effort static inference).
    pub data_type: shareddb_common::DataType,
    /// The expression over the root schema.
    pub expr: Expr,
}

/// Whether a statement reads or writes.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementKind {
    /// A query: activates operators and returns tuples from `root`.
    Query {
        /// Operator whose output is this statement's result.
        root: OperatorId,
        /// Output projection (indices into the root schema; empty = all).
        projection: Vec<usize>,
        /// Computed output columns. When non-empty this replaces `projection`:
        /// each result row is the evaluation of these expressions over the
        /// root row.
        compute: Vec<ComputedColumn>,
        /// Optional row limit applied when routing results.
        limit: Option<usize>,
        /// Re-deduplicate the *projected* output rows when routing results
        /// (SELECT DISTINCT). The shared Distinct operator eliminates
        /// duplicates over the full root tuple; a narrowing projection can
        /// reintroduce them, so distinct statements dedup again after
        /// projecting — and before the limit.
        distinct: bool,
    },
    /// An update: applied by the storage operator owning `table`.
    Update {
        /// Target table.
        table: String,
        /// Update template; assignment expressions and the predicate may
        /// contain parameters.
        template: UpdateTemplate,
    },
}

/// Parameterised update statement.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateTemplate {
    /// INSERT with one expression per column.
    Insert {
        /// Value expressions (parameters or literals), one per column.
        values: Vec<Expr>,
    },
    /// UPDATE ... SET ... WHERE ...
    Update {
        /// `(column, value expression)` assignments.
        assignments: Vec<(usize, Expr)>,
        /// Row filter.
        predicate: Expr,
    },
    /// DELETE ... WHERE ...
    Delete {
        /// Row filter.
        predicate: Expr,
    },
}

/// A registered statement (query type).
#[derive(Debug, Clone)]
pub struct StatementSpec {
    /// Statement name (e.g. `"getBestSellers"`).
    pub name: String,
    /// Read or write behaviour.
    pub kind: StatementKind,
    /// Per-operator activation templates (queries only).
    pub activations: Vec<(OperatorId, ActivationTemplate)>,
}

impl StatementSpec {
    /// Creates a query statement.
    pub fn query(name: impl Into<String>, root: OperatorId) -> Self {
        StatementSpec {
            name: name.into(),
            kind: StatementKind::Query {
                root,
                projection: Vec::new(),
                compute: Vec::new(),
                limit: None,
                distinct: false,
            },
            activations: Vec::new(),
        }
    }

    /// Creates an update statement.
    pub fn update(
        name: impl Into<String>,
        table: impl Into<String>,
        template: UpdateTemplate,
    ) -> Self {
        StatementSpec {
            name: name.into(),
            kind: StatementKind::Update {
                table: table.into().to_ascii_uppercase(),
                template,
            },
            activations: Vec::new(),
        }
    }

    /// Adds an activation template for one operator.
    pub fn activate(mut self, operator: OperatorId, template: ActivationTemplate) -> Self {
        self.activations.push((operator, template));
        self
    }

    /// Sets the output projection (queries only).
    pub fn project(mut self, columns: Vec<usize>) -> Self {
        if let StatementKind::Query { projection, .. } = &mut self.kind {
            *projection = columns;
        }
        self
    }

    /// Sets computed output columns (queries only); replaces the plain
    /// projection.
    pub fn compute(mut self, columns: Vec<ComputedColumn>) -> Self {
        if let StatementKind::Query { compute, .. } = &mut self.kind {
            *compute = columns;
        }
        self
    }

    /// Sets the output row limit (queries only).
    pub fn limit(mut self, n: usize) -> Self {
        if let StatementKind::Query { limit, .. } = &mut self.kind {
            *limit = Some(n);
        }
        self
    }

    /// Marks the output as SELECT DISTINCT: the projected result rows are
    /// re-deduplicated when routed (queries only).
    pub fn distinct(mut self) -> Self {
        if let StatementKind::Query { distinct, .. } = &mut self.kind {
            *distinct = true;
        }
        self
    }

    /// True for update statements.
    pub fn is_update(&self) -> bool {
        matches!(self.kind, StatementKind::Update { .. })
    }

    /// The result root operator for query statements.
    pub fn root(&self) -> Option<OperatorId> {
        match &self.kind {
            StatementKind::Query { root, .. } => Some(*root),
            StatementKind::Update { .. } => None,
        }
    }
}

/// The set of statements registered against a global plan.
#[derive(Debug, Clone, Default)]
pub struct StatementRegistry {
    statements: Vec<StatementSpec>,
    by_name: HashMap<String, usize>,
}

impl StatementRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a statement, returning its index.
    pub fn register(&mut self, spec: StatementSpec) -> Result<usize> {
        if self.by_name.contains_key(&spec.name) {
            return Err(Error::ConstraintViolation(format!(
                "statement {} already registered",
                spec.name
            )));
        }
        let idx = self.statements.len();
        self.by_name.insert(spec.name.clone(), idx);
        self.statements.push(spec);
        Ok(idx)
    }

    /// Looks up a statement by name.
    pub fn get(&self, name: &str) -> Result<(usize, &StatementSpec)> {
        self.by_name
            .get(name)
            .map(|&i| (i, &self.statements[i]))
            .ok_or_else(|| Error::UnknownStatement(name.to_string()))
    }

    /// Returns a statement by index.
    pub fn by_index(&self, idx: usize) -> &StatementSpec {
        &self.statements[idx]
    }

    /// Number of registered statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when no statement is registered.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Iterates over all statements.
    pub fn iter(&self) -> impl Iterator<Item = &StatementSpec> {
        self.statements.iter()
    }

    /// Checks that every statement references existing operators and that
    /// activation templates are compatible with the operator kinds.
    pub fn validate(&self, plan: &GlobalPlan) -> Result<()> {
        for spec in &self.statements {
            if let Some(root) = spec.root() {
                if root >= plan.len() {
                    return Err(Error::Internal(format!(
                        "statement {} roots at unknown operator {root}",
                        spec.name
                    )));
                }
                if let StatementKind::Query { compute, .. } = &spec.kind {
                    let width = plan.node(root).schema.len();
                    for column in compute {
                        for idx in column.expr.referenced_columns() {
                            if idx >= width {
                                return Err(Error::Internal(format!(
                                    "statement {} computes {} over unknown root column {idx}",
                                    spec.name, column.name
                                )));
                            }
                        }
                    }
                }
            }
            for (op, template) in &spec.activations {
                if *op >= plan.len() {
                    return Err(Error::Internal(format!(
                        "statement {} activates unknown operator {op}",
                        spec.name
                    )));
                }
                let node = plan.node(*op);
                let compatible = matches!(
                    (&node.spec, template),
                    (
                        OperatorSpec::TableScan { .. },
                        ActivationTemplate::Scan { .. }
                    ) | (
                        OperatorSpec::IndexProbe { .. },
                        ActivationTemplate::Probe { .. }
                    ) | (OperatorSpec::Filter, ActivationTemplate::Filter { .. })
                        | (OperatorSpec::TopN { .. }, ActivationTemplate::TopN { .. })
                        | (
                            OperatorSpec::GroupBy { .. },
                            ActivationTemplate::Having { .. }
                        )
                        | (_, ActivationTemplate::Participate)
                );
                if !compatible {
                    return Err(Error::Internal(format!(
                        "statement {} has an incompatible activation for operator {} ({})",
                        spec.name,
                        op,
                        node.spec.label()
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deployment (core assignment + replication description, Section 4.3 / 4.5)
// ---------------------------------------------------------------------------

/// A deployment plan: which CPU core each operator is pinned to, and which
/// operators are replicated. The current runtime uses the deployment only to
/// size its core budget and to document intent (hard affinity is not enforced
/// at the OS level; see DESIGN.md, substitutions).
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    /// Operator -> core assignments.
    pub assignments: Vec<(OperatorId, usize)>,
    /// Operators replicated n-ways (Section 4.5). Not used by the default
    /// configuration, mirroring the paper's experiments.
    pub replicas: Vec<(OperatorId, usize)>,
}

impl Deployment {
    /// Round-robin assignment of operators to `cores` cores.
    pub fn round_robin(plan: &GlobalPlan, cores: usize) -> Self {
        let cores = cores.max(1);
        Deployment {
            assignments: plan.nodes().iter().map(|n| (n.id, n.id % cores)).collect(),
            replicas: Vec::new(),
        }
    }

    /// Number of distinct cores used.
    pub fn cores_used(&self) -> usize {
        let mut cores: Vec<usize> = self.assignments.iter().map(|(_, c)| *c).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }
}

impl fmt::Display for GlobalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::DataType;
    use shareddb_storage::TableDef;

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("USERS")
                    .column("USER_ID", DataType::Int)
                    .column("COUNTRY", DataType::Text)
                    .column("ACCOUNT", DataType::Float)
                    .primary_key(&["USER_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDERS")
                    .column("ORDER_ID", DataType::Int)
                    .column("USER_ID", DataType::Int)
                    .column("STATUS", DataType::Text)
                    .primary_key(&["ORDER_ID"]),
            )
            .unwrap();
        catalog
    }

    #[test]
    fn build_figure_2_style_plan() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        let users = b.table_scan("USERS").unwrap();
        let orders = b.table_scan("ORDERS").unwrap();
        let join = b
            .hash_join(users, orders, "USERS.USER_ID", "ORDERS.USER_ID")
            .unwrap();
        let gamma = b
            .group_by(
                users,
                vec!["USERS.COUNTRY"],
                vec![(AggregateFunction::Sum, "USERS.USER_ID", "SUM_USER_ID")],
            )
            .unwrap();
        let sort = b.sort(join, vec![SortKey::asc(0)]).unwrap();
        let plan = b.build();
        assert_eq!(plan.len(), 5);
        assert!(plan.node(users).spec.is_storage());
        assert_eq!(plan.node(join).inputs, vec![users, orders]);
        assert_eq!(plan.node(join).schema.len(), 6);
        assert_eq!(plan.node(gamma).schema.len(), 2);
        assert_eq!(plan.node(sort).schema.len(), 6);
        // The scan feeds two parents: the join and the group-by.
        assert_eq!(plan.parents(users), vec![join, gamma]);
        let rendering = plan.render();
        assert!(rendering.contains("HashJoin"));
        assert!(rendering.contains("Scan(USERS)"));
    }

    #[test]
    fn join_key_resolution_errors() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        let users = b.table_scan("USERS").unwrap();
        let orders = b.table_scan("ORDERS").unwrap();
        assert!(b
            .hash_join(users, orders, "USERS.MISSING", "ORDERS.USER_ID")
            .is_err());
        assert!(b.table_scan("NO_SUCH_TABLE").is_err());
    }

    #[test]
    fn union_arity_check() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        let users = b.table_scan("USERS").unwrap();
        let orders = b.table_scan("ORDERS").unwrap();
        let users2 = b.table_scan("USERS").unwrap();
        assert!(b.union(vec![users, orders]).is_ok()); // same arity (3)
        assert!(b.union(vec![]).is_err());
        let join = b
            .hash_join(users, orders, "USERS.USER_ID", "ORDERS.USER_ID")
            .unwrap();
        assert!(b.union(vec![users2, join]).is_err());
    }

    #[test]
    fn statement_registry_and_validation() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        let users = b.table_scan("USERS").unwrap();
        let top = b.top_n(users, vec![SortKey::desc(2)]).unwrap();
        let plan = b.build();

        let mut registry = StatementRegistry::new();
        let spec = StatementSpec::query("richestUsers", top)
            .activate(
                users,
                ActivationTemplate::Scan {
                    predicate: Expr::col(2).gt(Expr::param(0)),
                },
            )
            .activate(top, ActivationTemplate::TopN { limit: 10 })
            .project(vec![0, 2]);
        registry.register(spec).unwrap();
        assert!(registry.validate(&plan).is_ok());
        assert_eq!(registry.get("richestUsers").unwrap().0, 0);
        assert!(registry.get("missing").is_err());
        // Duplicate registration is rejected.
        assert!(registry
            .register(StatementSpec::query("richestUsers", top))
            .is_err());

        // Incompatible activation: TopN template on a scan operator.
        let mut bad_registry = StatementRegistry::new();
        bad_registry
            .register(
                StatementSpec::query("bad", top)
                    .activate(users, ActivationTemplate::TopN { limit: 3 }),
            )
            .unwrap();
        assert!(bad_registry.validate(&plan).is_err());
    }

    #[test]
    fn update_statement_spec() {
        let spec = StatementSpec::update(
            "addUser",
            "users",
            UpdateTemplate::Insert {
                values: vec![Expr::param(0), Expr::param(1), Expr::lit(0.0f64)],
            },
        );
        assert!(spec.is_update());
        assert_eq!(spec.root(), None);
        if let StatementKind::Update { table, .. } = &spec.kind {
            assert_eq!(table, "USERS");
        } else {
            panic!("expected update");
        }
    }

    #[test]
    fn probe_template_binding() {
        let t = ProbeTemplate::Key(Expr::param(0));
        match t.bind(&[Value::Int(7)]).unwrap() {
            ProbeRange::Key(v) => assert_eq!(v, Value::Int(7)),
            _ => panic!("expected key"),
        }
        let t = ProbeTemplate::Range {
            low: Some((Expr::param(0), true)),
            high: None,
        };
        match t.bind(&[Value::Int(3)]).unwrap() {
            ProbeRange::Range { low, high } => {
                assert_eq!(low, std::ops::Bound::Included(Value::Int(3)));
                assert_eq!(high, std::ops::Bound::Unbounded);
            }
            _ => panic!("expected range"),
        }
        assert!(t.bind(&[]).is_err());
    }

    #[test]
    fn deployment_round_robin() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        for _ in 0..5 {
            b.table_scan("USERS").unwrap();
        }
        let plan = b.build();
        let d = Deployment::round_robin(&plan, 2);
        assert_eq!(d.assignments.len(), 5);
        assert_eq!(d.cores_used(), 2);
        let d1 = Deployment::round_robin(&plan, 0);
        assert_eq!(d1.cores_used(), 1);
    }

    #[test]
    fn census_counts_operator_kinds() {
        let catalog = catalog();
        let mut b = PlanBuilder::new(&catalog);
        let u = b.table_scan("USERS").unwrap();
        let o = b.table_scan("ORDERS").unwrap();
        b.hash_join(u, o, "USER_ID", "ORDERS.USER_ID").ok();
        let plan = b.build();
        let census = plan.operator_census();
        assert_eq!(census.get("Scan(USERS)"), Some(&1));
        assert_eq!(census.get("Scan(ORDERS)"), Some(&1));
    }
}

//! The core budget: a counting semaphore that models "number of CPU cores".
//!
//! The paper's scalability experiment (Figure 8) varies the number of CPU
//! cores available to the database server with the `maxcpus` kernel parameter.
//! SharedDB assigns one operator per core (Section 4.3); when fewer cores than
//! operators are available, operators share cores. We model that by letting
//! every operator thread acquire a permit from this budget for the duration of
//! one processing cycle: with `n` permits, at most `n` operators make progress
//! concurrently, which reproduces the throughput-vs-cores shape without
//! requiring OS-level affinity.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A counting semaphore handing out "core" permits.
#[derive(Debug)]
pub struct CoreBudget {
    inner: Arc<BudgetInner>,
}

#[derive(Debug)]
struct BudgetInner {
    permits: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

/// A held permit; releases the core when dropped.
pub struct CorePermit {
    inner: Arc<BudgetInner>,
}

impl CoreBudget {
    /// Creates a budget with `cores` permits. `usize::MAX` (the default
    /// configuration) effectively disables the limit.
    pub fn new(cores: usize) -> Self {
        CoreBudget {
            inner: Arc::new(BudgetInner {
                permits: Mutex::new(cores.max(1)),
                available: Condvar::new(),
                capacity: cores.max(1),
            }),
        }
    }

    /// Total number of permits.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Acquires one permit, blocking until one is available.
    pub fn acquire(&self) -> CorePermit {
        if self.inner.capacity == usize::MAX {
            // Unlimited budget: skip the lock entirely.
            return CorePermit {
                inner: Arc::clone(&self.inner),
            };
        }
        let mut permits = self.inner.permits.lock();
        while *permits == 0 {
            self.inner.available.wait(&mut permits);
        }
        *permits -= 1;
        CorePermit {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Current number of available permits (diagnostics / tests).
    pub fn available(&self) -> usize {
        if self.inner.capacity == usize::MAX {
            usize::MAX
        } else {
            *self.inner.permits.lock()
        }
    }
}

impl Clone for CoreBudget {
    fn clone(&self) -> Self {
        CoreBudget {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for CorePermit {
    fn drop(&mut self) {
        if self.inner.capacity == usize::MAX {
            return;
        }
        let mut permits = self.inner.permits.lock();
        *permits += 1;
        self.inner.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn permits_are_returned_on_drop() {
        let budget = CoreBudget::new(2);
        assert_eq!(budget.available(), 2);
        let a = budget.acquire();
        let _b = budget.acquire();
        assert_eq!(budget.available(), 0);
        drop(a);
        assert_eq!(budget.available(), 1);
    }

    #[test]
    fn unlimited_budget_never_blocks() {
        let budget = CoreBudget::new(usize::MAX);
        let _permits: Vec<_> = (0..1000).map(|_| budget.acquire()).collect();
        assert_eq!(budget.available(), usize::MAX);
    }

    #[test]
    fn concurrency_is_bounded() {
        let budget = CoreBudget::new(3);
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let budget = budget.clone();
            let running = Arc::clone(&running);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _permit = budget.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    running.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
    }
}

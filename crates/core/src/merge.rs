//! Recombination of partitioned partial results.
//!
//! One statement execution can be split over disjoint horizontal partitions
//! of its tables at **two levels**: cluster fanout scatters it across engine
//! replicas, and a single engine splits its shared scan into `scan_segments`
//! row segments (see [`crate::tuple_partition`]). Either way the partial
//! results are merged here into one result that is equivalent to an
//! unpartitioned execution:
//!
//! * plain scans/filters concatenate,
//! * ordered results (shared sort / Top-N roots) merge by the root's sort
//!   keys (and re-apply the limit),
//! * aggregated results (shared group-by roots) re-combine partial groups
//!   (SUM of SUMs, SUM of COUNTs, MIN of MINs, MAX of MAXes; AVG ships as
//!   (sum, hidden count) partials and recombines exactly),
//! * DISTINCT roots re-deduplicate across partitions.

use crate::engine::ResultSet;
use shareddb_common::agg::AggregateFunction;
use shareddb_common::sort::compare_tuples;
use shareddb_common::{Error, Expr, Result, SortKey, Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// How the partial results of one fanned-out statement recombine.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeSpec {
    /// Unordered union of the partitions.
    Concat,
    /// Merge by the root operator's sort keys, then re-apply the limit.
    Ordered {
        /// Sort keys of the root operator.
        keys: Vec<SortKey>,
        /// Row limit (Top-N activation limit and/or statement LIMIT).
        limit: Option<usize>,
    },
    /// Re-aggregate partial groups: the first `group_width` columns are the
    /// grouping key, the remaining columns are partial aggregates combined
    /// per `functions`.
    Grouped {
        /// Number of grouping columns.
        group_width: usize,
        /// Aggregate function per aggregate column, in schema order.
        functions: Vec<AggregateFunction>,
        /// True when the partial rows ship AVG aggregates as mergeable
        /// partials (`SubmitOptions::partial_aggregation`): each AVG column
        /// carries the partial **sum** and one hidden count column per AVG is
        /// appended to the row, in aggregate order. The merge recombines
        /// sum/count, emits the exact average and drops the hidden columns.
        avg_partials: bool,
        /// HAVING predicate over the *recombined* group row (group columns
        /// followed by final aggregate values). A partition cannot filter its
        /// partial groups — another partition may complete them — so the
        /// group-by operators run in partial mode (HAVING deferred) and the
        /// predicate is applied here, once per merged group. Parameters are
        /// bound at submit time.
        having: Option<Expr>,
    },
    /// Union with duplicate elimination over the whole tuple.
    Distinct,
}

impl MergeSpec {
    /// Binds statement parameters into the spec's predicate templates (the
    /// deferred HAVING of grouped merges); other variants pass through.
    pub fn bind(&self, params: &[Value]) -> Result<MergeSpec> {
        match self {
            MergeSpec::Grouped {
                group_width,
                functions,
                avg_partials,
                having: Some(having),
            } => Ok(MergeSpec::Grouped {
                group_width: *group_width,
                functions: functions.clone(),
                avg_partials: *avg_partials,
                having: Some(having.bind(params)?),
            }),
            other => Ok(other.clone()),
        }
    }
}

/// Merges the partial results of all partitions into one result set.
pub fn merge_results(spec: &MergeSpec, mut parts: Vec<ResultSet>) -> Result<ResultSet> {
    let Some(first) = parts.first() else {
        return Err(Error::Internal("merge of zero partial results".into()));
    };
    let schema = first.schema.clone();
    let mut rows: Vec<Tuple> = Vec::with_capacity(parts.iter().map(|p| p.rows.len()).sum());
    for part in &mut parts {
        rows.append(&mut part.rows);
    }
    let rows = match spec {
        MergeSpec::Concat => rows,
        MergeSpec::Ordered { keys, limit } => {
            // The partial results are each sorted already; a plain stable
            // sort over the concatenation keeps ties in partition order and
            // is O(n log n) with tiny constants at these sizes.
            let mut rows = rows;
            rows.sort_by(|a, b| compare_tuples(a, b, keys));
            if let Some(limit) = limit {
                rows.truncate(*limit);
            }
            rows
        }
        MergeSpec::Grouped {
            group_width,
            functions,
            avg_partials,
            having,
        } => merge_groups(
            rows,
            *group_width,
            functions,
            *avg_partials,
            having.as_ref(),
        )?,
        MergeSpec::Distinct => {
            let mut rows = rows;
            rows.sort_by(compare_all);
            rows.dedup();
            rows
        }
    };
    Ok(ResultSet { schema, rows })
}

fn compare_all(a: &Tuple, b: &Tuple) -> Ordering {
    for (va, vb) in a.values().iter().zip(b.values()) {
        let ord = va.cmp(vb);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn merge_groups(
    rows: Vec<Tuple>,
    group_width: usize,
    functions: &[AggregateFunction],
    avg_partials: bool,
    having: Option<&Expr>,
) -> Result<Vec<Tuple>> {
    // With AVG partials each row carries one hidden count column per AVG
    // aggregate after the regular aggregate columns.
    let avg_count = if avg_partials {
        functions
            .iter()
            .filter(|f| **f == AggregateFunction::Avg)
            .count()
    } else {
        0
    };
    let width = group_width + functions.len() + avg_count;
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for row in rows {
        let values = row.values();
        if values.len() != width {
            return Err(Error::Internal(format!(
                "partial group row has {} columns, expected {width}",
                values.len(),
            )));
        }
        let key: Vec<Value> = values[..group_width].to_vec();
        match groups.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(values[group_width..].to_vec());
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let acc = e.get_mut();
                for (i, function) in functions.iter().enumerate() {
                    // A shipped AVG partial is a plain sum: recombine it (and
                    // its hidden count) additively.
                    let effective = if avg_partials && *function == AggregateFunction::Avg {
                        AggregateFunction::Sum
                    } else {
                        *function
                    };
                    acc[i] = combine(effective, &acc[i], &values[group_width + i])?;
                }
                for i in functions.len()..functions.len() + avg_count {
                    acc[i] = combine(AggregateFunction::Count, &acc[i], &values[group_width + i])?;
                }
            }
        }
    }
    let mut rows: Vec<Tuple> = Vec::with_capacity(groups.len());
    for (mut key, mut aggs) in groups {
        if avg_count > 0 {
            finalize_avg_partials(&mut aggs, functions)?;
        }
        key.append(&mut aggs);
        let row = Tuple::new(key);
        // The deferred HAVING: evaluated over the recombined final row
        // (exactly what a single engine's group-by would have filtered on).
        if let Some(predicate) = having {
            if !predicate.eval_predicate(&row)? {
                continue;
            }
        }
        rows.push(row);
    }
    // Deterministic output order (single-engine group-by order is
    // hash-dependent anyway, so any stable order is fine).
    rows.sort_by(compare_all);
    Ok(rows)
}

/// Divides each recombined AVG sum by its recombined hidden count and drops
/// the hidden count columns.
fn finalize_avg_partials(aggs: &mut Vec<Value>, functions: &[AggregateFunction]) -> Result<()> {
    let mut count_idx = functions.len();
    for (i, function) in functions.iter().enumerate() {
        if *function != AggregateFunction::Avg {
            continue;
        }
        let count = match &aggs[count_idx] {
            Value::Int(n) => *n,
            _ => 0,
        };
        aggs[i] = if count > 0 && !aggs[i].is_null() {
            Value::Float(aggs[i].as_float()? / count as f64)
        } else {
            Value::Null
        };
        count_idx += 1;
    }
    aggs.truncate(functions.len());
    Ok(())
}

/// Combines two partial aggregate values of one group.
fn combine(function: AggregateFunction, a: &Value, b: &Value) -> Result<Value> {
    // A NULL partial aggregate means "no qualifying rows in this partition".
    if a.is_null() {
        return Ok(b.clone());
    }
    if b.is_null() {
        return Ok(a.clone());
    }
    Ok(match function {
        AggregateFunction::Sum | AggregateFunction::Count => add(a, b)?,
        AggregateFunction::Min => {
            if b.cmp(a) == Ordering::Less {
                b.clone()
            } else {
                a.clone()
            }
        }
        AggregateFunction::Max => {
            if b.cmp(a) == Ordering::Greater {
                b.clone()
            } else {
                a.clone()
            }
        }
        AggregateFunction::Avg => {
            return Err(Error::Internal(
                "AVG cannot be merged from partial averages".into(),
            ))
        }
    })
}

fn add(a: &Value, b: &Value) -> Result<Value> {
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
        _ => Value::Float(a.as_float()? + b.as_float()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, DataType, Schema};

    fn result(rows: Vec<Tuple>) -> ResultSet {
        ResultSet {
            schema: Schema::new(vec![
                shareddb_common::Column::new("A", DataType::Int),
                shareddb_common::Column::new("B", DataType::Int),
            ]),
            rows,
        }
    }

    #[test]
    fn ordered_merge_respects_keys_and_limit() {
        let a = result(vec![tuple![1i64, 10i64], tuple![3i64, 30i64]]);
        let b = result(vec![tuple![2i64, 20i64], tuple![4i64, 40i64]]);
        let merged = merge_results(
            &MergeSpec::Ordered {
                keys: vec![SortKey::asc(0)],
                limit: Some(3),
            },
            vec![a, b],
        )
        .unwrap();
        let ids: Vec<i64> = merged
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn grouped_merge_recombines_partials() {
        // Two partitions each holding partial (key, SUM, COUNT, MIN, MAX).
        let schema_row = |k: &str, s: i64, c: i64, lo: i64, hi: i64| tuple![k, s, c, lo, hi];
        let a = ResultSet {
            schema: Schema::new(vec![
                shareddb_common::Column::new("K", DataType::Text),
                shareddb_common::Column::new("S", DataType::Int),
                shareddb_common::Column::new("C", DataType::Int),
                shareddb_common::Column::new("LO", DataType::Int),
                shareddb_common::Column::new("HI", DataType::Int),
            ]),
            rows: vec![schema_row("x", 10, 2, 1, 9), schema_row("y", 5, 1, 5, 5)],
        };
        let mut b = a.clone();
        b.rows = vec![schema_row("x", 7, 3, 0, 4)];
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![
                    AggregateFunction::Sum,
                    AggregateFunction::Count,
                    AggregateFunction::Min,
                    AggregateFunction::Max,
                ],
                avg_partials: false,
                having: None,
            },
            vec![a, b],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 2);
        let x = merged
            .rows
            .iter()
            .find(|r| r[0] == Value::text("x"))
            .unwrap();
        assert_eq!(x[1], Value::Int(17));
        assert_eq!(x[2], Value::Int(5));
        assert_eq!(x[3], Value::Int(0));
        assert_eq!(x[4], Value::Int(9));
    }

    #[test]
    fn distinct_merge_deduplicates() {
        let a = result(vec![tuple![1i64, 1i64], tuple![2i64, 2i64]]);
        let b = result(vec![tuple![2i64, 2i64], tuple![3i64, 3i64]]);
        let merged = merge_results(&MergeSpec::Distinct, vec![a, b]).unwrap();
        assert_eq!(merged.rows.len(), 3);
    }

    /// AVG fanout: partial rows ship (sum, hidden count); the merge divides
    /// the recombined sum by the recombined count and drops the hidden
    /// column, so the merged average is exact (not an average of averages).
    #[test]
    fn grouped_merge_recombines_avg_partials() {
        let schema = Schema::new(vec![
            shareddb_common::Column::new("K", DataType::Text),
            shareddb_common::Column::new("AVG_V", DataType::Float),
            shareddb_common::Column::new("CNT", DataType::Int),
        ]);
        // Partition A: key x has sum 30 over 3 rows; partition B: sum 10
        // over 1 row. Average of averages would be (10 + 10) / 2 = 10;
        // the exact merged average is 40 / 4 = 10 — pick asymmetric values
        // so a wrong merge shows: A sum 30/3, B sum 50/1.
        let a = ResultSet {
            schema: schema.clone(),
            rows: vec![tuple!["x", 30.0f64, 3i64], tuple!["y", 8.0f64, 2i64]],
        };
        let b = ResultSet {
            schema,
            rows: vec![tuple!["x", 50.0f64, 1i64]],
        };
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![AggregateFunction::Avg],
                avg_partials: true,
                having: None,
            },
            vec![a, b],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 2);
        let x = merged
            .rows
            .iter()
            .find(|r| r[0] == Value::text("x"))
            .unwrap();
        // Exact: (30 + 50) / (3 + 1) = 20. Average-of-averages would be 30.
        assert_eq!(x.values().len(), 2, "hidden count column leaked");
        assert_eq!(x[1], Value::Float(20.0));
        let y = merged
            .rows
            .iter()
            .find(|r| r[0] == Value::text("y"))
            .unwrap();
        assert_eq!(y[1], Value::Float(4.0));
    }

    /// The deferred HAVING runs over *recombined* groups: a group whose
    /// partial sums each miss the threshold still survives when the
    /// recombined total passes (filtering per partition would wrongly drop
    /// it), and a group whose total misses is dropped exactly once.
    #[test]
    fn grouped_merge_applies_having_after_recombination() {
        let schema = Schema::new(vec![
            shareddb_common::Column::new("K", DataType::Text),
            shareddb_common::Column::new("S", DataType::Int),
        ]);
        let part = |rows| ResultSet {
            schema: schema.clone(),
            rows,
        };
        // x: partials 60 + 60 = 120; y: 40 + 30 = 70. HAVING S > 100 keeps
        // only x — but every individual partial is below 100.
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![AggregateFunction::Sum],
                avg_partials: false,
                having: Some(Expr::col(1).gt(Expr::lit(100i64))),
            },
            vec![
                part(vec![tuple!["x", 60i64], tuple!["y", 40i64]]),
                part(vec![tuple!["x", 60i64], tuple!["y", 30i64]]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 1);
        assert_eq!(merged.rows[0][0], Value::text("x"));
        assert_eq!(merged.rows[0][1], Value::Int(120));
    }

    /// Deferred HAVING over an AVG aggregate sees the *finalized* average
    /// (sum/count recombined and divided), not the shipped partial sum.
    #[test]
    fn grouped_merge_having_sees_final_avg() {
        let schema = Schema::new(vec![
            shareddb_common::Column::new("K", DataType::Text),
            shareddb_common::Column::new("AVG_V", DataType::Float),
            shareddb_common::Column::new("CNT", DataType::Int),
        ]);
        let part = |rows| ResultSet {
            schema: schema.clone(),
            rows,
        };
        // x: (30 + 50) / (3 + 1) = 20; y: (8) / (2) = 4. HAVING AVG > 10
        // must keep x and drop y; filtering on the raw partial sums (30, 50,
        // 8) would keep both.
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![AggregateFunction::Avg],
                avg_partials: true,
                having: Some(Expr::col(1).gt(Expr::lit(10.0f64))),
            },
            vec![
                part(vec![tuple!["x", 30.0f64, 3i64], tuple!["y", 8.0f64, 2i64]]),
                part(vec![tuple!["x", 50.0f64, 1i64]]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 1);
        assert_eq!(merged.rows[0][0], Value::text("x"));
        assert_eq!(merged.rows[0][1], Value::Float(20.0));
    }

    /// `MergeSpec::bind` substitutes statement parameters into the deferred
    /// HAVING and leaves parameterless specs untouched.
    #[test]
    fn merge_spec_binds_having_parameters() {
        let spec = MergeSpec::Grouped {
            group_width: 1,
            functions: vec![AggregateFunction::Sum],
            avg_partials: false,
            having: Some(Expr::col(1).gt(Expr::param(0))),
        };
        let bound = spec.bind(&[Value::Int(100)]).unwrap();
        let MergeSpec::Grouped {
            having: Some(having),
            ..
        } = &bound
        else {
            panic!("unexpected {bound:?}");
        };
        assert!(having.is_bound());
        // Missing parameters surface as an error at submit time.
        assert!(spec.bind(&[]).is_err());
        assert_eq!(MergeSpec::Concat.bind(&[]).unwrap(), MergeSpec::Concat);
    }

    /// An AVG group empty in every partition merges to NULL.
    #[test]
    fn avg_partials_all_null_merge_to_null() {
        let schema = Schema::new(vec![
            shareddb_common::Column::new("K", DataType::Text),
            shareddb_common::Column::new("AVG_V", DataType::Float),
            shareddb_common::Column::new("CNT", DataType::Int),
        ]);
        let part = |rows| ResultSet {
            schema: schema.clone(),
            rows,
        };
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![AggregateFunction::Avg],
                avg_partials: true,
                having: None,
            },
            vec![
                part(vec![tuple!["x", Value::Null, 0i64]]),
                part(vec![tuple!["x", Value::Null, 0i64]]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows[0][1], Value::Null);
    }

    #[test]
    fn avg_partials_cannot_merge() {
        assert!(combine(AggregateFunction::Avg, &Value::Int(1), &Value::Int(2)).is_err());
        // NULL partials pass through untouched for every function.
        assert_eq!(
            combine(AggregateFunction::Sum, &Value::Null, &Value::Int(2)).unwrap(),
            Value::Int(2)
        );
    }

    /// Hash-segmented lanes are rarely balanced: one segment may hold most
    /// of a group's rows, another may not see the group (or any row) at all.
    /// Merging such asymmetric partials must still be exact for AVG
    /// (sum/count recombination), DISTINCT (cross-segment dedup) and Top-N
    /// (ordered merge with limit).
    #[test]
    fn asymmetric_segment_partials_merge_exactly() {
        // AVG over 3 lopsided segments: (10+20+30+40)/4 from segment 0,
        // a single row from segment 1, nothing from segment 2.
        let avg_part = |rows: Vec<Tuple>| ResultSet {
            schema: Schema::new(vec![
                shareddb_common::Column::new("K", DataType::Text),
                shareddb_common::Column::new("AVG_V", DataType::Int),
            ]),
            rows,
        };
        let merged = merge_results(
            &MergeSpec::Grouped {
                group_width: 1,
                functions: vec![AggregateFunction::Avg],
                avg_partials: true,
                having: None,
            },
            vec![
                avg_part(vec![tuple!["x", 100i64, 4i64]]),
                avg_part(vec![tuple!["x", 8i64, 1i64], tuple!["y", 7i64, 1i64]]),
                avg_part(vec![]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 2);
        let x = merged
            .rows
            .iter()
            .find(|r| r[0] == Value::text("x"))
            .unwrap();
        // (100 + 8) / (4 + 1); the hidden count column is dropped.
        assert_eq!(x.values().len(), 2);
        assert_eq!(x[1].as_float().unwrap(), 108.0 / 5.0);
        let y = merged
            .rows
            .iter()
            .find(|r| r[0] == Value::text("y"))
            .unwrap();
        assert_eq!(y[1].as_float().unwrap(), 7.0);

        // DISTINCT: duplicates within and across asymmetric segments
        // collapse; an empty segment contributes nothing.
        let merged = merge_results(
            &MergeSpec::Distinct,
            vec![
                result(vec![
                    tuple![1i64, 1i64],
                    tuple![1i64, 1i64],
                    tuple![2i64, 2i64],
                ]),
                result(vec![]),
                result(vec![tuple![2i64, 2i64], tuple![3i64, 3i64]]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 3);

        // Top-N: one segment holds all the winners, the limit still binds.
        let merged = merge_results(
            &MergeSpec::Ordered {
                keys: vec![SortKey::desc(1)],
                limit: Some(2),
            },
            vec![
                result(vec![
                    tuple![1i64, 90i64],
                    tuple![2i64, 80i64],
                    tuple![3i64, 70i64],
                ]),
                result(vec![]),
                result(vec![tuple![4i64, 5i64]]),
            ],
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 2);
        assert_eq!(merged.rows[0][1], Value::Int(90));
        assert_eq!(merged.rows[1][1], Value::Int(80));
    }
}

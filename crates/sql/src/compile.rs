//! SQL workload → executable global plan.
//!
//! This module completes the two-step compilation of Figure 3: step 1 is the
//! per-query optimisation of [`crate::logical::LogicalPlan`]; step 2 (here)
//! *merges* the logical plans of the whole workload into one executable
//! [`GlobalPlan`] with shared operators, and registers each statement's
//! activation path against the plan. Sharing follows Section 3.3:
//!
//! * one shared **scan** per base table (per occurrence, so self-joins get
//!   distinct nodes) activated with each statement's pushed-down predicate,
//! * one shared **hash join** per `(inputs, join columns)` pair — statements
//!   joining the same tables on the same keys reuse the same operator,
//! * general join **graphs**: the equi-join edges are clustered into a
//!   spanning tree of shared hash joins; cycle-closing edges become residual
//!   equality filters over the join output, and FROM pieces with no join
//!   edge at all connect through a shared batched **nested-loop join**
//!   (cross product),
//! * one shared **filter**, **group-by**, **distinct** and **sort** node per
//!   distinct configuration. HAVING (and ORDER BY) may reference aggregate
//!   outputs; aggregates not in the SELECT list are computed as hidden
//!   columns of the shared group-by.
//!
//! The module also provides [`canonicalize`] / [`SqlTemplate`]: token-level
//! auto-parameterisation that rewrites literals to `?` so that an ad-hoc SQL
//! string can be matched against the registered statement *types* of the
//! always-on plan (queries whose type is not part of the compiled plan are
//! rejected, exactly as in the paper's prepared-workload model).

use crate::ast::{SelectItem, SelectStatement, Statement, AGG_REF_QUALIFIER};
use crate::logical::LogicalPlan;
use crate::parser::parse;
use crate::token::{tokenize, Token};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::{Column, DataType, Error, Expr, Result, Schema, SortKey, Value};
use shareddb_core::plan::{
    ActivationTemplate, ComputedColumn, GlobalPlan, OperatorId, PlanBuilder, StatementRegistry,
    StatementSpec, UpdateTemplate,
};
use shareddb_storage::Catalog;
use std::collections::HashMap;

/// One connected piece of a statement's join graph during compilation.
struct Cluster {
    /// Current root operator of the piece.
    node: OperatorId,
    /// Alias-qualified schema used to resolve this statement's expressions.
    res: Schema,
    /// Base-qualified schema matching the shared node's real output schema
    /// (used to derive column paths for the plan builder).
    plan: Schema,
    /// Table aliases covered by the piece.
    aliases: Vec<String>,
    /// Join operators on the path so far (each needs a `Participate`).
    joins: Vec<OperatorId>,
}

/// Compiles a workload of named SQL statements into one shared global plan.
pub struct SqlCompiler<'a> {
    catalog: &'a Catalog,
    builder: PlanBuilder<'a>,
    /// (base table, occurrence within one statement) → shared scan node.
    scans: HashMap<(String, usize), OperatorId>,
    /// (build node, probe node, build column, probe column) → shared join.
    joins: HashMap<(OperatorId, OperatorId, usize, usize), OperatorId>,
    /// (build node, probe node) → shared nested-loop join (cross product).
    cross_joins: HashMap<(OperatorId, OperatorId), OperatorId>,
    /// input node → shared residual-filter node.
    filters: HashMap<OperatorId, OperatorId>,
    /// (input node, grouping + aggregate shape) → shared group-by node.
    group_bys: HashMap<(OperatorId, String), OperatorId>,
    /// (input node, key shape) → shared sort node.
    sorts: HashMap<(OperatorId, String), OperatorId>,
    /// input node → shared distinct node.
    distincts: HashMap<OperatorId, OperatorId>,
    registry: StatementRegistry,
}

impl<'a> SqlCompiler<'a> {
    /// Starts a compilation against `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        SqlCompiler {
            catalog,
            builder: PlanBuilder::new(catalog),
            scans: HashMap::new(),
            joins: HashMap::new(),
            cross_joins: HashMap::new(),
            filters: HashMap::new(),
            group_bys: HashMap::new(),
            sorts: HashMap::new(),
            distincts: HashMap::new(),
            registry: StatementRegistry::new(),
        }
    }

    /// Parses and adds one named statement to the workload.
    pub fn add_statement(&mut self, name: &str, sql: &str) -> Result<()> {
        let statement = parse(sql)?;
        let spec = match &statement {
            Statement::Select(select) => self.compile_select(name, select)?,
            Statement::Insert {
                table,
                columns,
                values,
            } => self.compile_insert(name, table, columns, values)?,
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.compile_update(name, table, assignments, where_clause.as_ref())?,
            Statement::Delete {
                table,
                where_clause,
            } => self.compile_delete(name, table, where_clause.as_ref())?,
        };
        self.registry.register(spec)?;
        Ok(())
    }

    /// Finishes the compilation, returning the shared plan and the registry.
    pub fn finish(self) -> (GlobalPlan, StatementRegistry) {
        (self.builder.build(), self.registry)
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(self.catalog.table(table)?.read().schema().clone())
    }

    fn compile_select(&mut self, name: &str, select: &SelectStatement) -> Result<StatementSpec> {
        let lp = LogicalPlan::from_select(select)?;
        let mut activations: Vec<(OperatorId, ActivationTemplate)> = Vec::new();

        // Shared scans: one cluster per table alias, reusing one shared scan
        // node per (base table, occurrence).
        let mut clusters: Vec<Cluster> = Vec::new();
        let mut occurrence: HashMap<&str, usize> = HashMap::new();
        for (alias, base) in &lp.tables {
            let occ = occurrence.entry(base.as_str()).or_insert(0);
            let key = (base.clone(), *occ);
            *occ += 1;
            let node = match self.scans.get(&key) {
                Some(&node) => node,
                None => {
                    let node = self.builder.table_scan(base)?;
                    self.scans.insert(key, node);
                    node
                }
            };
            let base_schema = self.table_schema(base)?;
            let predicate = lp
                .table_predicate(alias)
                .resolve(&base_schema.qualified(alias))?;
            activations.push((node, ActivationTemplate::Scan { predicate }));
            clusters.push(Cluster {
                node,
                res: base_schema.qualified(alias),
                plan: base_schema,
                aliases: vec![alias.clone()],
                joins: Vec::new(),
            });
        }

        // Shared joins: merge clusters along the equi-join edges. The edges
        // form a general join *graph*; merging builds a spanning tree of
        // shared hash joins, and every cycle-closing edge (both endpoints
        // already in one cluster) is kept as a residual equality filter over
        // the join output — the Yannakakis-style treatment of cyclic queries:
        // join along a tree, check the remaining edges afterwards.
        let mut residual_edges: Vec<Expr> = Vec::new();
        for edge in &lp.joins {
            let li = clusters
                .iter()
                .position(|c| c.aliases.iter().any(|a| a == &edge.left_table))
                .ok_or_else(|| Error::UnknownTable(edge.left_table.clone()))?;
            let ri = clusters
                .iter()
                .position(|c| c.aliases.iter().any(|a| a == &edge.right_table))
                .ok_or_else(|| Error::UnknownTable(edge.right_table.clone()))?;
            if li == ri {
                residual_edges.push(
                    Expr::NamedColumn {
                        qualifier: Some(edge.left_table.clone()),
                        name: edge.left_column.clone(),
                    }
                    .eq(Expr::NamedColumn {
                        qualifier: Some(edge.right_table.clone()),
                        name: edge.right_column.clone(),
                    }),
                );
                continue;
            }
            // Canonical build/probe order (smaller node id builds) so that the
            // same pair of inputs shares one join regardless of alias order.
            let (bi, pi, b_alias, b_col, p_alias, p_col) = if clusters[li].node <= clusters[ri].node
            {
                (
                    li,
                    ri,
                    &edge.left_table,
                    &edge.left_column,
                    &edge.right_table,
                    &edge.right_column,
                )
            } else {
                (
                    ri,
                    li,
                    &edge.right_table,
                    &edge.right_column,
                    &edge.left_table,
                    &edge.left_column,
                )
            };
            let b_idx = clusters[bi].res.resolve(Some(b_alias), b_col)?;
            let p_idx = clusters[pi].res.resolve(Some(p_alias), p_col)?;
            let key = (clusters[bi].node, clusters[pi].node, b_idx, p_idx);
            let join_node = match self.joins.get(&key) {
                Some(&node) => node,
                None => {
                    let b_path = clusters[bi].plan.column(b_idx).qualified_name();
                    let p_path = clusters[pi].plan.column(p_idx).qualified_name();
                    let node = self.builder.hash_join(
                        clusters[bi].node,
                        clusters[pi].node,
                        &b_path,
                        &p_path,
                    )?;
                    self.joins.insert(key, node);
                    node
                }
            };
            // Merge the probe cluster into the build cluster.
            let probe = clusters.remove(pi);
            let bi = if pi < bi { bi - 1 } else { bi };
            let build = &mut clusters[bi];
            build.res = build.res.join(&probe.res);
            build.plan = build.plan.join(&probe.plan);
            build.aliases.extend(probe.aliases);
            build.joins.extend(probe.joins);
            build.joins.push(join_node);
            build.node = join_node;
        }
        // Disconnected pieces (no equi-join edge between them) connect
        // through shared nested-loop joins: the cross product runs once per
        // batch for every statement that needs it (batched block-nested
        // loop). Combining always pairs the two clusters with the smallest
        // current root ids, so the same FROM list shares one operator chain
        // regardless of statement order.
        while clusters.len() > 1 {
            clusters.sort_by_key(|c| c.node);
            let probe = clusters.remove(1);
            let build = &mut clusters[0];
            let key = (build.node, probe.node);
            let join_node = match self.cross_joins.get(&key) {
                Some(&node) => node,
                None => {
                    let node = self.builder.nested_loop_join(build.node, probe.node)?;
                    self.cross_joins.insert(key, node);
                    node
                }
            };
            build.res = build.res.join(&probe.res);
            build.plan = build.plan.join(&probe.plan);
            build.aliases.extend(probe.aliases);
            build.joins.extend(probe.joins);
            build.joins.push(join_node);
            build.node = join_node;
        }
        let cluster = clusters.pop().expect("one cluster");
        for join in &cluster.joins {
            activations.push((*join, ActivationTemplate::Participate));
        }
        let mut root = cluster.node;
        let mut res_schema = cluster.res;
        let plan_schema = cluster.plan;

        // Residual predicates that could not be pushed down, plus the
        // cycle-closing join edges, → shared filter over the join output.
        let residuals: Vec<Expr> = lp.residual.iter().cloned().chain(residual_edges).collect();
        if !residuals.is_empty() {
            let node = match self.filters.get(&root) {
                Some(&node) => node,
                None => {
                    let node = self.builder.filter(root)?;
                    self.filters.insert(root, node);
                    node
                }
            };
            let predicate = Expr::conjunction(residuals).resolve(&res_schema)?;
            activations.push((node, ActivationTemplate::Filter { predicate }));
            root = node;
        }

        // Aggregation → shared group-by.
        let grouped = !lp.group_by.is_empty() || !lp.aggregates.is_empty();
        if !grouped && (lp.having.is_some() || !lp.agg_refs.is_empty()) {
            return Err(Error::Unsupported(
                "HAVING and aggregate references require GROUP BY or aggregates in the SELECT \
                 list"
                    .into(),
            ));
        }
        let mut group_width = 0;
        // Output column of the group-by for each aggregate placeholder of
        // HAVING / ORDER BY, in placeholder order.
        let mut agg_ref_cols: Vec<usize> = Vec::new();
        if grouped {
            let mut group_cols = Vec::new();
            for expr in &lp.group_by {
                group_cols.push(resolve_column(expr, &res_schema, "GROUP BY")?);
            }
            group_width = group_cols.len();
            let mut aggs: Vec<(AggregateFunction, usize)> = Vec::new();
            for (function, argument) in &lp.aggregates {
                // COUNT(*) parses to a literal argument; any column works.
                let col = match argument {
                    Expr::Literal(_) if *function == AggregateFunction::Count => 0,
                    other => resolve_column(other, &res_schema, "aggregate")?,
                };
                aggs.push((*function, col));
            }
            // Aggregates referenced inside HAVING / ORDER BY: reuse the
            // matching SELECT aggregate, or append a *hidden* aggregate —
            // computed by the shared group-by but dropped by the statement's
            // projection.
            for (function, argument) in &lp.agg_refs {
                let col = match argument {
                    Expr::Literal(_) if *function == AggregateFunction::Count => 0,
                    other => resolve_column(other, &res_schema, "aggregate")?,
                };
                let idx = match aggs.iter().position(|a| *a == (*function, col)) {
                    Some(i) => i,
                    None => {
                        aggs.push((*function, col));
                        aggs.len() - 1
                    }
                };
                agg_ref_cols.push(group_width + idx);
            }
            let shape = format!("{group_cols:?}/{aggs:?}");
            let key = (root, shape);
            let node = match self.group_bys.get(&key) {
                Some(&node) => node,
                None => {
                    let group_paths: Vec<String> = group_cols
                        .iter()
                        .map(|&c| plan_schema.column(c).qualified_name())
                        .collect();
                    let agg_names: Vec<String> = aggs
                        .iter()
                        .enumerate()
                        .map(|(i, (f, c))| {
                            format!("{f:?}{}_{}", i, plan_schema.column(*c).name)
                                .to_ascii_uppercase()
                        })
                        .collect();
                    let agg_paths: Vec<String> = aggs
                        .iter()
                        .map(|(_, c)| plan_schema.column(*c).qualified_name())
                        .collect();
                    let node = self.builder.group_by(
                        root,
                        group_paths.iter().map(String::as_str).collect(),
                        aggs.iter()
                            .zip(agg_paths.iter().zip(agg_names.iter()))
                            .map(|((f, _), (path, name))| (*f, path.as_str(), name.as_str()))
                            .collect(),
                    )?;
                    self.group_bys.insert(key, node);
                    node
                }
            };
            // Mirror the builder's output schema in the alias-qualified
            // resolution world; everything downstream of the group-by
            // (HAVING, DISTINCT, ORDER BY, projection) resolves against it.
            let mut res_cols: Vec<Column> = group_cols
                .iter()
                .map(|&c| res_schema.column(c).clone())
                .collect();
            for (i, (f, c)) in aggs.iter().enumerate() {
                let data_type = match f {
                    AggregateFunction::Count => DataType::Int,
                    AggregateFunction::Avg => DataType::Float,
                    _ => plan_schema.column(*c).data_type,
                };
                let agg_name =
                    format!("{f:?}{}_{}", i, plan_schema.column(*c).name).to_ascii_uppercase();
                res_cols.push(Column::nullable(agg_name, data_type));
            }
            res_schema = Schema::new(res_cols);
            let predicate = match &lp.having {
                Some(expr) => Some(substitute_agg_refs(expr, &agg_ref_cols)?.resolve(&res_schema)?),
                None => None,
            };
            activations.push((node, ActivationTemplate::Having { predicate }));
            root = node;
        }

        // DISTINCT → shared duplicate elimination.
        if lp.distinct {
            let node = match self.distincts.get(&root) {
                Some(&node) => node,
                None => {
                    let node = self.builder.distinct(root)?;
                    self.distincts.insert(root, node);
                    node
                }
            };
            activations.push((node, ActivationTemplate::Participate));
            root = node;
        }

        // ORDER BY → shared sort.
        if !lp.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, descending) in &lp.order_by {
                let expr = substitute_agg_refs(expr, &agg_ref_cols)?;
                let col = resolve_column(&expr, &res_schema, "ORDER BY")?;
                keys.push(if *descending {
                    SortKey::desc(col)
                } else {
                    SortKey::asc(col)
                });
            }
            let key = (root, format!("{keys:?}"));
            let node = match self.sorts.get(&key) {
                Some(&node) => node,
                None => {
                    let node = self.builder.sort(root, keys)?;
                    self.sorts.insert(key, node);
                    node
                }
            };
            activations.push((node, ActivationTemplate::Participate));
            root = node;
        }

        // Projection: map the SELECT list onto the root schema. Plain column
        // references (and aggregate outputs) become an index projection; any
        // other expression (`a + b`, `price * qty`, ...) switches the whole
        // list to computed output columns evaluated during result routing.
        let mut projection: Vec<usize> = Vec::new();
        let mut computed: Vec<ComputedColumn> = Vec::new();
        let mut has_expression = false;
        let mut wildcard = false;
        let mut agg_seen = 0usize;
        for item in &select.items {
            match item {
                SelectItem::Wildcard => wildcard = true,
                SelectItem::Expr(expr) => {
                    let resolved = expr.resolve(&res_schema)?;
                    match resolved {
                        Expr::Column(idx) => {
                            projection.push(idx);
                            computed.push(ComputedColumn {
                                name: res_schema.column(idx).name.clone(),
                                data_type: res_schema.column(idx).data_type,
                                expr: Expr::Column(idx),
                            });
                        }
                        other => {
                            has_expression = true;
                            computed.push(ComputedColumn {
                                name: render_expr_name(expr),
                                data_type: infer_type(&other, &res_schema),
                                expr: other,
                            });
                        }
                    }
                }
                SelectItem::Aggregate { .. } => {
                    let idx = group_width + agg_seen;
                    projection.push(idx);
                    computed.push(ComputedColumn {
                        name: res_schema.column(idx).name.clone(),
                        data_type: res_schema.column(idx).data_type,
                        expr: Expr::Column(idx),
                    });
                    agg_seen += 1;
                }
            }
        }
        if wildcard && select.items.len() > 1 {
            return Err(Error::Unsupported(
                "SELECT * cannot be combined with other select items".into(),
            ));
        }

        let mut spec = StatementSpec::query(name, root);
        if lp.distinct {
            // The shared Distinct node already dedups full root tuples; the
            // per-statement flag re-dedups at result routing only when this
            // statement's output differs from the root tuple — a narrowing
            // projection or computed columns can reintroduce duplicates, an
            // identity projection or wildcard cannot.
            let identity: Vec<usize> = (0..res_schema.len()).collect();
            if !wildcard && (has_expression || projection != identity) {
                spec = spec.distinct();
            }
        }
        if !wildcard {
            if has_expression {
                spec = spec.compute(computed);
            } else {
                spec = spec.project(projection);
            }
        }
        if let Some(limit) = lp.limit {
            spec = spec.limit(limit);
        }
        for (op, template) in activations {
            spec = spec.activate(op, template);
        }
        Ok(spec)
    }

    fn compile_insert(
        &mut self,
        name: &str,
        table: &str,
        columns: &[String],
        values: &[Expr],
    ) -> Result<StatementSpec> {
        let schema = self.table_schema(table)?;
        let ordered: Vec<Expr> = if columns.is_empty() {
            if values.len() != schema.len() {
                return Err(Error::InvalidParameter(format!(
                    "INSERT into {table} provides {} values for {} columns",
                    values.len(),
                    schema.len()
                )));
            }
            values.to_vec()
        } else {
            if columns.len() != values.len() {
                return Err(Error::InvalidParameter(
                    "INSERT column list and VALUES arity differ".into(),
                ));
            }
            let mut ordered = Vec::with_capacity(schema.len());
            for column in schema.columns() {
                let position = columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(&column.name))
                    .ok_or_else(|| {
                        Error::InvalidParameter(format!(
                            "INSERT into {table} misses column {}",
                            column.name
                        ))
                    })?;
                ordered.push(values[position].clone());
            }
            ordered
        };
        Ok(StatementSpec::update(
            name,
            table,
            UpdateTemplate::Insert { values: ordered },
        ))
    }

    fn compile_update(
        &mut self,
        name: &str,
        table: &str,
        assignments: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<StatementSpec> {
        let schema = self.table_schema(table)?;
        let assignments: Vec<(usize, Expr)> = assignments
            .iter()
            .map(|(column, expr)| Ok((schema.resolve(None, column)?, expr.resolve(&schema)?)))
            .collect::<Result<_>>()?;
        let predicate = match where_clause {
            Some(expr) => expr.resolve(&schema)?,
            None => Expr::lit(true),
        };
        Ok(StatementSpec::update(
            name,
            table,
            UpdateTemplate::Update {
                assignments,
                predicate,
            },
        ))
    }

    fn compile_delete(
        &mut self,
        name: &str,
        table: &str,
        where_clause: Option<&Expr>,
    ) -> Result<StatementSpec> {
        let schema = self.table_schema(table)?;
        let predicate = match where_clause {
            Some(expr) => expr.resolve(&schema)?,
            None => Expr::lit(true),
        };
        Ok(StatementSpec::update(
            name,
            table,
            UpdateTemplate::Delete { predicate },
        ))
    }
}

/// Column name of a computed SELECT item: the rendered expression text
/// without the outermost parentheses (`A + B`, `PRICE * QTY`).
fn render_expr_name(expr: &Expr) -> String {
    let rendered = expr.to_string();
    match rendered.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        Some(inner) => inner.to_string(),
        None => rendered,
    }
}

/// Best-effort static type of a resolved scalar expression. Arithmetic
/// follows the evaluator's promotion rules (Int only when both sides are
/// Int; division always Float because of NULL-on-zero); parameters default
/// to Float, the widest numeric type.
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    use shareddb_common::{BinaryOp, UnaryOp};
    match expr {
        Expr::Column(idx) => schema.column(*idx).data_type,
        Expr::NamedColumn { .. } => DataType::Float, // resolved before use
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Float),
        Expr::Param(_) => DataType::Float,
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And | BinaryOp::Or => DataType::Bool,
            _ if op.is_comparison() => DataType::Bool,
            BinaryOp::Div => DataType::Float,
            _ => {
                if infer_type(left, schema) == DataType::Int
                    && infer_type(right, schema) == DataType::Int
                {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
        },
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => infer_type(expr, schema),
            UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => DataType::Bool,
        },
        Expr::Like { .. } | Expr::InList { .. } | Expr::Between { .. } => DataType::Bool,
    }
}

/// Replaces [`AGG_REF_QUALIFIER`] aggregate placeholders with the group-by
/// output column each placeholder was mapped to. Other nodes pass through
/// untouched (named columns are resolved later, against the group output
/// schema).
fn substitute_agg_refs(expr: &Expr, agg_ref_cols: &[usize]) -> Result<Expr> {
    let sub = |e: &Expr| substitute_agg_refs(e, agg_ref_cols);
    Ok(match expr {
        Expr::NamedColumn {
            qualifier: Some(q),
            name,
        } if q == AGG_REF_QUALIFIER => {
            let idx: usize = name
                .parse()
                .map_err(|_| Error::Internal(format!("bad aggregate placeholder {name}")))?;
            let col = agg_ref_cols.get(idx).copied().ok_or_else(|| {
                Error::Internal(format!("aggregate placeholder {idx} out of range"))
            })?;
            Expr::Column(col)
        }
        Expr::Column(_) | Expr::NamedColumn { .. } | Expr::Literal(_) | Expr::Param(_) => {
            expr.clone()
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(sub(left)?),
            right: Box::new(sub(right)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(sub(expr)?),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(sub(expr)?),
            pattern: Box::new(sub(pattern)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(sub(expr)?),
            list: list.iter().map(sub).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(sub(expr)?),
            low: Box::new(sub(low)?),
            high: Box::new(sub(high)?),
        },
    })
}

/// Resolves an expression that must denote a single input column.
fn resolve_column(expr: &Expr, schema: &Schema, context: &str) -> Result<usize> {
    match expr.resolve(schema)? {
        Expr::Column(idx) => Ok(idx),
        other => Err(Error::Unsupported(format!(
            "{context} supports plain column references only, found {other:?}"
        ))),
    }
}

/// Compiles a whole workload of `(name, sql)` statements in one go.
pub fn compile_workload(
    catalog: &Catalog,
    statements: &[(&str, &str)],
) -> Result<(GlobalPlan, StatementRegistry)> {
    let mut compiler = SqlCompiler::new(catalog);
    for (name, sql) in statements {
        compiler.add_statement(name, sql)?;
    }
    Ok(compiler.finish())
}

/// Splits a leading `EXPLAIN [ANALYZE]` keyword prefix off a statement.
///
/// Returns `None` when `sql` does not start with `EXPLAIN`; otherwise
/// `(analyze, rest)` where `rest` is the statement text with the prefix
/// stripped. Matching is case-insensitive and word-bounded, so identifiers
/// that merely *start* with the keyword (`EXPLAINER`) are left alone.
/// SharedDB has no per-query planner, so the rest is resolved against the
/// registered statement types like any other ad-hoc statement and the plan
/// shown is that statement's view of the shared global plan.
pub fn parse_explain(sql: &str) -> Option<(bool, &str)> {
    fn strip_keyword<'a>(s: &'a str, keyword: &str) -> Option<&'a str> {
        let trimmed = s.trim_start();
        let head = trimmed.get(..keyword.len())?;
        if !head.eq_ignore_ascii_case(keyword) {
            return None;
        }
        let rest = &trimmed[keyword.len()..];
        match rest.chars().next() {
            None => Some(rest),
            Some(c) if c.is_whitespace() => Some(rest),
            Some(_) => None,
        }
    }
    let rest = strip_keyword(sql, "EXPLAIN")?;
    match strip_keyword(rest, "ANALYZE") {
        Some(rest) => Some((true, rest.trim())),
        None => Some((false, rest.trim())),
    }
}

// ---------------------------------------------------------------------------
// Token-level auto-parameterisation
// ---------------------------------------------------------------------------

/// One `?` slot of a canonicalised statement.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateSlot {
    /// The slot was a `?` parameter in the original statement text, with the
    /// given positional parameter index.
    Param(usize),
    /// The slot was a fixed literal in the original statement text.
    Literal(Value),
}

/// A statement reduced to its *type*: every literal and parameter replaced by
/// `?`, with a slot map recording what each `?` was.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlTemplate {
    /// The canonical statement text (all literals/parameters are `?`).
    pub canonical: String,
    /// What each `?` of `canonical` stood for, in order.
    pub slots: Vec<TemplateSlot>,
}

/// Canonicalises a SQL string by replacing every literal and parameter with
/// `?`. Returns the canonical text and the slot map. Two statements have the
/// same canonical text iff they are the same query *type* in the sense of the
/// paper (identical shape, different constants).
pub fn canonicalize(sql: &str) -> Result<SqlTemplate> {
    let tokens = tokenize(sql)?;
    let mut canonical = String::new();
    let mut slots = Vec::new();
    let mut params = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let token = &tokens[i];
        // Fold a unary minus over a number into one signed literal slot, so
        // `I_ID = -1` matches a registered `I_ID = ?` template. A minus is
        // unary when nothing operand-like precedes it (start of statement,
        // after an operator/paren/comma, or after a *keyword* — keywords
        // tokenise as identifiers but never denote a value, so `WHERE -5 < A`
        // and `BETWEEN -2 AND 2` still carry signed literals).
        if matches!(token, Token::Minus) {
            let prev_is_operand = i
                .checked_sub(1)
                .map(|p| match &tokens[p] {
                    Token::Ident(s) => !is_sql_keyword(s),
                    Token::Number(_) | Token::StringLit(_) | Token::Param | Token::RParen => true,
                    _ => false,
                })
                .unwrap_or(false);
            if !prev_is_operand {
                if let Some(Token::Number(text)) = tokens.get(i + 1) {
                    let negated = match parse_number(text)? {
                        Value::Int(v) => Value::Int(-v),
                        Value::Float(v) => Value::Float(-v),
                        other => other,
                    };
                    slots.push(TemplateSlot::Literal(negated));
                    if !canonical.is_empty() {
                        canonical.push(' ');
                    }
                    canonical.push('?');
                    i += 2;
                    continue;
                }
            }
        }
        let rendered: String = match token {
            Token::Ident(s) => s.to_ascii_uppercase(),
            Token::Number(text) => {
                slots.push(TemplateSlot::Literal(parse_number(text)?));
                "?".into()
            }
            Token::StringLit(text) => {
                slots.push(TemplateSlot::Literal(Value::text(text.clone())));
                "?".into()
            }
            Token::Param => {
                slots.push(TemplateSlot::Param(params));
                params += 1;
                "?".into()
            }
            Token::Comma => ",".into(),
            Token::Dot => ".".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Star => "*".into(),
            Token::Eq => "=".into(),
            Token::NotEq => "<>".into(),
            Token::Lt => "<".into(),
            Token::LtEq => "<=".into(),
            Token::Gt => ">".into(),
            Token::GtEq => ">=".into(),
            Token::Plus => "+".into(),
            Token::Minus => "-".into(),
            Token::Slash => "/".into(),
        };
        // `.` binds tighter than whitespace in qualified names; rendering
        // without surrounding spaces keeps `T.C` recognisable either way.
        if matches!(token, Token::Dot) {
            canonical.pop_if_trailing_space();
            canonical.push('.');
        } else {
            if !canonical.is_empty() {
                canonical.push(' ');
            }
            canonical.push_str(&rendered);
        }
        i += 1;
    }
    Ok(SqlTemplate { canonical, slots })
}

/// Reserved words that can directly precede a signed numeric literal. They
/// tokenise as [`Token::Ident`] but never denote an operand, so a `-` after
/// one of them is a unary sign, not a binary subtraction.
fn is_sql_keyword(ident: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE",
        "IS", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "GROUP", "ORDER",
        "BY", "ASC", "DESC", "HAVING", "LIMIT", "OFFSET", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CASE", "WHEN", "THEN", "ELSE", "END",
    ];
    KEYWORDS.iter().any(|kw| ident.eq_ignore_ascii_case(kw))
}

trait PopIfTrailingSpace {
    fn pop_if_trailing_space(&mut self);
}

impl PopIfTrailingSpace for String {
    fn pop_if_trailing_space(&mut self) {
        if self.ends_with(' ') {
            self.pop();
        }
    }
}

fn parse_number(text: &str) -> Result<Value> {
    if text.contains('.') || text.contains('e') || text.contains('E') {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::Parse(format!("bad number literal {text}")))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok(Value::Int(v)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::Parse(format!("bad number literal {text}"))),
        }
    }
}

/// Matches an ad-hoc statement's extracted literals against a registered
/// template, producing the parameter vector for the registered statement.
///
/// Fixed-literal slots must agree between the template and the ad-hoc
/// statement; `?`-slots of the template are filled from the ad-hoc literals.
pub fn bind_adhoc(template: &SqlTemplate, adhoc: &SqlTemplate) -> Result<Vec<Value>> {
    if template.slots.len() != adhoc.slots.len() {
        return Err(Error::UnknownStatement(adhoc.canonical.clone()));
    }
    let param_count = template
        .slots
        .iter()
        .filter_map(|s| match s {
            TemplateSlot::Param(i) => Some(i + 1),
            TemplateSlot::Literal(_) => None,
        })
        .max()
        .unwrap_or(0);
    let mut params = vec![Value::Null; param_count];
    for (slot, adhoc_slot) in template.slots.iter().zip(&adhoc.slots) {
        let value = match adhoc_slot {
            TemplateSlot::Literal(v) => v.clone(),
            TemplateSlot::Param(_) => {
                return Err(Error::InvalidParameter(
                    "ad-hoc statements must carry concrete literals, not ?".into(),
                ))
            }
        };
        match slot {
            TemplateSlot::Param(i) => params[*i] = value,
            TemplateSlot::Literal(expected) => {
                if *expected != value {
                    return Err(Error::UnknownStatement(adhoc.canonical.clone()));
                }
            }
        }
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_core::{Engine, EngineConfig};
    use shareddb_storage::TableDef;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("USERS")
                    .column("USER_ID", DataType::Int)
                    .column("USERNAME", DataType::Text)
                    .column("COUNTRY", DataType::Text)
                    .column("ACCOUNT", DataType::Int)
                    .primary_key(&["USER_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDERS")
                    .column("ORDER_ID", DataType::Int)
                    .column("USER_ID", DataType::Int)
                    .column("STATUS", DataType::Text)
                    .column("TOTAL", DataType::Float)
                    .primary_key(&["ORDER_ID"]),
            )
            .unwrap();
        let users = (0..50i64)
            .map(|i| {
                shareddb_common::tuple![
                    i,
                    format!("user{i}"),
                    if i % 2 == 0 { "CH" } else { "DE" },
                    i * 10
                ]
            })
            .collect();
        let orders = (0..150i64)
            .map(|i| {
                shareddb_common::tuple![
                    i,
                    i % 50,
                    if i % 3 == 0 { "OK" } else { "PENDING" },
                    (i % 40) as f64
                ]
            })
            .collect();
        catalog.bulk_load("USERS", users).unwrap();
        catalog.bulk_load("ORDERS", orders).unwrap();
        Arc::new(catalog)
    }

    const WORKLOAD: &[(&str, &str)] = &[
        ("userByName", "SELECT * FROM USERS WHERE USERNAME = ?"),
        (
            "ordersOfUser",
            "SELECT * FROM USERS U, ORDERS O \
             WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ? AND O.STATUS = 'OK' \
             ORDER BY O.ORDER_ID",
        ),
        (
            "richOrdersOfUser",
            "SELECT * FROM USERS U, ORDERS O \
             WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ? AND O.TOTAL >= ? \
             ORDER BY O.ORDER_ID",
        ),
        (
            "accountByCountry",
            "SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY",
        ),
        ("addOrder", "INSERT INTO ORDERS VALUES (?, ?, 'OK', ?)"),
        ("cancelOrders", "DELETE FROM ORDERS WHERE USER_ID = ?"),
        (
            "repriceOrder",
            "UPDATE ORDERS SET TOTAL = ? WHERE ORDER_ID = ?",
        ),
    ];

    #[test]
    fn workload_compiles_into_one_shared_plan() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        registry.validate(&plan).unwrap();
        // Two scans shared by all statements, ONE shared join for both join
        // statements, one sort, one group-by.
        let census = plan.operator_census();
        assert_eq!(census.get("Scan(USERS)"), Some(&1));
        assert_eq!(census.get("Scan(ORDERS)"), Some(&1));
        assert_eq!(census.get("HashJoin"), Some(&1), "plan:\n{plan}");
        assert_eq!(census.get("Sort"), Some(&1));
        assert_eq!(census.get("GroupBy"), Some(&1));
        assert_eq!(registry.len(), WORKLOAD.len());
    }

    #[test]
    fn compiled_workload_executes_end_to_end() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(&catalog, WORKLOAD).unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();

        let outcome = engine
            .execute_sync("userByName", &[Value::text("user7")])
            .unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(7));

        // user7 owns orders 7, 57, 107; OK only for multiples of 3 → 57.
        let outcome = engine
            .execute_sync("ordersOfUser", &[Value::text("user7")])
            .unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][4], Value::Int(57));

        let outcome = engine.execute_sync("accountByCountry", &[]).unwrap();
        assert_eq!(outcome.rows().len(), 2);

        let outcome = engine
            .execute_sync(
                "addOrder",
                &[Value::Int(9_000), Value::Int(7), Value::Float(1.0)],
            )
            .unwrap();
        assert_eq!(outcome.rows_affected(), 1);
        let outcome = engine
            .execute_sync("ordersOfUser", &[Value::text("user7")])
            .unwrap();
        assert_eq!(outcome.rows().len(), 2);

        let outcome = engine
            .execute_sync("cancelOrders", &[Value::Int(7)])
            .unwrap();
        assert!(outcome.rows_affected() >= 1);
    }

    #[test]
    fn projection_and_limit_are_applied() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "topAccounts",
                "SELECT USERNAME, ACCOUNT FROM USERS WHERE ACCOUNT >= ? \
                 ORDER BY ACCOUNT DESC LIMIT 3",
            )],
        )
        .unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine
            .execute_sync("topAccounts", &[Value::Int(0)])
            .unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][1], Value::Int(490));
        assert_eq!(rows[1][1], Value::Int(480));
    }

    /// Expression projections compile into the shared plan and evaluate
    /// during result routing: `SELECT a + b, price * qty FROM ...`.
    #[test]
    fn expression_projections_execute() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "accountPlusId",
                "SELECT USERNAME, ACCOUNT + USER_ID, ACCOUNT / 2 FROM USERS WHERE USER_ID = ?",
            )],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine
            .execute_sync("accountPlusId", &[Value::Int(7)])
            .unwrap();
        match outcome {
            shareddb_core::QueryOutcome::Rows(rs) => {
                assert_eq!(rs.rows.len(), 1);
                // user7: ACCOUNT = 70, USER_ID = 7.
                assert_eq!(rs.rows[0][0], Value::text("user7"));
                assert_eq!(rs.rows[0][1], Value::Int(77));
                assert_eq!(rs.rows[0][2], Value::Float(35.0));
                assert_eq!(rs.schema.column(0).name, "USERNAME");
                assert_eq!(rs.schema.column(1).name, "ACCOUNT + USER_ID");
                assert_eq!(rs.schema.column(1).data_type, DataType::Int);
                assert_eq!(rs.schema.column(2).data_type, DataType::Float);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Parameters inside expression projections bind per execution, and
    /// expressions over join outputs resolve against the joined schema.
    #[test]
    fn expression_projections_bind_parameters_and_join_columns() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "scaledTotal",
                "SELECT O.ORDER_ID, O.TOTAL * ? FROM USERS U, ORDERS O \
                 WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ?",
            )],
        )
        .unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine
            .execute_sync("scaledTotal", &[Value::Float(2.0), Value::text("user3")])
            .unwrap();
        let rows = outcome.rows();
        assert_eq!(rows.len(), 3); // orders 3, 53, 103
        for row in rows {
            let id = match row[0] {
                Value::Int(i) => i,
                ref other => panic!("unexpected {other:?}"),
            };
            assert_eq!(row[1], Value::Float(((id % 40) as f64) * 2.0));
        }
    }

    /// Auto-parameterisation still matches statement types whose SELECT list
    /// carries expressions: the literal inside the expression is a slot like
    /// any other.
    #[test]
    fn expression_projection_templates_match_adhoc_sql() {
        let template =
            canonicalize("SELECT USERNAME, ACCOUNT * 2 FROM USERS WHERE USER_ID = ?").unwrap();
        let adhoc =
            canonicalize("select username, account * 2 from users where user_id = 9").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        assert_eq!(bind_adhoc(&template, &adhoc).unwrap(), vec![Value::Int(9)]);
        // A different scale factor is a different statement type.
        let other =
            canonicalize("SELECT USERNAME, ACCOUNT * 3 FROM USERS WHERE USER_ID = 9").unwrap();
        assert!(bind_adhoc(&template, &other).is_err());
    }

    /// A cycle over two tables (two join edges between the same pair): the
    /// first edge becomes the shared hash join, the second a residual
    /// equality filter on the join output.
    #[test]
    fn cyclic_two_table_join_compiles_and_filters() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "doubleKeyed",
                "SELECT * FROM USERS U, ORDERS O \
                 WHERE U.USER_ID = O.USER_ID AND U.ACCOUNT = O.ORDER_ID",
            )],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let census = plan.operator_census();
        assert_eq!(census.get("HashJoin"), Some(&1), "plan:\n{plan}");
        assert_eq!(census.get("Filter"), Some(&1), "plan:\n{plan}");
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine.execute_sync("doubleKeyed", &[]).unwrap();
        // USER_ID match: order i belongs to user i % 50; ACCOUNT = 10 *
        // USER_ID must equal ORDER_ID. ORDER_ID = 10 u and user u = 10u % 50
        // → u ∈ {0} only (10u % 50 == u requires 9u ≡ 0 mod 50 → u = 0).
        let rows = outcome.rows();
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert_eq!(rows[0][0], Value::Int(0)); // USER_ID
        assert_eq!(rows[0][4], Value::Int(0)); // ORDER_ID
    }

    /// A triangle cycle over three tables: two spanning-tree hash joins, one
    /// residual edge. The result matches the hand-computed triangle set.
    #[test]
    fn triangle_join_cycle_matches_hand_computed_result() {
        let catalog = Catalog::new();
        for (name, cols) in [("R", ["A", "B"]), ("S", ["A", "C"]), ("T", ["B", "C"])] {
            catalog
                .create_table(
                    TableDef::new(name)
                        .column(cols[0], DataType::Int)
                        .column(cols[1], DataType::Int),
                )
                .unwrap();
        }
        // R(a, b), S(a, c), T(b, c) over small domains; triangle iff all
        // three equalities hold.
        let r: Vec<_> = (0..4i64)
            .flat_map(|a| (0..4i64).map(move |b| shareddb_common::tuple![a, b]))
            .collect();
        let s: Vec<_> = (0..4i64)
            .map(|a| shareddb_common::tuple![a, (a + 1) % 4])
            .collect();
        let t: Vec<_> = (0..4i64)
            .map(|b| shareddb_common::tuple![b, (b + 2) % 4])
            .collect();
        catalog.bulk_load("R", r).unwrap();
        catalog.bulk_load("S", s).unwrap();
        catalog.bulk_load("T", t).unwrap();
        let catalog = Arc::new(catalog);
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "triangle",
                "SELECT R.A, R.B FROM R, S, T \
                 WHERE R.A = S.A AND R.B = T.B AND S.C = T.C",
            )],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let census = plan.operator_census();
        assert_eq!(census.get("HashJoin"), Some(&2), "plan:\n{plan}");
        assert_eq!(census.get("Filter"), Some(&1), "plan:\n{plan}");
        // Hand-computed: S(a, a+1), T(b, b+2); S.C = T.C ⇒ a+1 ≡ b+2 (mod 4)
        // ⇒ b = (a + 3) % 4. R holds every (a, b) pair, so 4 triangles.
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine.execute_sync("triangle", &[]).unwrap();
        let mut rows: Vec<(i64, i64)> = outcome
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(0, 3), (1, 0), (2, 1), (3, 2)]);
    }

    /// FROM pieces without a join edge connect through the shared
    /// nested-loop join (cross product), and two statements over the same
    /// FROM pair share one operator.
    #[test]
    fn cross_products_compile_and_share() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[
                (
                    "userTimesOrders",
                    "SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = ?",
                ),
                (
                    "pairCount",
                    "SELECT COUNT(*) FROM USERS U, ORDERS O WHERE U.USER_ID = ? AND O.STATUS = 'OK'",
                ),
            ],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let census = plan.operator_census();
        assert_eq!(census.get("NestedLoopJoin"), Some(&1), "plan:\n{plan}");
        assert_eq!(census.get("HashJoin"), None);
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine
            .execute_sync("userTimesOrders", &[Value::Int(3)])
            .unwrap();
        // 1 user × 150 orders.
        assert_eq!(outcome.rows().len(), 150);
        assert_eq!(outcome.rows()[0].len(), 8);
        // 1 user × 50 OK orders (every third of 150).
        let outcome = engine.execute_sync("pairCount", &[Value::Int(3)]).unwrap();
        assert_eq!(outcome.rows()[0][0], Value::Int(50));
    }

    /// HAVING referencing a SELECT-list aggregate binds to the group-by
    /// output column; parameters inside HAVING bind per execution.
    #[test]
    fn having_over_select_aggregate_executes() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[(
                "bigCountries",
                "SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY \
                 HAVING SUM(ACCOUNT) > ?",
            )],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        // CH: 10·(0+2+..+48) = 6000; DE: 10·(1+3+..+49) = 6250.
        let outcome = engine
            .execute_sync("bigCountries", &[Value::Int(6100)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::text("DE"));
        assert_eq!(outcome.rows()[0][1], Value::Int(6250));
        let outcome = engine
            .execute_sync("bigCountries", &[Value::Int(0)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 2);
    }

    /// HAVING (and ORDER BY) may reference aggregates that are NOT in the
    /// SELECT list: they are computed as hidden group-by columns and dropped
    /// by the projection.
    #[test]
    fn having_and_order_by_over_hidden_aggregates() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[
                (
                    "richCountryNames",
                    "SELECT COUNTRY FROM USERS GROUP BY COUNTRY HAVING SUM(ACCOUNT) > 6100",
                ),
                (
                    "countriesByWealth",
                    "SELECT COUNTRY FROM USERS GROUP BY COUNTRY ORDER BY SUM(ACCOUNT) DESC",
                ),
            ],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine.execute_sync("richCountryNames", &[]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0].len(), 1, "hidden aggregate leaked");
        assert_eq!(outcome.rows()[0][0], Value::text("DE"));
        let outcome = engine.execute_sync("countriesByWealth", &[]).unwrap();
        let names: Vec<&Value> = outcome.rows().iter().map(|r| &r[0]).collect();
        assert_eq!(names, vec![&Value::text("DE"), &Value::text("CH")]);
        assert_eq!(outcome.rows()[0].len(), 1);
    }

    /// A HAVING variant shares the group-by operator with the plain
    /// aggregation of the same shape (HAVING is an activation, not a new
    /// operator), and COUNT(*) in HAVING reuses the SELECT COUNT(*).
    #[test]
    fn having_variants_share_the_group_by() {
        let catalog = catalog();
        let (plan, registry) = compile_workload(
            &catalog,
            &[
                (
                    "countByCountry",
                    "SELECT COUNTRY, COUNT(*) FROM USERS GROUP BY COUNTRY",
                ),
                (
                    "popularCountries",
                    "SELECT COUNTRY, COUNT(*) FROM USERS GROUP BY COUNTRY HAVING COUNT(*) > ?",
                ),
            ],
        )
        .unwrap();
        registry.validate(&plan).unwrap();
        let census = plan.operator_census();
        assert_eq!(census.get("GroupBy"), Some(&1), "plan:\n{plan}");
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        let outcome = engine
            .execute_sync("popularCountries", &[Value::Int(24)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 2); // both countries hold 25 users
        let outcome = engine
            .execute_sync("popularCountries", &[Value::Int(25)])
            .unwrap();
        assert_eq!(outcome.rows().len(), 0);
    }

    /// Aggregates in WHERE and duplicate FROM aliases are rejected with
    /// clear messages instead of confusing downstream errors.
    #[test]
    fn aggregates_in_where_and_duplicate_aliases_are_rejected() {
        let catalog = catalog();
        let mut compiler = SqlCompiler::new(&catalog);
        let err = compiler
            .add_statement("bad", "SELECT * FROM USERS WHERE SUM(ACCOUNT) > 1")
            .unwrap_err();
        assert!(
            err.to_string().contains("HAVING"),
            "unexpected message: {err}"
        );
        let err = compiler
            .add_statement(
                "bad2",
                "SELECT * FROM USERS U, ORDERS U WHERE U.USER_ID = 1",
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("duplicate table alias"),
            "unexpected message: {err}"
        );
        // Same base table twice without aliases is the same mistake.
        let err = compiler
            .add_statement("bad3", "SELECT * FROM USERS, USERS")
            .unwrap_err();
        assert!(
            err.to_string().contains("duplicate table alias"),
            "unexpected message: {err}"
        );
        // HAVING without any grouping is rejected, not silently dropped.
        let err = compiler
            .add_statement("bad4", "SELECT USERNAME FROM USERS HAVING USERNAME = 'x'")
            .unwrap_err();
        assert!(
            err.to_string().contains("GROUP BY"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn unknown_tables_and_columns_are_rejected() {
        let catalog = catalog();
        let mut compiler = SqlCompiler::new(&catalog);
        assert!(compiler
            .add_statement("bad", "SELECT * FROM NO_SUCH_TABLE")
            .is_err());
        assert!(compiler
            .add_statement("bad2", "SELECT * FROM USERS WHERE NO_COLUMN = 1")
            .is_err());
        assert!(compiler
            .add_statement("bad3", "INSERT INTO USERS VALUES (1)")
            .is_err());
    }

    #[test]
    fn canonicalization_extracts_literals() {
        let template =
            canonicalize("SELECT * FROM USERS WHERE USERNAME = ? AND COUNTRY = 'CH'").unwrap();
        let adhoc =
            canonicalize("select * from users where username = 'bob' and country = 'CH'").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        let params = bind_adhoc(&template, &adhoc).unwrap();
        assert_eq!(params, vec![Value::text("bob")]);
    }

    #[test]
    fn parse_explain_strips_the_keyword_prefix() {
        assert_eq!(
            parse_explain("EXPLAIN SELECT * FROM ITEM"),
            Some((false, "SELECT * FROM ITEM"))
        );
        assert_eq!(
            parse_explain("  explain analyze  select * from item where i_id = 1"),
            Some((true, "select * from item where i_id = 1"))
        );
        // Word-bounded: identifiers starting with the keyword are untouched.
        assert_eq!(parse_explain("EXPLAINER"), None);
        assert_eq!(parse_explain("SELECT * FROM EXPLAIN_LOG"), None);
        // ANALYZE must be its own word too.
        assert_eq!(parse_explain("EXPLAIN ANALYZER"), Some((false, "ANALYZER")));
        // A bare statement name works (resolved by the server).
        assert_eq!(parse_explain("EXPLAIN getItem"), Some((false, "getItem")));
        assert_eq!(parse_explain("EXPLAIN"), Some((false, "")));
        assert_eq!(parse_explain("EXPLAIN ANALYZE"), Some((true, "")));
    }

    #[test]
    fn adhoc_literal_mismatch_is_a_different_type() {
        let template =
            canonicalize("SELECT * FROM USERS WHERE USERNAME = ? AND COUNTRY = 'CH'").unwrap();
        let adhoc =
            canonicalize("SELECT * FROM USERS WHERE USERNAME = 'bob' AND COUNTRY = 'DE'").unwrap();
        assert!(bind_adhoc(&template, &adhoc).is_err());
    }

    #[test]
    fn negative_literals_match_parameter_templates() {
        let template = canonicalize("SELECT * FROM ITEM WHERE I_ID = ?").unwrap();
        let adhoc = canonicalize("SELECT * FROM ITEM WHERE I_ID = -1").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        assert_eq!(bind_adhoc(&template, &adhoc).unwrap(), vec![Value::Int(-1)]);
        let adhoc = canonicalize("SELECT * FROM ITEM WHERE I_ID = -2.5").unwrap();
        assert_eq!(adhoc.slots, vec![TemplateSlot::Literal(Value::Float(-2.5))]);
        // Binary subtraction is NOT folded: `A - 1` keeps its minus.
        let t = canonicalize("SELECT * FROM T WHERE A - 1 = ?").unwrap();
        assert!(t.canonical.contains("A - ?"), "{}", t.canonical);
    }

    #[test]
    fn canonical_numbers_parse_to_values() {
        let t = canonicalize("SELECT * FROM ORDERS WHERE TOTAL >= 1.5 AND ORDER_ID = 3").unwrap();
        assert_eq!(
            t.slots,
            vec![
                TemplateSlot::Literal(Value::Float(1.5)),
                TemplateSlot::Literal(Value::Int(3)),
            ]
        );
    }

    #[test]
    fn negative_literals_after_keywords_are_unary() {
        // Keywords tokenise as identifiers, but a minus after one is still a
        // sign: `WHERE -5 < A` must be the same statement type as
        // `WHERE ? < A`.
        let template = canonicalize("SELECT * FROM T WHERE ? < A").unwrap();
        let adhoc = canonicalize("SELECT * FROM T WHERE -5 < A").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        assert_eq!(bind_adhoc(&template, &adhoc).unwrap(), vec![Value::Int(-5)]);
        // Both BETWEEN bounds fold (after the keywords BETWEEN and AND).
        let template = canonicalize("SELECT * FROM T WHERE A BETWEEN ? AND ?").unwrap();
        let adhoc = canonicalize("SELECT * FROM T WHERE A BETWEEN -2 AND -1").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        assert_eq!(
            bind_adhoc(&template, &adhoc).unwrap(),
            vec![Value::Int(-2), Value::Int(-1)]
        );
        // After a real identifier (a column), the minus stays binary.
        let t = canonicalize("SELECT * FROM T WHERE ACCOUNT - 1 = ?").unwrap();
        assert!(t.canonical.contains("ACCOUNT - ?"), "{}", t.canonical);
    }

    #[test]
    fn escaped_quote_literals_match_their_statement_type() {
        let template = canonicalize("SELECT * FROM USERS WHERE USERNAME = ?").unwrap();
        let adhoc = canonicalize("SELECT * FROM USERS WHERE USERNAME = 'O''Brien'").unwrap();
        assert_eq!(template.canonical, adhoc.canonical);
        assert_eq!(
            bind_adhoc(&template, &adhoc).unwrap(),
            vec![Value::text("O'Brien")]
        );
        // A fixed escaped-quote literal must agree between the registered
        // template and the ad-hoc statement...
        let fixed = canonicalize("SELECT * FROM USERS WHERE USERNAME = 'O''Brien' AND COUNTRY = ?")
            .unwrap();
        let matching =
            canonicalize("select * from users where username = 'O''Brien' and country = 'IE'")
                .unwrap();
        assert_eq!(
            bind_adhoc(&fixed, &matching).unwrap(),
            vec![Value::text("IE")]
        );
        // ...and a different unescaped spelling is a different type.
        let other =
            canonicalize("SELECT * FROM USERS WHERE USERNAME = 'OBrien' AND COUNTRY = 'IE'")
                .unwrap();
        assert!(bind_adhoc(&fixed, &other).is_err());
    }

    /// Registered statements carrying signed literals and escaped-quote
    /// string literals compile and execute — the full parser → template →
    /// engine path, not just canonicalisation.
    #[test]
    fn negative_and_escaped_literals_execute_end_to_end() {
        let catalog = catalog();
        let workload: &[(&str, &str)] = &[
            ("overdrawn", "SELECT * FROM USERS WHERE ACCOUNT < -10"),
            ("obrien", "SELECT * FROM USERS WHERE USERNAME = 'O''Brien'"),
            (
                "seedUser",
                "INSERT INTO USERS VALUES (-1, 'O''Brien', 'IE', -500)",
            ),
        ];
        let (plan, registry) = compile_workload(&catalog, workload).unwrap();
        let engine = Engine::start(catalog, plan, registry, EngineConfig::default()).unwrap();
        assert_eq!(
            engine.execute_sync("overdrawn", &[]).unwrap().rows().len(),
            0
        );
        assert_eq!(
            engine
                .execute_sync("seedUser", &[])
                .unwrap()
                .rows_affected(),
            1
        );
        let outcome = engine.execute_sync("overdrawn", &[]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][0], Value::Int(-1));
        assert_eq!(outcome.rows()[0][3], Value::Int(-500));
        let outcome = engine.execute_sync("obrien", &[]).unwrap();
        assert_eq!(outcome.rows().len(), 1);
        assert_eq!(outcome.rows()[0][1], Value::text("O'Brien"));
    }
}

//! # shareddb-sql
//!
//! The SQL front end of SharedDB: a tokenizer and parser for the SQL subset
//! used by the paper's workloads (parameterised SELECT / INSERT / UPDATE /
//! DELETE with joins, GROUP BY, ORDER BY and LIMIT), per-query logical plans
//! with predicate push-down ("logical query optimization", Figure 3 middle),
//! and the **two-step global-plan compilation**: individual query plans are
//! merged into a single shared plan by unifying joins that use the same
//! tables and join keys (Figure 3 right, Section 3.3).
//!
//! * [`token`] — the tokenizer.
//! * [`ast`] — the abstract syntax tree.
//! * [`parser`] — the recursive-descent parser.
//! * [`logical`] — per-query logical plans with predicate push-down.
//! * [`merge`] — merging per-query plans into a global shared plan (sketch).
//! * [`compile`] — compiling a whole SQL workload into an *executable*
//!   [`shareddb_core::GlobalPlan`] + [`shareddb_core::StatementRegistry`],
//!   plus token-level auto-parameterisation for ad-hoc statements.

pub mod ast;
pub mod compile;
pub mod logical;
pub mod merge;
pub mod parser;
pub mod token;

pub use ast::{SelectStatement, Statement};
pub use compile::{
    bind_adhoc, canonicalize, compile_workload, parse_explain, SqlCompiler, SqlTemplate,
    TemplateSlot,
};
pub use logical::{LogicalPlan, QueryPlanSummary};
pub use merge::{GlobalPlanSketch, SharedJoinGroup};
pub use parser::parse;

//! Abstract syntax tree of the supported SQL subset.
//!
//! Scalar expressions reuse [`shareddb_common::Expr`] (with
//! `Expr::NamedColumn` references and positional `Expr::Param` parameters), so
//! that parsed predicates can be bound and evaluated by the rest of the
//! system without conversion.

use shareddb_common::agg::AggregateFunction;
use shareddb_common::Expr;

/// Qualifier marking a placeholder reference to an aggregate output inside a
/// scalar expression (HAVING, ORDER BY). The placeholder's column *name* is
/// the decimal index into [`SelectStatement::agg_refs`]; the compiler maps it
/// to the matching output column of the shared group-by operator. `$` cannot
/// appear in a real SQL identifier, so the marker can never collide with a
/// table alias.
pub const AGG_REF_QUALIFIER: &str = "$AGG";

/// A table reference in a FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (upper-cased).
    pub name: String,
    /// Optional alias (upper-cased).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the table is referred to by in column qualifiers.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain expression (usually a column reference).
    Expr(Expr),
    /// An aggregate call, e.g. `SUM(USER_ID)`.
    Aggregate {
        /// The aggregate function.
        function: AggregateFunction,
        /// Argument expression (`COUNT(*)` uses a literal `1`).
        argument: Expr,
    },
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The ordering expression (usually a column reference).
    pub expr: Expr,
    /// True for DESC.
    pub descending: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma joins; join predicates live in WHERE, as in the
    /// paper's example queries).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// Aggregate calls referenced *inside expressions* (HAVING, ORDER BY),
    /// in placeholder order: `HAVING SUM(QTY) > ?` parses the aggregate into
    /// this list and leaves an [`AGG_REF_QUALIFIER`] placeholder column in
    /// the expression tree.
    pub agg_refs: Vec<(AggregateFunction, Expr)>,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(SelectStatement),
    /// INSERT INTO t [(cols)] VALUES (...)
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Vec<String>,
        /// Value expressions.
        values: Vec<Expr>,
    },
    /// UPDATE t SET c = e, ... [WHERE ...]
    Update {
        /// Target table.
        table: String,
        /// Assignments (column name, value expression).
        assignments: Vec<(String, Expr)>,
        /// WHERE predicate.
        where_clause: Option<Expr>,
    },
    /// DELETE FROM t [WHERE ...]
    Delete {
        /// Target table.
        table: String,
        /// WHERE predicate.
        where_clause: Option<Expr>,
    },
}

impl Statement {
    /// Number of `?` parameters in the statement.
    pub fn parameter_count(&self) -> usize {
        fn count(expr: &Expr, max: &mut usize) {
            expr.visit(&mut |e| {
                if let Expr::Param(i) = e {
                    *max = (*max).max(*i + 1);
                }
            });
        }
        let mut max = 0;
        match self {
            Statement::Select(s) => {
                if let Some(w) = &s.where_clause {
                    count(w, &mut max);
                }
                if let Some(h) = &s.having {
                    count(h, &mut max);
                }
            }
            Statement::Insert { values, .. } => {
                for v in values {
                    count(v, &mut max);
                }
            }
            Statement::Update {
                assignments,
                where_clause,
                ..
            } => {
                for (_, v) in assignments {
                    count(v, &mut max);
                }
                if let Some(w) = where_clause {
                    count(w, &mut max);
                }
            }
            Statement::Delete { where_clause, .. } => {
                if let Some(w) = where_clause {
                    count(w, &mut max);
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_effective_name() {
        let t = TableRef {
            name: "USERS".into(),
            alias: Some("U".into()),
        };
        assert_eq!(t.effective_name(), "U");
        let t = TableRef {
            name: "USERS".into(),
            alias: None,
        };
        assert_eq!(t.effective_name(), "USERS");
    }

    #[test]
    fn parameter_count_spans_clauses() {
        let s = Statement::Update {
            table: "T".into(),
            assignments: vec![("A".into(), Expr::param(2))],
            where_clause: Some(Expr::col(0).eq(Expr::param(0))),
        };
        assert_eq!(s.parameter_count(), 3);
        let s = Statement::Delete {
            table: "T".into(),
            where_clause: None,
        };
        assert_eq!(s.parameter_count(), 0);
    }
}

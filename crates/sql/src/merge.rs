//! Step 2 of the two-step compilation (Figure 3, right-hand side): merging
//! the individually optimised query plans into one **global plan sketch**.
//!
//! Queries whose plans contain a join over the same pair of tables with the
//! same join columns can share one big join: the inputs become the *union* of
//! the per-query selections and the join predicate is amended with the
//! query-id equality (which the execution layer implements as a query-set
//! intersection). The same applies to scans: all queries reading a table
//! share its scan, each contributing its pushed-down predicate.
//!
//! The output of this module is a [`GlobalPlanSketch`]: which scans and which
//! shared joins the workload needs, and which query types use each of them.
//! It is a *sketch* (names and groups, not executable operators) because the
//! physical plan construction lives in `shareddb-core`; the sketch is what a
//! global-plan compiler needs in order to call the `PlanBuilder` — and it is
//! also a useful analysis artefact on its own (the `fig6_plan` harness prints
//! the equivalent information for the hand-built TPC-W plan).

use crate::logical::LogicalPlan;
use std::collections::BTreeMap;
use std::fmt;

/// One shared scan of the global plan sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedScanGroup {
    /// Base table.
    pub table: String,
    /// Names of the query types reading the table.
    pub queries: Vec<String>,
    /// How many of those pushed at least one predicate into the scan.
    pub selective_queries: usize,
}

/// One shared join of the global plan sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedJoinGroup {
    /// Canonical join key, e.g. `ORDERS.USER_ID=USERS.USER_ID`.
    pub key: String,
    /// Names of the query types sharing this join.
    pub queries: Vec<String>,
}

/// The merged global plan sketch for a workload of query types.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlanSketch {
    /// Shared scans, one per base table used by any query.
    pub scans: Vec<SharedScanGroup>,
    /// Shared joins, one per distinct (table pair, join columns).
    pub joins: Vec<SharedJoinGroup>,
    /// Query types that sort or limit (these add shared sort / Top-N
    /// operators).
    pub sorting_queries: Vec<String>,
    /// Query types that group / aggregate (these add shared Γ operators).
    pub grouping_queries: Vec<String>,
    /// Query types whose join graph is cyclic: the compiler spans a tree of
    /// shared hash joins and applies the remaining edges as residual
    /// equality filters.
    pub cyclic_queries: Vec<String>,
    /// Query types whose FROM list has pieces with no join edge between
    /// them: those connect through shared nested-loop joins (cross
    /// products).
    pub cross_product_queries: Vec<String>,
}

impl GlobalPlanSketch {
    /// Merges the per-query plans of a workload into a global plan sketch.
    pub fn merge(workload: &[(String, LogicalPlan)]) -> GlobalPlanSketch {
        let mut scans: BTreeMap<String, SharedScanGroup> = BTreeMap::new();
        let mut joins: BTreeMap<String, SharedJoinGroup> = BTreeMap::new();
        let mut sorting = Vec::new();
        let mut grouping = Vec::new();
        let mut cyclic = Vec::new();
        let mut cross = Vec::new();

        for (name, plan) in workload {
            let shape = join_graph_shape(plan);
            if shape.cyclic {
                cyclic.push(name.clone());
            }
            if shape.disconnected {
                cross.push(name.clone());
            }
            for (alias, table) in &plan.tables {
                let entry = scans
                    .entry(table.clone())
                    .or_insert_with(|| SharedScanGroup {
                        table: table.clone(),
                        queries: Vec::new(),
                        selective_queries: 0,
                    });
                if !entry.queries.contains(name) {
                    entry.queries.push(name.clone());
                }
                if plan
                    .table_predicates
                    .get(alias)
                    .map(|p| !p.is_empty())
                    .unwrap_or(false)
                {
                    entry.selective_queries += 1;
                }
            }
            for edge in &plan.joins {
                // The share key uses *base table* names so that aliases do not
                // prevent sharing.
                let left_base = plan
                    .tables
                    .get(&edge.left_table)
                    .cloned()
                    .unwrap_or_else(|| edge.left_table.clone());
                let right_base = plan
                    .tables
                    .get(&edge.right_table)
                    .cloned()
                    .unwrap_or_else(|| edge.right_table.clone());
                let (a, b) = if left_base <= right_base {
                    (
                        format!("{left_base}.{}", edge.left_column),
                        format!("{right_base}.{}", edge.right_column),
                    )
                } else {
                    (
                        format!("{right_base}.{}", edge.right_column),
                        format!("{left_base}.{}", edge.left_column),
                    )
                };
                let key = format!("{a}={b}");
                let entry = joins.entry(key.clone()).or_insert_with(|| SharedJoinGroup {
                    key,
                    queries: Vec::new(),
                });
                if !entry.queries.contains(name) {
                    entry.queries.push(name.clone());
                }
            }
            if !plan.order_by.is_empty() || plan.limit.is_some() {
                sorting.push(name.clone());
            }
            if !plan.group_by.is_empty() || !plan.aggregates.is_empty() {
                grouping.push(name.clone());
            }
        }

        GlobalPlanSketch {
            scans: scans.into_values().collect(),
            joins: joins.into_values().collect(),
            sorting_queries: sorting,
            grouping_queries: grouping,
            cyclic_queries: cyclic,
            cross_product_queries: cross,
        }
    }

    /// Number of operators saved by sharing joins: a query-at-a-time system
    /// instantiates one join per (query type, edge); the global plan needs one
    /// per distinct edge.
    pub fn joins_saved(&self) -> usize {
        self.joins
            .iter()
            .map(|j| j.queries.len().saturating_sub(1))
            .sum()
    }

    /// The join groups shared by more than one query type.
    pub fn shared_joins(&self) -> Vec<&SharedJoinGroup> {
        self.joins.iter().filter(|j| j.queries.len() > 1).collect()
    }
}

impl fmt::Display for GlobalPlanSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shared scans:")?;
        for scan in &self.scans {
            writeln!(
                f,
                "  {:<24} used by {} query types ({} selective)",
                scan.table,
                scan.queries.len(),
                scan.selective_queries
            )?;
        }
        writeln!(f, "shared joins:")?;
        for join in &self.joins {
            writeln!(
                f,
                "  {:<40} shared by: {}",
                join.key,
                join.queries.join(", ")
            )?;
        }
        writeln!(
            f,
            "sorting query types: {} / grouping query types: {} / cyclic: {} / cross products: {}",
            self.sorting_queries.len(),
            self.grouping_queries.len(),
            self.cyclic_queries.len(),
            self.cross_product_queries.len()
        )
    }
}

/// The shape of one query's join graph over its FROM tables.
struct JoinGraphShape {
    /// At least one edge closes a cycle (more edges than a spanning tree
    /// within some connected component).
    cyclic: bool,
    /// The FROM tables fall into more than one connected component.
    disconnected: bool,
}

/// Union-find classification of a logical plan's join graph.
fn join_graph_shape(plan: &LogicalPlan) -> JoinGraphShape {
    let names: Vec<&String> = plan.tables.keys().collect();
    let index = |name: &str| names.iter().position(|n| n.as_str() == name);
    let mut parent: Vec<usize> = (0..names.len()).collect();
    fn root(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut cyclic = false;
    for edge in &plan.joins {
        let (Some(l), Some(r)) = (index(&edge.left_table), index(&edge.right_table)) else {
            continue;
        };
        let (lr, rr) = (root(&mut parent, l), root(&mut parent, r));
        if lr == rr {
            cyclic = true;
        } else {
            parent[lr] = rr;
        }
    }
    let mut components: Vec<usize> = (0..names.len()).map(|i| root(&mut parent, i)).collect();
    components.sort_unstable();
    components.dedup();
    JoinGraphShape {
        cyclic,
        disconnected: components.len() > 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;

    fn workload(queries: &[(&str, &str)]) -> Vec<(String, LogicalPlan)> {
        queries
            .iter()
            .map(|(name, sql)| {
                let Statement::Select(s) = parse(sql).unwrap() else {
                    panic!("not a select")
                };
                (name.to_string(), LogicalPlan::from_select(&s).unwrap())
            })
            .collect()
    }

    /// The five query types of Figure 2 of the paper.
    fn figure2_workload() -> Vec<(String, LogicalPlan)> {
        workload(&[
            (
                "Q1",
                "SELECT COUNTRY, SUM(USER_ID) FROM USERS GROUP BY COUNTRY",
            ),
            (
                "Q2",
                "SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ? AND O.STATUS = 'OK'",
            ),
            (
                "Q3",
                "SELECT * FROM USERS U, ORDERS O, ITEMS I WHERE U.USER_ID = O.USER_ID AND O.ITEM_ID = I.ITEM_ID AND I.AVAILABLE < ?",
            ),
            (
                "Q4",
                "SELECT * FROM ORDERS O, ITEMS I WHERE O.ITEM_ID = I.ITEM_ID AND O.DATE > ? ORDER BY I.PRICE",
            ),
            (
                "Q5",
                "SELECT * FROM ITEMS I WHERE I.CATEGORY = ? ORDER BY I.PRICE",
            ),
        ])
    }

    #[test]
    fn figure2_sharing_structure_is_recovered() {
        let sketch = GlobalPlanSketch::merge(&figure2_workload());
        // Three base tables -> three shared scans.
        assert_eq!(sketch.scans.len(), 3);
        // Two distinct joins: USERS⨝ORDERS (Q2, Q3) and ORDERS⨝ITEMS (Q3, Q4).
        assert_eq!(sketch.joins.len(), 2);
        let users_orders = sketch
            .joins
            .iter()
            .find(|j| j.key.contains("USERS.USER_ID"))
            .unwrap();
        assert_eq!(
            users_orders.queries,
            vec!["Q2".to_string(), "Q3".to_string()]
        );
        let orders_items = sketch
            .joins
            .iter()
            .find(|j| j.key.contains("ITEMS.ITEM_ID"))
            .unwrap();
        assert_eq!(
            orders_items.queries,
            vec!["Q3".to_string(), "Q4".to_string()]
        );
        // Q4 and Q5 sort; Q1 groups.
        assert_eq!(
            sketch.sorting_queries,
            vec!["Q4".to_string(), "Q5".to_string()]
        );
        assert_eq!(sketch.grouping_queries, vec!["Q1".to_string()]);
        // A query-at-a-time system would run 4 joins; the global plan runs 2.
        assert_eq!(sketch.joins_saved(), 2);
        assert_eq!(sketch.shared_joins().len(), 2);
        // The USERS scan serves Q1, Q2 and Q3.
        let users_scan = sketch.scans.iter().find(|s| s.table == "USERS").unwrap();
        assert_eq!(users_scan.queries.len(), 3);
        let rendered = sketch.to_string();
        assert!(rendered.contains("shared joins"));
    }

    #[test]
    fn figure3_same_join_different_predicates_share() {
        // The three queries of Figure 3: same R⨝S join, different predicates.
        let sketch = GlobalPlanSketch::merge(&workload(&[
            (
                "Q1",
                "SELECT * FROM R, S WHERE R.ID = S.ID AND R.CITY = ? AND S.DATE = ?",
            ),
            (
                "Q2",
                "SELECT * FROM R, S WHERE R.ID = S.ID AND R.NAME = ? AND S.PRICE < ?",
            ),
            (
                "Q3",
                "SELECT * FROM R, S WHERE R.ID = S.ID AND R.ADDR = ? AND S.DATE > ?",
            ),
        ]));
        assert_eq!(sketch.joins.len(), 1);
        assert_eq!(sketch.joins[0].queries.len(), 3);
        assert_eq!(sketch.joins_saved(), 2);
        // Every query pushes predicates into both scans.
        for scan in &sketch.scans {
            assert_eq!(scan.selective_queries, 3);
        }
    }

    #[test]
    fn different_join_columns_do_not_share() {
        let sketch = GlobalPlanSketch::merge(&workload(&[
            ("A", "SELECT * FROM R, S WHERE R.ID = S.ID"),
            ("B", "SELECT * FROM R, S WHERE R.OTHER = S.ID"),
        ]));
        assert_eq!(sketch.joins.len(), 2);
        assert_eq!(sketch.joins_saved(), 0);
        assert!(sketch.shared_joins().is_empty());
    }

    #[test]
    fn cyclic_and_cross_product_shapes_are_classified() {
        let sketch = GlobalPlanSketch::merge(&workload(&[
            (
                "triangle",
                "SELECT * FROM R, S, T WHERE R.A = S.A AND S.C = T.C AND T.B = R.B",
            ),
            ("cross", "SELECT * FROM R, S WHERE R.A = 1"),
            ("tree", "SELECT * FROM R, S WHERE R.A = S.A"),
        ]));
        assert_eq!(sketch.cyclic_queries, vec!["triangle".to_string()]);
        assert_eq!(sketch.cross_product_queries, vec!["cross".to_string()]);
        let rendered = sketch.to_string();
        assert!(rendered.contains("cyclic: 1"), "{rendered}");
        assert!(rendered.contains("cross products: 1"), "{rendered}");
    }

    #[test]
    fn aliases_do_not_prevent_sharing() {
        let sketch = GlobalPlanSketch::merge(&workload(&[
            (
                "A",
                "SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID",
            ),
            (
                "B",
                "SELECT * FROM USERS X, ORDERS Y WHERE Y.USER_ID = X.USER_ID",
            ),
        ]));
        assert_eq!(sketch.joins.len(), 1);
        assert_eq!(sketch.joins[0].queries.len(), 2);
    }
}

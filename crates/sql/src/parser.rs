//! Recursive-descent parser for the supported SQL subset.
//!
//! The subset covers the statements used by the paper's example workloads
//! (Figure 2, Figure 3, and the TPC-W prepared statements): parameterised
//! SELECT with joins in the FROM/WHERE style, GROUP BY/HAVING, ORDER BY,
//! LIMIT and DISTINCT, plus INSERT / UPDATE / DELETE.

use crate::ast::{
    OrderByItem, SelectItem, SelectStatement, Statement, TableRef, AGG_REF_QUALIFIER,
};
use crate::token::{tokenize, Token};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::{BinaryOp, Error, Expr, Result, UnaryOp, Value};

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        params: 0,
        agg_refs: Vec::new(),
    };
    let statement = parser.statement()?;
    if parser.pos != parser.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            &parser.tokens[parser.pos..]
        )));
    }
    // select() drains the aggregate references it owns; anything left came
    // from an INSERT / UPDATE / DELETE expression, where aggregates have no
    // meaning — reject them here instead of leaking a placeholder column
    // into resolution.
    if !parser.agg_refs.is_empty() {
        return Err(Error::Parse(
            "aggregate calls are only allowed in SELECT statements".into(),
        ));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` parameters seen so far (assigns positional indices).
    params: usize,
    /// Aggregate calls seen inside scalar expressions (HAVING / ORDER BY),
    /// in placeholder order; moved into the SELECT statement when it closes.
    agg_refs: Vec<(AggregateFunction, Expr)>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        match self.next() {
            Some(t) if t == *expected => Ok(()),
            other => Err(Error::Parse(format!(
                "expected {expected:?}, found {other:?}"
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_uppercase()),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_keyword("INSERT") {
            self.insert()
        } else if self.eat_keyword("UPDATE") {
            self.update()
        } else if self.eat_keyword("DELETE") {
            self.delete()
        } else {
            Err(Error::Parse(format!(
                "expected SELECT/INSERT/UPDATE/DELETE, found {:?}",
                self.peek()
            )))
        }
    }

    fn select(&mut self) -> Result<SelectStatement> {
        let mut stmt = SelectStatement {
            distinct: self.eat_keyword("DISTINCT"),
            ..Default::default()
        };
        // Projection list.
        loop {
            stmt.items.push(self.select_item()?);
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        self.expect_keyword("FROM")?;
        loop {
            let name = self.identifier()?;
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => Some(self.identifier()?),
                _ => None,
            };
            let table = TableRef { name, alias };
            if stmt
                .from
                .iter()
                .any(|t| t.effective_name() == table.effective_name())
            {
                return Err(Error::Parse(format!(
                    "duplicate table alias {} in FROM: each table needs a distinct alias",
                    table.effective_name()
                )));
            }
            stmt.from.push(table);
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        if self.eat_keyword("WHERE") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        if self.eat_keyword("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                stmt.order_by.push(OrderByItem { expr, descending });
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n)) => {
                    stmt.limit = Some(
                        n.parse()
                            .map_err(|_| Error::Parse(format!("invalid LIMIT value {n}")))?,
                    )
                }
                other => {
                    return Err(Error::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        }
        stmt.agg_refs = std::mem::take(&mut self.agg_refs);
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(function) = AggregateFunction::from_name(name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let argument = if matches!(self.peek(), Some(Token::Star)) {
                        self.pos += 1;
                        Expr::lit(1i64)
                    } else {
                        self.expr()?
                    };
                    self.expect(&Token::RParen)?;
                    return Ok(SelectItem::Aggregate { function, argument });
                }
            }
        }
        Ok(SelectItem::Expr(self.expr()?))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            loop {
                columns.push(self.identifier()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        self.expect(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.expr()?);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.identifier()?;
            self.expect(&Token::Eq)?;
            let value = self.expr()?;
            assignments.push((column, value));
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::Unary {
                op: if negated {
                    UnaryOp::IsNotNull
                } else {
                    UnaryOp::IsNull
                },
                expr: Box::new(left),
            });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            let between = Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated { between.not() } else { between });
        }
        if negated {
            return Err(Error::Parse("dangling NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(left.binary(op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Param) => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::param(idx))
            }
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    Ok(Expr::lit(n.parse::<f64>().map_err(|_| {
                        Error::Parse(format!("invalid number {n}"))
                    })?))
                } else {
                    Ok(Expr::lit(n.parse::<i64>().map_err(|_| {
                        Error::Parse(format!("invalid number {n}"))
                    })?))
                }
            }
            Some(Token::StringLit(s)) => Ok(Expr::lit(Value::Text(s))),
            Some(Token::Minus) => {
                let inner = self.primary()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                })
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::lit(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                // Aggregate call inside HAVING / ORDER BY, e.g.
                // `HAVING SUM(QTY) > 1`: the (function, argument) pair is
                // recorded on the statement and the expression keeps a
                // placeholder column; the compiler maps it to the matching
                // output column of the shared group-by operator (appending a
                // hidden aggregate when the SELECT list does not compute it).
                if let Some(function) = AggregateFunction::from_name(&name) {
                    if matches!(self.peek(), Some(Token::LParen)) {
                        self.pos += 1; // consume '('
                        let argument = if matches!(self.peek(), Some(Token::Star)) {
                            self.pos += 1;
                            Expr::lit(1i64)
                        } else {
                            self.expr()?
                        };
                        self.expect(&Token::RParen)?;
                        let idx = self.agg_refs.len();
                        self.agg_refs.push((function, argument));
                        return Ok(Expr::NamedColumn {
                            qualifier: Some(AGG_REF_QUALIFIER.to_string()),
                            name: idx.to_string(),
                        });
                    }
                }
                // Qualified column reference?
                if matches!(self.peek(), Some(Token::Dot)) {
                    self.pos += 1;
                    let column = self.identifier()?;
                    Ok(Expr::NamedColumn {
                        qualifier: Some(name.to_ascii_uppercase()),
                        name: column,
                    })
                } else {
                    Ok(Expr::NamedColumn {
                        qualifier: None,
                        name: name.to_ascii_uppercase(),
                    })
                }
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const CLAUSES: [&str; 12] = [
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "FROM", "ON", "AND", "OR", "SET", "VALUES",
        "INTO",
    ];
    CLAUSES.iter().any(|c| word.eq_ignore_ascii_case(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure2_q1_group_by() {
        // Q1 of Figure 2.
        let stmt = parse("SELECT COUNTRY, SUM(USER_ID) FROM USERS GROUP BY COUNTRY").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(matches!(s.items[1], SelectItem::Aggregate { .. }));
        assert_eq!(s.from[0].name, "USERS");
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn parse_negative_and_escaped_literals() {
        // `-5` parses as unary negation over the literal.
        let stmt = parse("SELECT * FROM USERS WHERE ACCOUNT < -5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let predicate = s.where_clause.unwrap();
        let mut found_neg = false;
        predicate.visit(&mut |e| {
            if let Expr::Unary { op, expr } = e {
                assert!(matches!(op, shareddb_common::expr::UnaryOp::Neg));
                assert!(matches!(**expr, Expr::Literal(Value::Int(5))));
                found_neg = true;
            }
        });
        assert!(found_neg, "no unary negation in {predicate:?}");

        // Escaped quotes inside string literals survive into the AST.
        let stmt = parse("INSERT INTO USERS VALUES (-1, 'O''Brien')").unwrap();
        let Statement::Insert { values, .. } = stmt else {
            panic!()
        };
        let mut found_text = false;
        for value in &values {
            value.visit(&mut |e| {
                if let Expr::Literal(Value::Text(s)) = e {
                    assert_eq!(s, "O'Brien");
                    found_text = true;
                }
            });
        }
        assert!(found_text, "no string literal in {values:?}");
    }

    #[test]
    fn parse_figure2_q2_join_with_params() {
        let stmt = parse(
            "SELECT * FROM USERS U, ORDERS O \
             WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ? AND O.STATUS = 'OK'",
        )
        .unwrap();
        let Statement::Select(s) = stmt.clone() else {
            panic!()
        };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("U"));
        assert_eq!(stmt.parameter_count(), 1);
        let w = s.where_clause.unwrap();
        assert_eq!(w.split_conjuncts().len(), 3);
    }

    #[test]
    fn parse_figure2_q4_order_by() {
        let stmt = parse(
            "SELECT * FROM ORDERS O, ITEMS I \
             WHERE O.ITEM_ID = I.ITEM_ID AND O.DATE > ? ORDER BY I.PRICE",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].descending);
    }

    #[test]
    fn parse_best_sellers_like_query() {
        let stmt = parse(
            "SELECT I.I_ID, I.I_TITLE, SUM(OL.OL_QTY) FROM ITEM I, ORDER_LINE OL \
             WHERE I.I_ID = OL.OL_I_ID AND I.I_SUBJECT = ? AND OL.OL_O_ID >= ? \
             GROUP BY I.I_ID, I.I_TITLE HAVING SUM(OL.OL_QTY) > 1 \
             ORDER BY 3 DESC LIMIT 50",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.group_by.len(), 2);
        assert!(s.having.is_some());
        assert_eq!(s.limit, Some(50));
        assert!(s.order_by[0].descending);
    }

    #[test]
    fn parse_like_between_in_distinct() {
        let stmt = parse(
            "SELECT DISTINCT NAME FROM ITEM WHERE TITLE LIKE ? AND COST BETWEEN 1 AND 10 \
             AND SUBJECT IN ('ARTS', 'HISTORY') AND STOCK IS NOT NULL ORDER BY NAME DESC",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.distinct);
        let w = s.where_clause.unwrap();
        assert_eq!(w.split_conjuncts().len(), 4);
    }

    #[test]
    fn parse_insert_update_delete() {
        let insert =
            parse("INSERT INTO ORDERS (O_ID, O_C_ID, O_TOTAL) VALUES (?, ?, 12.5)").unwrap();
        match insert {
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "ORDERS");
                assert_eq!(columns.len(), 3);
                assert_eq!(values.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let update =
            parse("UPDATE ITEM SET I_COST = ?, I_STOCK = I_STOCK - 1 WHERE I_ID = ?").unwrap();
        match &update {
            Statement::Update { assignments, .. } => assert_eq!(assignments.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(update.parameter_count(), 2);
        let delete = parse("DELETE FROM SHOPPING_CART_LINE WHERE SCL_SC_ID = ?").unwrap();
        assert!(matches!(delete, Statement::Delete { .. }));
    }

    #[test]
    fn parameters_are_numbered_in_order() {
        let stmt = parse("SELECT * FROM T WHERE A = ? AND B = ? AND C = ?").unwrap();
        assert_eq!(stmt.parameter_count(), 3);
        let Statement::Select(s) = stmt else { panic!() };
        let conjuncts = s.where_clause.as_ref().unwrap().split_conjuncts().len();
        assert_eq!(conjuncts, 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC * FROM T").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM T WHERE").is_err());
        assert!(parse("INSERT INTO T VALUES (1").is_err());
        assert!(parse("SELECT * FROM T LIMIT abc").is_err());
        assert!(parse("SELECT * FROM T extra garbage ,").is_err());
    }

    #[test]
    fn having_and_order_by_aggregates_parse_to_placeholders() {
        let stmt = parse(
            "SELECT COUNTRY, SUM(ACCOUNT) FROM USERS GROUP BY COUNTRY \
             HAVING SUM(ACCOUNT) > ? ORDER BY COUNT(*) DESC",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.agg_refs.len(), 2);
        assert_eq!(s.agg_refs[0].0, AggregateFunction::Sum);
        assert_eq!(s.agg_refs[1].0, AggregateFunction::Count);
        let mut placeholders = 0;
        s.having.as_ref().unwrap().visit(&mut |e| {
            if let Expr::NamedColumn {
                qualifier: Some(q), ..
            } = e
            {
                if q == crate::ast::AGG_REF_QUALIFIER {
                    placeholders += 1;
                }
            }
        });
        assert_eq!(placeholders, 1);
    }

    #[test]
    fn aggregates_outside_select_are_rejected() {
        assert!(parse("UPDATE T SET A = 1 WHERE COUNT(*) > 1").is_err());
        assert!(parse("DELETE FROM T WHERE SUM(A) > 2").is_err());
        assert!(parse("INSERT INTO T VALUES (MAX(B))").is_err());
    }

    #[test]
    fn duplicate_from_aliases_are_a_parse_error() {
        assert!(parse("SELECT * FROM T, T").is_err());
        assert!(parse("SELECT * FROM A X, B X").is_err());
        // Distinct aliases of one base table are fine (self-join).
        assert!(parse("SELECT * FROM T A, T B WHERE A.X = B.Y").is_ok());
    }

    #[test]
    fn not_and_parentheses() {
        let stmt = parse("SELECT * FROM T WHERE NOT (A = 1 OR B = 2) AND C > -3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.where_clause.is_some());
    }
}

//! Per-query logical plans with predicate push-down.
//!
//! This is the first step of the two-step compilation of Figure 3: every query
//! is optimised *individually*, pushing selection predicates down to the base
//! tables and extracting the equi-join conditions between tables. The result
//! is a [`LogicalPlan`]: per-table selections, join edges, residual
//! predicates, and the query-level operations (group-by, order-by, limit,
//! distinct).

use crate::ast::{SelectItem, SelectStatement, Statement, AGG_REF_QUALIFIER};
use shareddb_common::agg::AggregateFunction;
use shareddb_common::{BinaryOp, Error, Expr, Result};
use std::collections::BTreeMap;

/// An equi-join edge between two tables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinEdge {
    /// Left table (effective name).
    pub left_table: String,
    /// Column of the left table.
    pub left_column: String,
    /// Right table (effective name).
    pub right_table: String,
    /// Column of the right table.
    pub right_column: String,
}

impl JoinEdge {
    /// Canonical form: table names ordered lexicographically, so that
    /// `R.id = S.id` and `S.id = R.id` produce the same edge.
    pub fn canonical(mut self) -> JoinEdge {
        if self.left_table > self.right_table {
            std::mem::swap(&mut self.left_table, &mut self.right_table);
            std::mem::swap(&mut self.left_column, &mut self.right_column);
        }
        self
    }

    /// A stable key identifying the shared join this edge belongs to
    /// (same tables + same join columns = shareable, Section 3.3).
    pub fn share_key(&self) -> String {
        format!(
            "{}.{}={}.{}",
            self.left_table, self.left_column, self.right_table, self.right_column
        )
    }
}

/// The logical plan of one SELECT query after per-query optimisation.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    /// Tables of the query (effective name -> base table name).
    pub tables: BTreeMap<String, String>,
    /// Selection predicates pushed down to each table (conjunctions).
    pub table_predicates: BTreeMap<String, Vec<Expr>>,
    /// Equi-join edges between tables.
    pub joins: Vec<JoinEdge>,
    /// Predicates that could not be pushed down (reference several tables or
    /// no table at all).
    pub residual: Vec<Expr>,
    /// Grouping expressions.
    pub group_by: Vec<Expr>,
    /// Aggregates of the projection.
    pub aggregates: Vec<(AggregateFunction, Expr)>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// Aggregate calls referenced inside HAVING / ORDER BY expressions
    /// ([`crate::ast::AGG_REF_QUALIFIER`] placeholders), in placeholder
    /// order.
    pub agg_refs: Vec<(AggregateFunction, Expr)>,
    /// ORDER BY keys (expression, descending).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// DISTINCT flag.
    pub distinct: bool,
}

/// A terse summary of the plan used by reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlanSummary {
    /// Base tables read.
    pub tables: Vec<String>,
    /// Number of join edges.
    pub joins: usize,
    /// Number of pushed-down predicates.
    pub pushed_predicates: usize,
    /// Whether the query aggregates, sorts or limits.
    pub has_group_by: bool,
    /// Whether the query sorts.
    pub has_order_by: bool,
    /// Whether the query limits.
    pub has_limit: bool,
}

impl LogicalPlan {
    /// Builds the logical plan for one SELECT statement (step 1 of Figure 3:
    /// per-query optimisation with predicate push-down).
    pub fn from_select(select: &SelectStatement) -> Result<LogicalPlan> {
        if select.from.is_empty() {
            return Err(Error::Parse("SELECT without FROM".into()));
        }
        let mut plan = LogicalPlan {
            distinct: select.distinct,
            limit: select.limit,
            group_by: select.group_by.clone(),
            having: select.having.clone(),
            agg_refs: select.agg_refs.clone(),
            order_by: select
                .order_by
                .iter()
                .map(|o| (o.expr.clone(), o.descending))
                .collect(),
            ..Default::default()
        };
        for table in &select.from {
            if plan
                .tables
                .insert(table.effective_name().to_string(), table.name.clone())
                .is_some()
            {
                // The parser rejects this too; the check here covers
                // hand-built ASTs, where a silent overwrite would misattribute
                // every predicate of the shadowed table.
                return Err(Error::Parse(format!(
                    "duplicate table alias {} in FROM: each table needs a distinct alias",
                    table.effective_name()
                )));
            }
            plan.table_predicates
                .insert(table.effective_name().to_string(), Vec::new());
        }
        for item in &select.items {
            if let SelectItem::Aggregate { function, argument } = item {
                plan.aggregates.push((*function, argument.clone()));
            }
        }

        // Classify the WHERE conjuncts.
        if let Some(where_clause) = &select.where_clause {
            let mut has_aggregate = false;
            where_clause.visit(&mut |e| {
                if let Expr::NamedColumn {
                    qualifier: Some(q), ..
                } = e
                {
                    has_aggregate |= q == AGG_REF_QUALIFIER;
                }
            });
            if has_aggregate {
                return Err(Error::Unsupported(
                    "aggregates are not allowed in WHERE; filter groups with HAVING".into(),
                ));
            }
            for conjunct in where_clause.split_conjuncts() {
                match classify(conjunct, &plan) {
                    Classification::Join(edge) => plan.joins.push(edge.canonical()),
                    Classification::Table(table) => plan
                        .table_predicates
                        .get_mut(&table)
                        .expect("classified table exists")
                        .push(conjunct.clone()),
                    Classification::Residual => plan.residual.push(conjunct.clone()),
                }
            }
        }
        plan.joins.sort();
        Ok(plan)
    }

    /// Builds the plan from any parsed statement; only SELECTs have one.
    pub fn from_statement(statement: &Statement) -> Result<LogicalPlan> {
        match statement {
            Statement::Select(s) => LogicalPlan::from_select(s),
            _ => Err(Error::Unsupported(
                "logical plans are only built for SELECT statements".into(),
            )),
        }
    }

    /// The summary of the plan.
    pub fn summary(&self) -> QueryPlanSummary {
        QueryPlanSummary {
            tables: self.tables.values().cloned().collect(),
            joins: self.joins.len(),
            pushed_predicates: self.table_predicates.values().map(Vec::len).sum(),
            has_group_by: !self.group_by.is_empty() || !self.aggregates.is_empty(),
            has_order_by: !self.order_by.is_empty(),
            has_limit: self.limit.is_some(),
        }
    }

    /// The pushed-down predicate of one table as a single conjunction
    /// (`TRUE` when the query has no predicate on that table).
    pub fn table_predicate(&self, table: &str) -> Expr {
        match self.table_predicates.get(table) {
            Some(preds) if !preds.is_empty() => Expr::conjunction(preds.clone()),
            _ => Expr::lit(true),
        }
    }
}

enum Classification {
    Join(JoinEdge),
    Table(String),
    Residual,
}

/// Resolves which table an expression references: `Some(table)` when exactly
/// one, `None` when zero or several.
fn referenced_table(expr: &Expr, plan: &LogicalPlan) -> Option<String> {
    let mut tables: Vec<String> = Vec::new();
    let single_table = plan.tables.len() == 1;
    let only_table = plan.tables.keys().next().cloned();
    expr.visit(&mut |e| {
        if let Expr::NamedColumn { qualifier, .. } = e {
            match qualifier {
                Some(q) => {
                    if !tables.contains(q) {
                        tables.push(q.clone());
                    }
                }
                None => {
                    // Unqualified references are only attributable when the
                    // query reads a single table.
                    if single_table {
                        if let Some(t) = &only_table {
                            if !tables.contains(t) {
                                tables.push(t.clone());
                            }
                        }
                    } else {
                        tables.push("<ambiguous>".to_string());
                    }
                }
            }
        }
    });
    tables.retain(|t| t != "<ambiguous>" || plan.tables.len() != 1);
    if tables.len() == 1 && plan.tables.contains_key(&tables[0]) {
        Some(tables[0].clone())
    } else {
        None
    }
}

fn classify(conjunct: &Expr, plan: &LogicalPlan) -> Classification {
    // Join edge: qualified column = qualified column over two different tables.
    if let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = conjunct
    {
        if let (
            Expr::NamedColumn {
                qualifier: Some(lq),
                name: ln,
            },
            Expr::NamedColumn {
                qualifier: Some(rq),
                name: rn,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            if lq != rq && plan.tables.contains_key(lq) && plan.tables.contains_key(rq) {
                return Classification::Join(JoinEdge {
                    left_table: lq.clone(),
                    left_column: ln.clone(),
                    right_table: rq.clone(),
                    right_column: rn.clone(),
                });
            }
        }
    }
    match referenced_table(conjunct, plan) {
        Some(table) => Classification::Table(table),
        None => Classification::Residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_of(sql: &str) -> LogicalPlan {
        match parse(sql).unwrap() {
            Statement::Select(s) => LogicalPlan::from_select(&s).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn pushdown_on_figure3_query() {
        let plan = plan_of("SELECT * FROM R, S WHERE R.ID = S.ID AND R.CITY = ? AND S.PRICE < ?");
        assert_eq!(plan.joins.len(), 1);
        assert_eq!(plan.joins[0].share_key(), "R.ID=S.ID");
        assert_eq!(plan.table_predicates["R"].len(), 1);
        assert_eq!(plan.table_predicates["S"].len(), 1);
        assert!(plan.residual.is_empty());
        let summary = plan.summary();
        assert_eq!(summary.joins, 1);
        assert_eq!(summary.pushed_predicates, 2);
    }

    #[test]
    fn join_edges_are_canonical() {
        let a = plan_of("SELECT * FROM R, S WHERE R.ID = S.ID");
        let b = plan_of("SELECT * FROM R, S WHERE S.ID = R.ID");
        assert_eq!(a.joins, b.joins);
    }

    #[test]
    fn aliases_are_respected() {
        let plan = plan_of(
            "SELECT * FROM USERS U, ORDERS O WHERE U.USER_ID = O.USER_ID AND U.USERNAME = ?",
        );
        assert_eq!(plan.tables["U"], "USERS");
        assert_eq!(plan.tables["O"], "ORDERS");
        assert_eq!(plan.joins[0].share_key(), "O.USER_ID=U.USER_ID");
        assert_eq!(plan.table_predicates["U"].len(), 1);
    }

    #[test]
    fn single_table_unqualified_predicates_push_down() {
        let plan = plan_of(
            "SELECT * FROM ITEM WHERE I_SUBJECT = ? AND I_COST < 10 ORDER BY I_TITLE LIMIT 50",
        );
        assert_eq!(plan.table_predicates["ITEM"].len(), 2);
        assert!(plan.summary().has_order_by);
        assert!(plan.summary().has_limit);
        assert_eq!(plan.table_predicate("ITEM").split_conjuncts().len(), 2);
        assert_eq!(plan.table_predicate("MISSING"), Expr::lit(true));
    }

    #[test]
    fn cross_table_disjunction_is_residual() {
        let plan = plan_of("SELECT * FROM R, S WHERE R.ID = S.ID AND (R.A = 1 OR S.B = 2)");
        assert_eq!(plan.joins.len(), 1);
        assert_eq!(plan.residual.len(), 1);
    }

    #[test]
    fn group_by_and_aggregates_are_captured() {
        let plan = plan_of("SELECT COUNTRY, SUM(USER_ID) FROM USERS GROUP BY COUNTRY");
        assert!(plan.summary().has_group_by);
        assert_eq!(plan.aggregates.len(), 1);
        assert_eq!(plan.aggregates[0].0, AggregateFunction::Sum);
    }

    #[test]
    fn aggregates_in_where_are_rejected() {
        let Statement::Select(s) = parse("SELECT * FROM T WHERE SUM(A) > 1").unwrap() else {
            panic!()
        };
        let err = LogicalPlan::from_select(&s).unwrap_err();
        assert!(err.to_string().contains("HAVING"), "{err}");
    }

    /// Cycle-closing edges classify as join edges like any other; the
    /// compiler decides which span the tree and which turn residual.
    #[test]
    fn cyclic_join_graphs_keep_all_edges() {
        let plan = plan_of("SELECT * FROM R, S, T WHERE R.A = S.A AND S.C = T.C AND T.B = R.B");
        assert_eq!(plan.joins.len(), 3);
        assert!(plan.residual.is_empty());
    }

    #[test]
    fn having_aggregate_refs_are_carried() {
        let plan = plan_of("SELECT COUNTRY FROM USERS GROUP BY COUNTRY HAVING COUNT(*) > 3");
        assert_eq!(plan.agg_refs.len(), 1);
        assert_eq!(plan.agg_refs[0].0, AggregateFunction::Count);
        assert!(plan.having.is_some());
    }

    #[test]
    fn non_select_is_rejected() {
        let stmt = parse("DELETE FROM T WHERE A = 1").unwrap();
        assert!(LogicalPlan::from_statement(&stmt).is_err());
    }
}

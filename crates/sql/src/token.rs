//! SQL tokenizer.

use shareddb_common::{Error, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (upper-cased keywords are matched case-insensitively).
    Ident(String),
    /// Numeric literal.
    Number(String),
    /// String literal (quotes removed).
    StringLit(String),
    /// `?` prepared-statement parameter.
    Param,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
}

impl Token {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(Error::Parse(format!("unexpected character '!' at {i}")));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal; '' escapes a quote. Bytes are collected raw
                // and turned back into a string in one step, so multi-byte
                // UTF-8 characters survive (pushing `byte as char` would
                // mangle them into Latin-1 mojibake). The quote byte 0x27
                // never occurs inside a UTF-8 continuation sequence, so
                // byte-wise scanning is safe.
                let mut s: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Parse("unterminated string literal".into())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push(b'\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b);
                            i += 1;
                        }
                    }
                }
                let s = String::from_utf8(s)
                    .map_err(|_| Error::Parse("invalid UTF-8 in string literal".into()))?;
                tokens.push(Token::StringLit(s));
            }
            '-' => {
                // Could be a comment `--`, a negative number, or minus.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                tokens.push(Token::Number(sql[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at position {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let tokens = tokenize("SELECT * FROM r WHERE a >= 10 AND b = 'x''y' -- comment\n").unwrap();
        assert!(tokens.contains(&Token::Star));
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::Number("10".into())));
        assert!(tokens.contains(&Token::StringLit("x'y".into())));
        assert!(tokens.iter().any(|t| t.is_keyword("select")));
        // The comment is skipped entirely.
        assert!(!tokens.iter().any(|t| t.is_keyword("comment")));
    }

    #[test]
    fn escaped_quotes_and_unicode_in_string_literals() {
        // '' escaping in every position: start, middle, end, doubled-up.
        let tokens = tokenize("'''start' 'mid''dle' 'end''' ''''").unwrap();
        let lits: Vec<&str> = tokens
            .iter()
            .map(|t| match t {
                Token::StringLit(s) => s.as_str(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(lits, vec!["'start", "mid'dle", "end'", "'"]);
        // Multi-byte UTF-8 survives intact, also next to an escaped quote.
        let tokens = tokenize("'café' 'Zürich''s – best'").unwrap();
        assert_eq!(tokens[0], Token::StringLit("café".into()));
        assert_eq!(tokens[1], Token::StringLit("Zürich's – best".into()));
        // The empty string is a valid literal.
        assert_eq!(tokenize("''").unwrap(), vec![Token::StringLit("".into())]);
    }

    #[test]
    fn params_and_comparisons() {
        let tokens = tokenize("a < ? AND b <> ? AND c != 3.5").unwrap();
        assert_eq!(tokens.iter().filter(|t| **t == Token::Param).count(), 2);
        assert_eq!(tokens.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(tokens.contains(&Token::Number("3.5".into())));
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a # b").is_err());
    }
}

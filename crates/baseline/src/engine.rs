//! The query-at-a-time baseline engine.
//!
//! The engine keeps a pool of worker threads; every submitted query is
//! executed in isolation by one worker (the traditional model: "traditional
//! database systems allocate a separate thread for each query", Section 3.5).
//! Two profiles model the two comparison systems of the paper:
//!
//! * [`EngineProfile::Basic`] — MySQL-like: per-query execution with a work
//!   penalty factor and a parallelism ceiling of 12 workers.
//! * [`EngineProfile::Tuned`] — SystemX-like: the same executor with no
//!   penalty and no ceiling (it scales with the configured worker count).
//!
//! The penalty factor models the less efficient execution of the weaker
//! system by repeating predicate evaluation work; it does not change results.

use crate::exec::{execute_plan, execute_update, QueryPlan};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use shareddb_common::{Error, Result, Tuple, Value};
use shareddb_storage::{Catalog, UpdateOp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning profile of the baseline engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineProfile {
    /// MySQL-like: modest constants, scalability capped at 12 workers.
    Basic,
    /// SystemX-like: efficient per-query execution, scales with workers.
    Tuned,
}

impl EngineProfile {
    /// Maximum number of worker threads that do useful work.
    pub fn parallelism_cap(&self) -> usize {
        match self {
            EngineProfile::Basic => 12,
            EngineProfile::Tuned => usize::MAX,
        }
    }

    /// Work repetition factor modelling per-query execution efficiency.
    pub fn work_factor(&self) -> usize {
        match self {
            EngineProfile::Basic => 3,
            EngineProfile::Tuned => 1,
        }
    }

    /// Human-readable system name used in benchmark output.
    pub fn system_name(&self) -> &'static str {
        match self {
            EngineProfile::Basic => "MySQL-like",
            EngineProfile::Tuned => "SystemX-like",
        }
    }
}

/// A registered baseline statement: either a query plan or an update template.
#[derive(Debug, Clone)]
pub enum BaselineStatement {
    /// A read-only query.
    Query(QueryPlan),
    /// A parameterised insert (values are expressions over the parameters).
    Insert {
        /// Target table.
        table: String,
        /// Value expressions.
        values: Vec<shareddb_common::Expr>,
    },
    /// A parameterised update/delete.
    Mutation {
        /// Target table.
        table: String,
        /// Update template (predicates/assignments may contain parameters).
        op: UpdateOp,
    },
}

/// Statistics of the baseline engine.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Completed queries.
    pub queries: u64,
    /// Completed updates.
    pub updates: u64,
    /// Failed statements.
    pub failed: u64,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Maximum end-to-end latency.
    pub max_latency: Duration,
}

enum Job {
    Execute {
        statement: String,
        params: Vec<Value>,
        submitted: Instant,
        reply: Sender<Result<Vec<Tuple>>>,
    },
    Shutdown,
}

struct Shared {
    catalog: Arc<Catalog>,
    statements: Mutex<HashMap<String, BaselineStatement>>,
    profile: EngineProfile,
    queries: AtomicU64,
    updates: AtomicU64,
    failed: AtomicU64,
    latency_nanos: AtomicU64,
    max_latency_nanos: AtomicU64,
    shutdown: AtomicBool,
}

/// The query-at-a-time engine.
pub struct ClassicEngine {
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl ClassicEngine {
    /// Starts the engine with `workers` worker threads. The effective
    /// parallelism is capped by the profile (MySQL-like: 12).
    pub fn start(catalog: Arc<Catalog>, profile: EngineProfile, workers: usize) -> Self {
        let effective = workers.clamp(1, profile.parallelism_cap());
        let (job_tx, job_rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            catalog,
            statements: Mutex::new(HashMap::new()),
            profile,
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency_nanos: AtomicU64::new(0),
            max_latency_nanos: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(effective);
        for i in 0..effective {
            let shared = Arc::clone(&shared);
            let rx: Receiver<Job> = job_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("baseline-worker-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn baseline worker"),
            );
        }
        ClassicEngine {
            shared,
            job_tx,
            workers: handles,
        }
    }

    /// The profile the engine runs with.
    pub fn profile(&self) -> EngineProfile {
        self.shared.profile
    }

    /// Number of worker threads actually running.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Registers a prepared statement.
    pub fn register(&self, name: impl Into<String>, statement: BaselineStatement) {
        self.shared.statements.lock().insert(name.into(), statement);
    }

    /// Submits a statement execution; returns a handle to wait on.
    pub fn execute(&self, statement: &str, params: &[Value]) -> Result<BaselineHandle> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(Error::EngineShutdown);
        }
        if !self.shared.statements.lock().contains_key(statement) {
            return Err(Error::UnknownStatement(statement.to_string()));
        }
        let (reply_tx, reply_rx) = unbounded();
        let submitted = Instant::now();
        self.job_tx
            .send(Job::Execute {
                statement: statement.to_string(),
                params: params.to_vec(),
                submitted,
                reply: reply_tx,
            })
            .map_err(|_| Error::EngineShutdown)?;
        Ok(BaselineHandle {
            receiver: reply_rx,
            submitted,
        })
    }

    /// Submits and waits for the result.
    pub fn execute_sync(&self, statement: &str, params: &[Value]) -> Result<Vec<Tuple>> {
        self.execute(statement, params)?.wait()
    }

    /// Engine statistics.
    pub fn stats(&self) -> BaselineStats {
        let queries = self.shared.queries.load(Ordering::Relaxed);
        let updates = self.shared.updates.load(Ordering::Relaxed);
        let completed = queries + updates;
        BaselineStats {
            queries,
            updates,
            failed: self.shared.failed.load(Ordering::Relaxed),
            mean_latency: Duration::from_nanos(
                self.shared
                    .latency_nanos
                    .load(Ordering::Relaxed)
                    .checked_div(completed)
                    .unwrap_or(0),
            ),
            max_latency: Duration::from_nanos(
                self.shared.max_latency_nanos.load(Ordering::Relaxed),
            ),
        }
    }

    /// Stops the workers and joins their threads.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for _ in 0..self.workers.len() {
            let _ = self.job_tx.send(Job::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ClassicEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle to one submitted baseline statement.
#[derive(Debug)]
pub struct BaselineHandle {
    receiver: Receiver<Result<Vec<Tuple>>>,
    submitted: Instant,
}

impl BaselineHandle {
    /// Time since submission.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// Blocks until the result is available.
    pub fn wait(self) -> Result<Vec<Tuple>> {
        self.receiver.recv().map_err(|_| Error::EngineShutdown)?
    }

    /// Blocks with a deadline.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<Tuple>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(r) => r,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(Error::DeadlineExceeded),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(Error::EngineShutdown),
        }
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        let Job::Execute {
            statement,
            params,
            submitted,
            reply,
        } = job
        else {
            break;
        };
        let spec = shared.statements.lock().get(&statement).cloned();
        let result = match spec {
            None => Err(Error::UnknownStatement(statement)),
            Some(BaselineStatement::Query(plan)) => {
                let snapshot = shared.catalog.oracle().read_ts();
                // The work factor models a less efficient executor by running
                // the query repeatedly; only the last result is returned.
                let mut result = Err(Error::Internal("work factor of zero".into()));
                for _ in 0..shared.profile.work_factor().max(1) {
                    result =
                        execute_plan(&shared.catalog, &plan, &params, snapshot).map(|r| r.rows);
                }
                result
            }
            Some(BaselineStatement::Insert { table, values }) => {
                crate::exec::bind_insert_values(&values, &params)
                    .and_then(|row| {
                        shared
                            .catalog
                            .apply_batch(&[(table, UpdateOp::Insert { values: row })])
                    })
                    .map(|_| Vec::new())
            }
            Some(BaselineStatement::Mutation { table, op }) => {
                execute_update(&shared.catalog, &table, &op, &params).map(|_| Vec::new())
            }
        };
        let latency = submitted.elapsed().as_nanos() as u64;
        shared.latency_nanos.fetch_add(latency, Ordering::Relaxed);
        shared
            .max_latency_nanos
            .fetch_max(latency, Ordering::Relaxed);
        match &result {
            Ok(rows) => {
                if rows.is_empty() {
                    // Heuristic: updates return no rows; queries may as well,
                    // but the distinction only matters for statistics.
                    shared.updates.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.queries.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, DataType, Expr};
    use shareddb_storage::TableDef;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..200i64)
                    .map(|i| tuple![i, if i % 2 == 0 { "A" } else { "B" }])
                    .collect(),
            )
            .unwrap();
        Arc::new(catalog)
    }

    #[test]
    fn profiles_differ_in_cap_and_factor() {
        assert_eq!(EngineProfile::Basic.parallelism_cap(), 12);
        assert_eq!(EngineProfile::Tuned.parallelism_cap(), usize::MAX);
        assert!(EngineProfile::Basic.work_factor() > EngineProfile::Tuned.work_factor());
        assert_ne!(
            EngineProfile::Basic.system_name(),
            EngineProfile::Tuned.system_name()
        );
    }

    #[test]
    fn worker_count_respects_profile_cap() {
        let engine = ClassicEngine::start(catalog(), EngineProfile::Basic, 48);
        assert_eq!(engine.worker_count(), 12);
        let engine = ClassicEngine::start(catalog(), EngineProfile::Tuned, 24);
        assert_eq!(engine.worker_count(), 24);
    }

    #[test]
    fn query_execution_and_stats() {
        let engine = ClassicEngine::start(catalog(), EngineProfile::Tuned, 4);
        engine.register(
            "bySubject",
            BaselineStatement::Query(QueryPlan::scan_where(
                "ITEM",
                Expr::col(1).eq(Expr::param(0)),
            )),
        );
        let rows = engine
            .execute_sync("bySubject", &[Value::text("A")])
            .unwrap();
        assert_eq!(rows.len(), 100);
        let handles: Vec<_> = (0..20)
            .map(|_| engine.execute("bySubject", &[Value::text("B")]).unwrap())
            .collect();
        for h in handles {
            assert_eq!(h.wait().unwrap().len(), 100);
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 21);
        assert_eq!(stats.failed, 0);
        assert!(stats.mean_latency > Duration::ZERO);
    }

    #[test]
    fn unknown_statement_rejected() {
        let engine = ClassicEngine::start(catalog(), EngineProfile::Tuned, 1);
        assert!(matches!(
            engine.execute("nope", &[]),
            Err(Error::UnknownStatement(_))
        ));
    }

    #[test]
    fn mutations_and_inserts() {
        let engine = ClassicEngine::start(catalog(), EngineProfile::Tuned, 2);
        engine.register(
            "addItem",
            BaselineStatement::Insert {
                table: "ITEM".into(),
                values: vec![Expr::param(0), Expr::param(1)],
            },
        );
        engine.register(
            "dropItem",
            BaselineStatement::Mutation {
                table: "ITEM".into(),
                op: UpdateOp::Delete {
                    predicate: Expr::col(0).eq(Expr::param(0)),
                },
            },
        );
        engine.register("all", BaselineStatement::Query(QueryPlan::scan("ITEM")));
        engine
            .execute_sync("addItem", &[Value::Int(1000), Value::text("C")])
            .unwrap();
        assert_eq!(engine.execute_sync("all", &[]).unwrap().len(), 201);
        engine
            .execute_sync("dropItem", &[Value::Int(1000)])
            .unwrap();
        assert_eq!(engine.execute_sync("all", &[]).unwrap().len(), 200);
        let stats = engine.stats();
        assert!(stats.updates >= 2);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let mut engine = ClassicEngine::start(catalog(), EngineProfile::Basic, 2);
        engine.register("all", BaselineStatement::Query(QueryPlan::scan("ITEM")));
        engine.shutdown();
        assert!(matches!(
            engine.execute("all", &[]),
            Err(Error::EngineShutdown)
        ));
    }

    #[test]
    fn basic_profile_does_more_work_than_tuned() {
        // Not a timing assertion (flaky); verify the factor is applied by
        // checking both produce identical results while Basic repeats work.
        let c = catalog();
        let basic = ClassicEngine::start(Arc::clone(&c), EngineProfile::Basic, 2);
        let tuned = ClassicEngine::start(c, EngineProfile::Tuned, 2);
        for e in [&basic, &tuned] {
            e.register(
                "bySubject",
                BaselineStatement::Query(QueryPlan::scan_where(
                    "ITEM",
                    Expr::col(1).eq(Expr::param(0)),
                )),
            );
        }
        let a = basic
            .execute_sync("bySubject", &[Value::text("A")])
            .unwrap();
        let b = tuned
            .execute_sync("bySubject", &[Value::text("A")])
            .unwrap();
        assert_eq!(a.len(), b.len());
    }
}

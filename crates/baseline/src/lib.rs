//! # shareddb-baseline
//!
//! Query-at-a-time baseline engines used as stand-ins for the two comparison
//! systems of the paper's evaluation (Section 5.2): **MySQL 5.1/InnoDB** and a
//! commercial **"SystemX"**. Neither system is available for a reproduction,
//! so this crate implements a classical Volcano-style executor over the *same*
//! storage layer SharedDB uses, with two tuning profiles:
//!
//! * [`Profile::Basic`] (MySQL-like) — correct but modest per-query constants
//!   and a hard ceiling on useful parallelism (~12 worker threads), matching
//!   the observation (Section 5.4, citing Salomie et al.) that "MySQL does not
//!   scale beyond twelve cores, independent of the workload".
//! * [`Profile::Tuned`] (SystemX-like) — the same executor with better
//!   constants (hash joins, index-aware access paths, no artificial cap),
//!   matching "SystemX wins because it is the more mature system and carries
//!   out the same work more efficiently".
//!
//! The defining property of both baselines is the *query-at-a-time* model:
//! every query is planned and executed in isolation, so total work grows
//! linearly with the number of concurrent queries — exactly the behaviour the
//! paper contrasts with SharedDB's bounded, shared computation.
//!
//! Modules:
//! * [`exec`] — the per-query Volcano-style plan and executor.
//! * [`engine`] — the multi-threaded query-at-a-time engine with profiles.

pub mod engine;
pub mod exec;

pub use engine::{BaselineStatement, ClassicEngine, EngineProfile};
pub use exec::{QueryPlan, QueryResult};

//! A classical per-query executor (Volcano-style, but materialising batches
//! between operators for simplicity).
//!
//! Each query is described by a small [`QueryPlan`] tree and executed in
//! isolation against a snapshot of the shared storage layer. This is the
//! "query-at-a-time" model the paper contrasts with SharedDB's shared
//! execution: predicates are aggressively pushed down per query, each join
//! only sees the tuples of its own query, and nothing is shared between
//! concurrent queries.

use shareddb_common::agg::AggregateFunction;
use shareddb_common::sort::compare_tuples;
use shareddb_common::SortKey;
use shareddb_common::{Error, Expr, Result, Tuple, Value};
use shareddb_storage::mvcc::Snapshot;
use shareddb_storage::{Catalog, UpdateOp};
use std::collections::HashMap;
use std::ops::Bound;

/// A per-query execution plan.
#[derive(Debug, Clone)]
pub enum QueryPlan {
    /// Full table scan with an optional pushed-down predicate.
    Scan {
        /// Table name.
        table: String,
        /// Selection predicate (may contain parameters).
        predicate: Option<Expr>,
    },
    /// Index (or primary-key) look-up.
    IndexLookup {
        /// Table name.
        table: String,
        /// Indexed column.
        column: usize,
        /// Key expression (parameter or literal).
        key: Expr,
        /// Residual predicate on fetched rows.
        residual: Option<Expr>,
    },
    /// Index range scan.
    IndexRange {
        /// Table name.
        table: String,
        /// Indexed column.
        column: usize,
        /// Lower bound expression and inclusive flag.
        low: Option<(Expr, bool)>,
        /// Upper bound expression and inclusive flag.
        high: Option<(Expr, bool)>,
        /// Residual predicate on fetched rows.
        residual: Option<Expr>,
    },
    /// Filter over an input.
    Filter {
        /// Input plan.
        input: Box<QueryPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// In-memory hash join.
    HashJoin {
        /// Build side.
        build: Box<QueryPlan>,
        /// Probe side.
        probe: Box<QueryPlan>,
        /// Join column in the build output.
        build_key: usize,
        /// Join column in the probe output.
        probe_key: usize,
    },
    /// Nested-loops join probing the inner table through an index for every
    /// outer row (the classical OLTP join).
    IndexNlJoin {
        /// Outer input.
        outer: Box<QueryPlan>,
        /// Inner table.
        table: String,
        /// Join column in the outer output.
        outer_key: usize,
        /// Indexed column of the inner table.
        inner_column: usize,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<QueryPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Group-by with aggregates.
    GroupBy {
        /// Input plan.
        input: Box<QueryPlan>,
        /// Grouping columns.
        group_columns: Vec<usize>,
        /// `(function, input column)` aggregates.
        aggregates: Vec<(AggregateFunction, usize)>,
        /// Optional HAVING predicate over the output row.
        having: Option<Expr>,
    },
    /// Duplicate elimination over the whole row.
    Distinct {
        /// Input plan.
        input: Box<QueryPlan>,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<QueryPlan>,
        /// Retained columns.
        columns: Vec<usize>,
    },
    /// Row limit.
    Limit {
        /// Input plan.
        input: Box<QueryPlan>,
        /// Maximum number of rows.
        limit: usize,
    },
}

/// Result of one baseline query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Result rows.
    pub rows: Vec<Tuple>,
}

impl QueryPlan {
    /// Convenience constructor for a full scan.
    pub fn scan(table: &str) -> Self {
        QueryPlan::Scan {
            table: table.to_string(),
            predicate: None,
        }
    }

    /// Convenience constructor for a scan with a predicate.
    pub fn scan_where(table: &str, predicate: Expr) -> Self {
        QueryPlan::Scan {
            table: table.to_string(),
            predicate: Some(predicate),
        }
    }

    /// Wraps the plan in a sort.
    pub fn sorted(self, keys: Vec<SortKey>) -> Self {
        QueryPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Wraps the plan in a limit.
    pub fn limited(self, limit: usize) -> Self {
        QueryPlan::Limit {
            input: Box::new(self),
            limit,
        }
    }

    /// Wraps the plan in a projection.
    pub fn projected(self, columns: Vec<usize>) -> Self {
        QueryPlan::Project {
            input: Box::new(self),
            columns,
        }
    }
}

/// Executes one query plan against a snapshot with the given parameters.
pub fn execute_plan(
    catalog: &Catalog,
    plan: &QueryPlan,
    params: &[Value],
    snapshot: Snapshot,
) -> Result<QueryResult> {
    Ok(QueryResult {
        rows: exec(catalog, plan, params, snapshot)?,
    })
}

/// Applies one parameterised update in a single-statement transaction.
pub fn execute_update(
    catalog: &Catalog,
    table: &str,
    op_template: &UpdateOp,
    params: &[Value],
) -> Result<usize> {
    let bound = bind_update_op(op_template, params)?;
    let results = catalog.apply_batch(&[(table.to_string(), bound)])?;
    Ok(results.first().map(|r| r.rows_affected).unwrap_or(0))
}

/// Binds the parameters of an update operation.
pub fn bind_update_op(op: &UpdateOp, params: &[Value]) -> Result<UpdateOp> {
    Ok(match op {
        UpdateOp::Insert { values } => UpdateOp::Insert {
            values: values.clone(),
        },
        UpdateOp::Update {
            assignments,
            predicate,
        } => UpdateOp::Update {
            assignments: assignments
                .iter()
                .map(|(c, e)| Ok((*c, e.bind(params)?)))
                .collect::<Result<_>>()?,
            predicate: predicate.bind(params)?,
        },
        UpdateOp::Delete { predicate } => UpdateOp::Delete {
            predicate: predicate.bind(params)?,
        },
    })
}

fn exec(
    catalog: &Catalog,
    plan: &QueryPlan,
    params: &[Value],
    snapshot: Snapshot,
) -> Result<Vec<Tuple>> {
    match plan {
        QueryPlan::Scan { table, predicate } => {
            let handle = catalog.table(table)?;
            let table = handle.read();
            let predicate = predicate.as_ref().map(|p| p.bind(params)).transpose()?;
            let mut out = Vec::new();
            for (_, row) in table.scan(snapshot) {
                if let Some(p) = &predicate {
                    if !p.eval_predicate(row)? {
                        continue;
                    }
                }
                out.push(row.clone());
            }
            Ok(out)
        }
        QueryPlan::IndexLookup {
            table,
            column,
            key,
            residual,
        } => {
            let handle = catalog.table(table)?;
            let table = handle.read();
            let key = key.bind(params)?.eval(&Tuple::empty())?;
            let residual = residual.as_ref().map(|p| p.bind(params)).transpose()?;
            let rows: Vec<Tuple> = if table.has_index_on(*column) {
                table
                    .index_lookup(*column, &key, snapshot)
                    .into_iter()
                    .map(|(_, r)| r.clone())
                    .collect()
            } else if table.primary_key() == [*column] {
                table
                    .lookup_pk(std::slice::from_ref(&key), snapshot)
                    .map(|(_, r)| vec![r.clone()])
                    .unwrap_or_default()
            } else {
                table
                    .scan(snapshot)
                    .filter(|(_, r)| r[*column].sql_eq(&key))
                    .map(|(_, r)| r.clone())
                    .collect()
            };
            Ok(filter_rows(rows, &residual)?)
        }
        QueryPlan::IndexRange {
            table,
            column,
            low,
            high,
            residual,
        } => {
            let handle = catalog.table(table)?;
            let table = handle.read();
            let eval_bound = |b: &Option<(Expr, bool)>| -> Result<Bound<Value>> {
                Ok(match b {
                    None => Bound::Unbounded,
                    Some((e, inclusive)) => {
                        let v = e.bind(params)?.eval(&Tuple::empty())?;
                        if *inclusive {
                            Bound::Included(v)
                        } else {
                            Bound::Excluded(v)
                        }
                    }
                })
            };
            let low = eval_bound(low)?;
            let high = eval_bound(high)?;
            let residual = residual.as_ref().map(|p| p.bind(params)).transpose()?;
            let rows: Vec<Tuple> = if table.has_index_on(*column) {
                table
                    .index_range(*column, as_ref_bound(&low), as_ref_bound(&high), snapshot)
                    .into_iter()
                    .map(|(_, r)| r.clone())
                    .collect()
            } else {
                table
                    .scan(snapshot)
                    .filter(|(_, r)| bound_contains(&low, &high, &r[*column]))
                    .map(|(_, r)| r.clone())
                    .collect()
            };
            Ok(filter_rows(rows, &residual)?)
        }
        QueryPlan::Filter { input, predicate } => {
            let rows = exec(catalog, input, params, snapshot)?;
            let predicate = predicate.bind(params)?;
            rows.into_iter()
                .filter_map(|r| match predicate.eval_predicate(&r) {
                    Ok(true) => Some(Ok(r)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        }
        QueryPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            let build_rows = exec(catalog, build, params, snapshot)?;
            let probe_rows = exec(catalog, probe, params, snapshot)?;
            let mut table: HashMap<Value, Vec<&Tuple>> = HashMap::new();
            for row in &build_rows {
                let key = row[*build_key].clone();
                if !key.is_null() {
                    table.entry(key).or_default().push(row);
                }
            }
            let mut out = Vec::new();
            for probe_row in &probe_rows {
                let key = &probe_row[*probe_key];
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(key) {
                    for build_row in matches {
                        out.push(build_row.concat(probe_row));
                    }
                }
            }
            Ok(out)
        }
        QueryPlan::IndexNlJoin {
            outer,
            table,
            outer_key,
            inner_column,
        } => {
            let outer_rows = exec(catalog, outer, params, snapshot)?;
            let handle = catalog.table(table)?;
            let inner = handle.read();
            let mut out = Vec::new();
            for outer_row in &outer_rows {
                let key = &outer_row[*outer_key];
                if key.is_null() {
                    continue;
                }
                let matches: Vec<Tuple> = if inner.has_index_on(*inner_column) {
                    inner
                        .index_lookup(*inner_column, key, snapshot)
                        .into_iter()
                        .map(|(_, r)| r.clone())
                        .collect()
                } else if inner.primary_key() == [*inner_column] {
                    inner
                        .lookup_pk(std::slice::from_ref(key), snapshot)
                        .map(|(_, r)| vec![r.clone()])
                        .unwrap_or_default()
                } else {
                    inner
                        .scan(snapshot)
                        .filter(|(_, r)| r[*inner_column].sql_eq(key))
                        .map(|(_, r)| r.clone())
                        .collect()
                };
                for inner_row in matches {
                    out.push(outer_row.concat(&inner_row));
                }
            }
            Ok(out)
        }
        QueryPlan::Sort { input, keys } => {
            let mut rows = exec(catalog, input, params, snapshot)?;
            rows.sort_by(|a, b| compare_tuples(a, b, keys));
            Ok(rows)
        }
        QueryPlan::GroupBy {
            input,
            group_columns,
            aggregates,
            having,
        } => {
            let rows = exec(catalog, input, params, snapshot)?;
            let having = having.as_ref().map(|p| p.bind(params)).transpose()?;
            let mut groups: HashMap<Vec<Value>, Vec<shareddb_common::agg::Accumulator>> =
                HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for row in &rows {
                let key: Vec<Value> = group_columns.iter().map(|&c| row[c].clone()).collect();
                let accs = match groups.get_mut(&key) {
                    Some(accs) => accs,
                    None => {
                        order.push(key.clone());
                        groups.entry(key.clone()).or_insert_with(|| {
                            aggregates.iter().map(|(f, _)| f.accumulator()).collect()
                        })
                    }
                };
                for (acc, (_, col)) in accs.iter_mut().zip(aggregates) {
                    acc.update(&row[*col])?;
                }
            }
            let mut out = Vec::new();
            for key in order {
                let accs = &groups[&key];
                let mut values = key.clone();
                values.extend(accs.iter().map(|a| a.finish()));
                let row = Tuple::new(values);
                if let Some(p) = &having {
                    if !p.eval_predicate(&row)? {
                        continue;
                    }
                }
                out.push(row);
            }
            Ok(out)
        }
        QueryPlan::Distinct { input } => {
            let rows = exec(catalog, input, params, snapshot)?;
            let mut seen = std::collections::HashSet::new();
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
        QueryPlan::Project { input, columns } => {
            let rows = exec(catalog, input, params, snapshot)?;
            Ok(rows.into_iter().map(|r| r.project(columns)).collect())
        }
        QueryPlan::Limit { input, limit } => {
            let mut rows = exec(catalog, input, params, snapshot)?;
            rows.truncate(*limit);
            Ok(rows)
        }
    }
}

fn filter_rows(rows: Vec<Tuple>, residual: &Option<Expr>) -> Result<Vec<Tuple>> {
    match residual {
        None => Ok(rows),
        Some(p) => rows
            .into_iter()
            .filter_map(|r| match p.eval_predicate(&r) {
                Ok(true) => Some(Ok(r)),
                Ok(false) => None,
                Err(e) => Some(Err(e)),
            })
            .collect(),
    }
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn bound_contains(low: &Bound<Value>, high: &Bound<Value>, v: &Value) -> bool {
    let low_ok = match low {
        Bound::Unbounded => true,
        Bound::Included(l) => v >= l,
        Bound::Excluded(l) => v > l,
    };
    let high_ok = match high {
        Bound::Unbounded => true,
        Bound::Included(h) => v <= h,
        Bound::Excluded(h) => v < h,
    };
    low_ok && high_ok
}

/// Binding of a missing parameter in an INSERT template: the baseline engine
/// materialises insert values at submission time, so templates with
/// parameters must be bound by the caller (see [`crate::engine`]).
pub fn bind_insert_values(values: &[Expr], params: &[Value]) -> Result<Tuple> {
    let empty = Tuple::empty();
    let bound: Vec<Value> = values
        .iter()
        .map(|e| e.bind(params)?.eval(&empty))
        .collect::<Result<_>>()?;
    if bound.is_empty() {
        return Err(Error::InvalidParameter("empty insert row".into()));
    }
    Ok(Tuple::new(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, DataType};
    use shareddb_storage::{IndexDef, TableDef};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table(
                TableDef::new("ITEM")
                    .column("I_ID", DataType::Int)
                    .column("I_SUBJECT", DataType::Text)
                    .column("I_COST", DataType::Float)
                    .primary_key(&["I_ID"]),
            )
            .unwrap();
        catalog
            .create_table(
                TableDef::new("ORDER_LINE")
                    .column("OL_ID", DataType::Int)
                    .column("OL_I_ID", DataType::Int)
                    .column("OL_QTY", DataType::Int)
                    .primary_key(&["OL_ID"]),
            )
            .unwrap();
        catalog
            .create_index(IndexDef {
                name: "ITEM_PK".into(),
                table: "ITEM".into(),
                column: "I_ID".into(),
            })
            .unwrap();
        catalog
            .bulk_load(
                "ITEM",
                (0..100i64)
                    .map(|i| {
                        tuple![
                            i,
                            if i % 4 == 0 { "HISTORY" } else { "FICTION" },
                            (i % 10) as f64
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        catalog
            .bulk_load(
                "ORDER_LINE",
                (0..300i64).map(|i| tuple![i, i % 100, i % 7]).collect(),
            )
            .unwrap();
        catalog
    }

    fn run(catalog: &Catalog, plan: &QueryPlan, params: &[Value]) -> Vec<Tuple> {
        execute_plan(catalog, plan, params, catalog.oracle().read_ts())
            .unwrap()
            .rows
    }

    #[test]
    fn scan_with_predicate() {
        let c = catalog();
        let plan = QueryPlan::scan_where("ITEM", Expr::col(1).eq(Expr::param(0)));
        let rows = run(&c, &plan, &[Value::text("HISTORY")]);
        assert_eq!(rows.len(), 25);
    }

    #[test]
    fn index_lookup_and_residual() {
        let c = catalog();
        let plan = QueryPlan::IndexLookup {
            table: "ITEM".into(),
            column: 0,
            key: Expr::param(0),
            residual: Some(Expr::col(2).gt(Expr::lit(100.0f64))),
        };
        assert_eq!(run(&c, &plan, &[Value::Int(42)]).len(), 0);
        let plan = QueryPlan::IndexLookup {
            table: "ITEM".into(),
            column: 0,
            key: Expr::param(0),
            residual: None,
        };
        let rows = run(&c, &plan, &[Value::Int(42)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(42));
    }

    #[test]
    fn index_range_scan() {
        let c = catalog();
        let plan = QueryPlan::IndexRange {
            table: "ITEM".into(),
            column: 0,
            low: Some((Expr::lit(10i64), true)),
            high: Some((Expr::lit(14i64), true)),
            residual: None,
        };
        assert_eq!(run(&c, &plan, &[]).len(), 5);
    }

    #[test]
    fn hash_join_and_nl_join_agree() {
        let c = catalog();
        let hash = QueryPlan::HashJoin {
            build: Box::new(QueryPlan::scan_where(
                "ITEM",
                Expr::col(1).eq(Expr::lit("HISTORY")),
            )),
            probe: Box::new(QueryPlan::scan("ORDER_LINE")),
            build_key: 0,
            probe_key: 1,
        };
        let nl = QueryPlan::IndexNlJoin {
            outer: Box::new(QueryPlan::Filter {
                input: Box::new(QueryPlan::scan("ORDER_LINE")),
                predicate: Expr::lit(true),
            }),
            table: "ITEM".into(),
            outer_key: 1,
            inner_column: 0,
        };
        let hash_rows = run(&c, &hash, &[]);
        let nl_rows = run(&c, &nl, &[]);
        // The NL join returns all 300 pairs; the hash join only HISTORY items.
        assert_eq!(nl_rows.len(), 300);
        assert_eq!(hash_rows.len(), 75);
    }

    #[test]
    fn group_by_sort_limit() {
        let c = catalog();
        let plan = QueryPlan::GroupBy {
            input: Box::new(QueryPlan::scan("ORDER_LINE")),
            group_columns: vec![1],
            aggregates: vec![(AggregateFunction::Sum, 2), (AggregateFunction::Count, 0)],
            having: Some(Expr::col(2).gt(Expr::lit(1i64))),
        }
        .sorted(vec![SortKey::desc(1)])
        .limited(5)
        .projected(vec![0, 1]);
        let rows = run(&c, &plan, &[]);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].len(), 2);
        // Sorted descending by the SUM column.
        let sums: Vec<i64> = rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = catalog();
        let plan = QueryPlan::Distinct {
            input: Box::new(QueryPlan::scan("ITEM").projected(vec![1])),
        };
        assert_eq!(run(&c, &plan, &[]).len(), 2);
    }

    #[test]
    fn update_execution() {
        let c = catalog();
        let affected = execute_update(
            &c,
            "ITEM",
            &UpdateOp::Delete {
                predicate: Expr::col(0).lt(Expr::param(0)),
            },
            &[Value::Int(10)],
        )
        .unwrap();
        assert_eq!(affected, 10);
        let rows = run(&c, &QueryPlan::scan("ITEM"), &[]);
        assert_eq!(rows.len(), 90);
    }

    #[test]
    fn bind_insert_values_evaluates_parameters() {
        let t = bind_insert_values(
            &[Expr::param(0), Expr::lit("x"), Expr::param(1)],
            &[Value::Int(1), Value::Float(2.0)],
        )
        .unwrap();
        assert_eq!(t, tuple![1i64, "x", 2.0f64]);
        assert!(bind_insert_values(&[Expr::param(3)], &[]).is_err());
        assert!(bind_insert_values(&[], &[]).is_err());
    }
}

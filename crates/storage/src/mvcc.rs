//! Multi-version concurrency control primitives.
//!
//! SharedDB favours optimistic / multi-version concurrency control because
//! "any kind of locking would result in unpredictable response times due to
//! lock contention and blocking" (Section 4.4). The storage layer provides
//! **snapshot isolation**: every batch of queries reads the snapshot that was
//! current when its cycle started; updates of the cycle are applied in arrival
//! order and become visible to the *next* cycle.

use shareddb_common::ids::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};

/// A read snapshot: all row versions with `begin <= ts < end` are visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot {
    /// The logical read timestamp.
    pub ts: Timestamp,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot { ts: Timestamp(0) }
    }
}

impl Snapshot {
    /// Creates a snapshot at the given timestamp.
    pub fn at(ts: Timestamp) -> Self {
        Snapshot { ts }
    }

    /// True when a version `[begin, end)` is visible in this snapshot.
    #[inline]
    pub fn sees(&self, begin: Timestamp, end: Timestamp) -> bool {
        begin <= self.ts && self.ts < end
    }
}

/// Timestamp value used for "still live" row versions.
pub const TS_INFINITY: Timestamp = Timestamp(u64::MAX);

/// Groups a cycle's queries by their effective read snapshot: queries whose
/// `pin` is `None` read `default`, pinned queries read their own version
/// set. Shared by the ClockScan and IndexProbe cycle loops so each group
/// still shares one pass; with no pinned queries (the common case) this is
/// a single group.
pub fn group_by_snapshot<Q>(
    queries: &[Q],
    default: Snapshot,
    pin: impl Fn(&Q) -> Option<Snapshot>,
) -> Vec<(Snapshot, Vec<&Q>)> {
    let mut groups: Vec<(Snapshot, Vec<&Q>)> = Vec::new();
    for q in queries {
        let effective = pin(q).unwrap_or(default);
        match groups.iter_mut().find(|(s, _)| *s == effective) {
            Some((_, members)) => members.push(q),
            None => groups.push((effective, vec![q])),
        }
    }
    groups
}

/// Monotonic logical-clock source shared by the storage layer and the engine.
///
/// * `read_ts()` returns the timestamp of the latest committed state; a batch
///   uses it as its snapshot.
/// * `next_commit_ts()` allocates a fresh commit timestamp for a batch of
///   updates; once the batch finished applying its updates the engine calls
///   `publish()` so that subsequent snapshots observe them.
#[derive(Debug)]
pub struct TimestampOracle {
    /// Latest committed (visible) timestamp.
    committed: AtomicU64,
    /// Next commit timestamp to hand out.
    next: AtomicU64,
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl TimestampOracle {
    /// Creates an oracle with committed timestamp 0 (bulk-loaded data uses
    /// timestamp 0 so it is visible to every snapshot).
    pub fn new() -> Self {
        TimestampOracle {
            committed: AtomicU64::new(0),
            next: AtomicU64::new(1),
        }
    }

    /// Timestamp of the latest committed state; use as a read snapshot.
    pub fn read_ts(&self) -> Snapshot {
        Snapshot::at(Timestamp(self.committed.load(Ordering::Acquire)))
    }

    /// Allocates a fresh commit timestamp (strictly increasing).
    pub fn next_commit_ts(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::AcqRel))
    }

    /// Restores the oracle after recovery: the committed watermark jumps to
    /// `ts` (the largest replayed commit timestamp) and subsequent
    /// [`TimestampOracle::next_commit_ts`] calls allocate strictly after it,
    /// so post-recovery commits order after everything the log replayed.
    pub fn restore(&self, ts: Timestamp) {
        self.publish(ts);
        let mut current = self.next.load(Ordering::Relaxed);
        while current < ts.0 + 1 {
            match self.next.compare_exchange_weak(
                current,
                ts.0 + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Publishes a commit timestamp: snapshots taken afterwards will see all
    /// versions written with timestamps `<= ts`.
    pub fn publish(&self, ts: Timestamp) {
        // Monotonic max update.
        let mut current = self.committed.load(Ordering::Relaxed);
        while current < ts.0 {
            match self.committed.compare_exchange_weak(
                current,
                ts.0,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_visibility_window() {
        let snap = Snapshot::at(Timestamp(5));
        assert!(snap.sees(Timestamp(0), TS_INFINITY));
        assert!(snap.sees(Timestamp(5), TS_INFINITY));
        assert!(!snap.sees(Timestamp(6), TS_INFINITY));
        assert!(!snap.sees(Timestamp(0), Timestamp(5))); // deleted at 5
        assert!(snap.sees(Timestamp(0), Timestamp(6)));
    }

    #[test]
    fn oracle_monotonic_commit_timestamps() {
        let oracle = TimestampOracle::new();
        let a = oracle.next_commit_ts();
        let b = oracle.next_commit_ts();
        assert!(b > a);
    }

    #[test]
    fn publish_makes_writes_visible() {
        let oracle = TimestampOracle::new();
        assert_eq!(oracle.read_ts(), Snapshot::at(Timestamp(0)));
        let ts = oracle.next_commit_ts();
        // Not yet visible.
        assert!(oracle.read_ts().ts < ts);
        oracle.publish(ts);
        assert_eq!(oracle.read_ts().ts, ts);
        // Publishing an older timestamp does not move the snapshot backwards.
        oracle.publish(Timestamp(0));
        assert_eq!(oracle.read_ts().ts, ts);
    }

    #[test]
    fn publish_is_thread_safe_max() {
        use std::sync::Arc;
        let oracle = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let ts = o.next_commit_ts();
                    o.publish(ts);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(oracle.read_ts().ts, Timestamp(4000));
    }

    #[test]
    fn restore_resumes_strictly_after_replayed_commits() {
        let oracle = TimestampOracle::new();
        oracle.restore(Timestamp(42));
        assert_eq!(oracle.read_ts().ts, Timestamp(42));
        assert!(oracle.next_commit_ts() > Timestamp(42));
        // Restoring backwards is a no-op.
        oracle.restore(Timestamp(3));
        assert_eq!(oracle.read_ts().ts, Timestamp(42));
        assert!(oracle.next_commit_ts() > Timestamp(43));
    }
}

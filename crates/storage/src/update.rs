//! Update operations.
//!
//! SharedDB batches updates together with queries: "updates are executed in
//! arrival order as part of the same scan that executes the queries"
//! (Section 4.4). An [`UpdateOp`] is the unit queued at a storage operator
//! (ClockScan or index probe) and applied at the beginning of its next cycle.

use shareddb_common::{Expr, Tuple};

/// A single data-modification operation against one table.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Insert a fully materialised row.
    Insert {
        /// The row to insert; must match the table schema.
        values: Tuple,
    },
    /// Update all rows matching `predicate`, applying the assignments.
    Update {
        /// `(column index, value expression)` pairs evaluated against the
        /// *old* row.
        assignments: Vec<(usize, Expr)>,
        /// Row filter (bound expression, no parameters).
        predicate: Expr,
    },
    /// Delete all rows matching `predicate`.
    Delete {
        /// Row filter (bound expression, no parameters).
        predicate: Expr,
    },
}

impl UpdateOp {
    /// Short human-readable tag used by logging and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateOp::Insert { .. } => "INSERT",
            UpdateOp::Update { .. } => "UPDATE",
            UpdateOp::Delete { .. } => "DELETE",
        }
    }
}

/// Outcome of applying one [`UpdateOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateResult {
    /// Number of rows inserted, modified or deleted.
    pub rows_affected: usize,
}

impl UpdateResult {
    /// Creates a result.
    pub fn new(rows_affected: usize) -> Self {
        UpdateResult { rows_affected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;

    #[test]
    fn kinds() {
        assert_eq!(
            UpdateOp::Insert {
                values: tuple![1i64]
            }
            .kind(),
            "INSERT"
        );
        assert_eq!(
            UpdateOp::Delete {
                predicate: Expr::lit(true)
            }
            .kind(),
            "DELETE"
        );
        assert_eq!(
            UpdateOp::Update {
                assignments: vec![],
                predicate: Expr::lit(true)
            }
            .kind(),
            "UPDATE"
        );
    }

    #[test]
    fn result_accessor() {
        assert_eq!(UpdateResult::new(3).rows_affected, 3);
        assert_eq!(UpdateResult::default().rows_affected, 0);
    }
}

//! The ClockScan shared table scan.
//!
//! ClockScan (Unterbrunner et al., "Predictable Performance for Unpredictable
//! Workloads", VLDB 2009 — reference [28] of the SharedDB paper) batches
//! queries *and* updates and processes a whole batch within a single pass over
//! the table. SharedDB uses it as its shared-scan access path (Section 4.4):
//!
//! * Queries that arrive while a cycle is running are queued and form the next
//!   cycle's batch — exactly the batching model of the rest of SharedDB.
//! * Query predicates are indexed (see [`crate::predicate_index`]) and the
//!   scan performs a *query-data join* between rows and queries.
//! * Updates are executed in arrival order as part of the same cycle, and all
//!   select queries of the cycle read one consistent snapshot.
//!
//! The scan produces tuples in the data-query model ([`QTuple`]): each emitted
//! row carries the set of queries that selected it.

use crate::mvcc::{Snapshot, TimestampOracle};
use crate::predicate_index::{IndexedQuery, PredicateIndex};
use crate::table::Table;
use crate::update::{UpdateOp, UpdateResult};
use parking_lot::{Mutex, RwLock};
use shareddb_common::{tuple_partition, Expr, QTuple, QueryId, Result, Schema, Tuple};
use std::collections::VecDeque;
use std::sync::Arc;

/// A segment-view cursor over the table: restricts one scan pass to the rows
/// of one stable hash segment (`tuple_partition(row, key_columns, of) ==
/// index`). The engine's intra-engine segment parallelism runs one pass per
/// segment concurrently; filtering here — *before* the predicate index
/// evaluates a row against the whole query batch — means each segment pass
/// pays the query-data join only for its own slice of the table, which is
/// what makes N segment passes over 1/N of the rows each add up to roughly
/// one unsegmented pass of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentView {
    /// Segment index in `0..of`.
    pub index: u32,
    /// Total number of segments.
    pub of: u32,
    /// Columns hashed to place a row (empty = whole tuple).
    pub key_columns: Vec<usize>,
}

impl SegmentView {
    /// True when `row` belongs to this segment.
    pub fn contains(&self, row: &Tuple) -> bool {
        tuple_partition(row, &self.key_columns, self.of) == self.index
    }
}

/// A query registered with a ClockScan operator for one cycle.
#[derive(Debug, Clone)]
pub struct ScanQuery {
    /// Id of the active query.
    pub query_id: QueryId,
    /// Bound selection predicate on the scanned table (use
    /// `Expr::lit(true)` for a full scan).
    pub predicate: Expr,
    /// Optional pinned read snapshot. `None` (the default) reads the cycle's
    /// own snapshot — the latest committed state after the cycle's updates.
    /// A pinned snapshot lets a caller that spreads one logical query over
    /// several scan cycles (e.g. the cluster fanout) give every part the same
    /// consistent view.
    pub snapshot: Option<Snapshot>,
}

impl ScanQuery {
    /// Creates a scan query.
    pub fn new(query_id: QueryId, predicate: Expr) -> Self {
        ScanQuery {
            query_id,
            predicate,
            snapshot: None,
        }
    }

    /// A full-table scan for the given query.
    pub fn full_scan(query_id: QueryId) -> Self {
        ScanQuery::new(query_id, Expr::lit(true))
    }

    /// Pins the query to a fixed read snapshot.
    pub fn at_snapshot(mut self, snapshot: Option<Snapshot>) -> Self {
        self.snapshot = snapshot;
        self
    }
}

/// Result of one ClockScan cycle.
#[derive(Debug, Default)]
pub struct ScanCycleResult {
    /// All rows selected by at least one query of the batch, annotated with
    /// the queries that selected them.
    pub tuples: Vec<QTuple>,
    /// Per-update results, in arrival order.
    pub update_results: Vec<UpdateResult>,
    /// The ids of the queries that were served by this cycle.
    pub served_queries: Vec<QueryId>,
    /// The snapshot the queries of this cycle read.
    pub snapshot: Snapshot,
}

/// The shared-scan operator for one table.
pub struct ClockScan {
    table: Arc<RwLock<Table>>,
    oracle: Arc<TimestampOracle>,
    pending_queries: Mutex<VecDeque<ScanQuery>>,
    pending_updates: Mutex<VecDeque<UpdateOp>>,
}

impl ClockScan {
    /// Creates a ClockScan operator over a table.
    pub fn new(table: Arc<RwLock<Table>>, oracle: Arc<TimestampOracle>) -> Self {
        ClockScan {
            table,
            oracle,
            pending_queries: Mutex::new(VecDeque::new()),
            pending_updates: Mutex::new(VecDeque::new()),
        }
    }

    /// Schema of the scanned table.
    pub fn schema(&self) -> Schema {
        self.table.read().schema().clone()
    }

    /// Queues a query for the next cycle.
    pub fn enqueue_query(&self, query: ScanQuery) {
        self.pending_queries.lock().push_back(query);
    }

    /// Queues an update for the next cycle.
    pub fn enqueue_update(&self, update: UpdateOp) {
        self.pending_updates.lock().push_back(update);
    }

    /// Number of queries waiting for the next cycle.
    pub fn pending_query_count(&self) -> usize {
        self.pending_queries.lock().len()
    }

    /// Number of updates waiting for the next cycle.
    pub fn pending_update_count(&self) -> usize {
        self.pending_updates.lock().len()
    }

    /// Runs one cycle: dequeues all pending queries and updates, applies the
    /// updates in arrival order, and evaluates all queries against one
    /// consistent snapshot that includes those updates.
    pub fn run_cycle(&self) -> Result<ScanCycleResult> {
        // Drain the queues; anything arriving from here on belongs to the
        // next cycle ("while one batch is processed, newly arriving queries
        // and updates are queued", Section 3.2).
        let queries: Vec<ScanQuery> = self.pending_queries.lock().drain(..).collect();
        let updates: Vec<UpdateOp> = self.pending_updates.lock().drain(..).collect();
        self.execute_batch(&queries, &updates)
    }

    /// Executes an explicit batch (used by the engine when it manages the
    /// queueing itself, and by tests).
    pub fn execute_batch(
        &self,
        queries: &[ScanQuery],
        updates: &[UpdateOp],
    ) -> Result<ScanCycleResult> {
        self.execute_batch_segmented(queries, updates, None)
    }

    /// Executes an explicit batch over one segment view of the table (`None`
    /// scans every row — identical to [`ClockScan::execute_batch`]). Updates
    /// are **never** segmented: they apply to the whole table exactly as in
    /// the unsegmented path, preserving the single-writer group-commit
    /// ordering; only the read pass is restricted to the view.
    pub fn execute_batch_segmented(
        &self,
        queries: &[ScanQuery],
        updates: &[UpdateOp],
        view: Option<&SegmentView>,
    ) -> Result<ScanCycleResult> {
        let mut result = ScanCycleResult::default();

        // Phase 1: apply updates in arrival order under a write lock.
        if !updates.is_empty() {
            let commit_ts = self.oracle.next_commit_ts();
            let mut table = self.table.write();
            for update in updates {
                let applied = apply_update(&mut table, update, commit_ts)?;
                result.update_results.push(applied);
            }
            drop(table);
            self.oracle.publish(commit_ts);
        }

        // Phase 2: evaluate all queries against one consistent snapshot that
        // includes the updates applied above. Queries pinned to an explicit
        // snapshot read that version set instead; the pass groups queries by
        // effective snapshot so each group still shares one table scan
        // (with no pinned queries — the common case — this is exactly one
        // pass).
        let snapshot = self.oracle.read_ts();
        result.snapshot = snapshot;
        result.served_queries = queries.iter().map(|q| q.query_id).collect();
        if !queries.is_empty() {
            let groups = crate::mvcc::group_by_snapshot(queries, snapshot, |q| q.snapshot);
            let table = self.table.read();
            for (snapshot, members) in groups {
                let index = PredicateIndex::build(
                    members
                        .iter()
                        .map(|q| IndexedQuery {
                            query_id: q.query_id,
                            predicate: q.predicate.clone(),
                        })
                        .collect(),
                );
                for (_, row) in table.scan(snapshot) {
                    // The segment-view cursor: rows outside the view are
                    // skipped before the query-data join even looks at them.
                    if let Some(view) = view {
                        if !view.contains(row) {
                            continue;
                        }
                    }
                    let matches = index.matching_queries(row)?;
                    if !matches.is_empty() {
                        result.tuples.push(QTuple::new(row.clone(), matches));
                    }
                }
            }
        }
        Ok(result)
    }
}

/// Applies one update to a table at `commit_ts`. Row selection for UPDATE and
/// DELETE statements acts on the *live* (newest) versions — updates are
/// applied in arrival order against the latest state, so an update sees the
/// effect of all earlier updates of the same batch.
pub(crate) fn apply_update(
    table: &mut Table,
    update: &UpdateOp,
    commit_ts: shareddb_common::ids::Timestamp,
) -> Result<UpdateResult> {
    match update {
        UpdateOp::Insert { values } => {
            table.insert(values.clone(), commit_ts)?;
            Ok(UpdateResult::new(1))
        }
        UpdateOp::Update {
            assignments,
            predicate,
        } => {
            // Collect matching live rows first (borrow rules: scan immutably,
            // then mutate).
            let matching: Vec<(crate::table::RowId, Tuple)> = table
                .scan_live()
                .filter(|(_, row)| predicate.eval_predicate(row).unwrap_or(false))
                .map(|(rid, row)| (rid, row.clone()))
                .collect();
            let mut affected = 0;
            for (rid, old_row) in matching {
                let mut new_values = old_row.clone().into_values();
                for (col, expr) in assignments {
                    new_values[*col] = expr.eval(&old_row)?;
                }
                table.update_row(rid, Tuple::new(new_values), commit_ts)?;
                affected += 1;
            }
            Ok(UpdateResult::new(affected))
        }
        UpdateOp::Delete { predicate } => {
            let matching: Vec<crate::table::RowId> = table
                .scan_live()
                .filter(|(_, row)| predicate.eval_predicate(row).unwrap_or(false))
                .map(|(rid, _)| rid)
                .collect();
            let mut affected = 0;
            for rid in matching {
                table.delete_row(rid, commit_ts)?;
                affected += 1;
            }
            Ok(UpdateResult::new(affected))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::{tuple, Column, DataType, Value};

    fn setup() -> (Arc<RwLock<Table>>, Arc<TimestampOracle>, ClockScan) {
        let schema = Schema::new(vec![
            Column::new("ID", DataType::Int).with_qualifier("T"),
            Column::new("CATEGORY", DataType::Text).with_qualifier("T"),
            Column::new("PRICE", DataType::Float).with_qualifier("T"),
        ]);
        let table = Arc::new(RwLock::new(Table::new("T", schema, vec![0])));
        let oracle = Arc::new(TimestampOracle::new());
        {
            let mut t = table.write();
            for i in 0..100i64 {
                t.insert(
                    tuple![i, if i % 2 == 0 { "EVEN" } else { "ODD" }, (i % 10) as f64],
                    shareddb_common::ids::Timestamp(0),
                )
                .unwrap();
            }
        }
        let scan = ClockScan::new(Arc::clone(&table), Arc::clone(&oracle));
        (table, oracle, scan)
    }

    #[test]
    fn queries_are_batched_and_share_the_pass() {
        let (_, _, scan) = setup();
        scan.enqueue_query(ScanQuery::new(
            QueryId(1),
            Expr::col(1).eq(Expr::lit("EVEN")),
        ));
        scan.enqueue_query(ScanQuery::new(
            QueryId(2),
            Expr::col(2).gt_eq(Expr::lit(8.0f64)),
        ));
        assert_eq!(scan.pending_query_count(), 2);
        let result = scan.run_cycle().unwrap();
        assert_eq!(scan.pending_query_count(), 0);
        assert_eq!(result.served_queries.len(), 2);

        // 50 even rows, 20 rows with price >= 8 (10 of which are even).
        let q1_rows: usize = result
            .tuples
            .iter()
            .filter(|t| t.queries.contains(QueryId(1)))
            .count();
        let q2_rows: usize = result
            .tuples
            .iter()
            .filter(|t| t.queries.contains(QueryId(2)))
            .count();
        assert_eq!(q1_rows, 50);
        assert_eq!(q2_rows, 20);
        // Shared representation: total emitted tuples is the size of the
        // union, not the sum.
        assert_eq!(result.tuples.len(), 50 + 20 - 10);
    }

    #[test]
    fn updates_apply_in_arrival_order() {
        let (_, _, scan) = setup();
        // Set price to 100 for ID 1, then delete ID 1: the delete wins.
        scan.enqueue_update(UpdateOp::Update {
            assignments: vec![(2, Expr::lit(100.0f64))],
            predicate: Expr::col(0).eq(Expr::lit(1i64)),
        });
        scan.enqueue_update(UpdateOp::Delete {
            predicate: Expr::col(0).eq(Expr::lit(1i64)),
        });
        scan.enqueue_query(ScanQuery::new(QueryId(9), Expr::col(0).eq(Expr::lit(1i64))));
        let result = scan.run_cycle().unwrap();
        assert_eq!(result.update_results[0].rows_affected, 1);
        assert_eq!(result.update_results[1].rows_affected, 1);
        // The query of the same batch reads the post-update snapshot: row gone.
        assert!(result.tuples.is_empty());
    }

    #[test]
    fn inserts_visible_to_same_cycle_queries() {
        let (_, _, scan) = setup();
        scan.enqueue_update(UpdateOp::Insert {
            values: tuple![1000i64, "NEW", 1.0f64],
        });
        scan.enqueue_query(ScanQuery::new(
            QueryId(3),
            Expr::col(1).eq(Expr::lit("NEW")),
        ));
        let result = scan.run_cycle().unwrap();
        assert_eq!(result.tuples.len(), 1);
        assert_eq!(result.tuples[0].tuple[0], Value::Int(1000));
    }

    #[test]
    fn queries_arriving_later_form_next_batch() {
        let (_, _, scan) = setup();
        scan.enqueue_query(ScanQuery::full_scan(QueryId(1)));
        let first = scan.run_cycle().unwrap();
        assert_eq!(first.served_queries, vec![QueryId(1)]);
        // Nothing queued: an empty cycle serves no queries.
        let empty = scan.run_cycle().unwrap();
        assert!(empty.served_queries.is_empty());
        assert!(empty.tuples.is_empty());
        scan.enqueue_query(ScanQuery::full_scan(QueryId(2)));
        let second = scan.run_cycle().unwrap();
        assert_eq!(second.served_queries, vec![QueryId(2)]);
        assert_eq!(second.tuples.len(), 100);
    }

    #[test]
    fn hundreds_of_concurrent_queries_bounded_output() {
        let (_, _, scan) = setup();
        // 500 concurrent queries, each with a different predicate on PRICE.
        for i in 0..500u32 {
            scan.enqueue_query(ScanQuery::new(
                QueryId(i + 1),
                Expr::col(2).gt_eq(Expr::lit((i % 10) as f64)),
            ));
        }
        let result = scan.run_cycle().unwrap();
        // The number of emitted tuples is bounded by the table size (100),
        // independent of the number of queries — the core SharedDB claim.
        assert_eq!(result.tuples.len(), 100);
        // Every tuple is annotated with all queries that want it.
        let total_subscriptions: usize = result.tuples.iter().map(|t| t.queries.len()).sum();
        assert!(total_subscriptions >= 500);
    }

    /// A query pinned to an older snapshot reads that version set even when
    /// the cycle's own snapshot has moved on; unpinned queries of the same
    /// batch read the current state.
    #[test]
    fn pinned_snapshot_reads_older_version_set() {
        let (_, oracle, scan) = setup();
        let pinned = oracle.read_ts();
        scan.enqueue_update(UpdateOp::Delete {
            predicate: Expr::lit(true),
        });
        scan.run_cycle().unwrap();
        let res = scan
            .execute_batch(
                &[
                    ScanQuery::full_scan(QueryId(1)).at_snapshot(Some(pinned)),
                    ScanQuery::full_scan(QueryId(2)),
                ],
                &[],
            )
            .unwrap();
        let count = |q: u32| {
            res.tuples
                .iter()
                .filter(|t| t.queries.contains(QueryId(q)))
                .count()
        };
        assert_eq!(count(1), 100, "pinned query lost the old version set");
        assert_eq!(count(2), 0, "unpinned query saw resurrected rows");
    }

    /// Segment views split one scan pass into disjoint, complete slices of
    /// the table, and updates of a segmented batch still apply to the whole
    /// table (they are never segmented).
    #[test]
    fn segment_views_are_disjoint_and_complete() {
        let (_, _, scan) = setup();
        const OF: u32 = 4;
        let mut seen = std::collections::HashSet::new();
        for index in 0..OF {
            let view = SegmentView {
                index,
                of: OF,
                key_columns: vec![0],
            };
            let res = scan
                .execute_batch_segmented(&[ScanQuery::full_scan(QueryId(1))], &[], Some(&view))
                .unwrap();
            for t in &res.tuples {
                assert!(view.contains(&t.tuple));
                assert!(seen.insert(t.tuple[0].clone()), "row in two segments");
            }
        }
        assert_eq!(seen.len(), 100, "segments did not cover the table");
        // An update in a segmented batch is whole-table: deleting through a
        // one-segment view still removes every row.
        let res = scan
            .execute_batch_segmented(
                &[ScanQuery::full_scan(QueryId(2))],
                &[UpdateOp::Delete {
                    predicate: Expr::lit(true),
                }],
                Some(&SegmentView {
                    index: 0,
                    of: OF,
                    key_columns: vec![0],
                }),
            )
            .unwrap();
        assert_eq!(res.update_results[0].rows_affected, 100);
        assert!(res.tuples.is_empty());
    }

    #[test]
    fn snapshot_isolation_across_cycles() {
        let (table, oracle, scan) = setup();
        let before = oracle.read_ts();
        scan.enqueue_update(UpdateOp::Delete {
            predicate: Expr::lit(true),
        });
        let res = scan.run_cycle().unwrap();
        assert_eq!(res.update_results[0].rows_affected, 100);
        // The old snapshot still sees all 100 rows.
        assert_eq!(table.read().scan(before).count(), 100);
        // A new snapshot sees none.
        assert_eq!(table.read().scan(oracle.read_ts()).count(), 0);
    }
}

//! Predicate indexing: the "query-data join" of ClockScan.
//!
//! The key trick of the Crescando ClockScan algorithm (Section 4.4, [28]) is
//! to index the *query predicates* of a batch instead of the data, and to
//! treat the scan as a join between data tuples and queries. While a cycle
//! sweeps over the table, each row is probed against the predicate index to
//! find the queries that select it — instead of evaluating every query
//! predicate against every row.
//!
//! The index distinguishes three classes of per-query predicates:
//!
//! * **Equality-indexable** — the query has a conjunct `col = literal`; such
//!   queries are stored in a hash map keyed by `(col, literal)`.
//! * **Range-indexable** — the query has a conjunct `col <op> literal` with a
//!   comparison operator; such queries are grouped per column so a single
//!   value extraction serves all of them.
//! * **Residual** — everything else (LIKE-only predicates, disjunctions, ...);
//!   these are evaluated row by row, but still only once per row for the whole
//!   batch.
//!
//! In all three classes, after the candidate set is found the query's *full*
//! predicate is re-evaluated to confirm the match, so indexing is purely an
//! optimisation and never changes results.

use shareddb_common::{BinaryOp, Expr, QueryId, QuerySet, Result, Tuple, Value};
use std::collections::HashMap;

/// One query registered for a scan cycle.
#[derive(Debug, Clone)]
pub struct IndexedQuery {
    /// The id of the active query.
    pub query_id: QueryId,
    /// The full (bound, resolved) predicate of the query on this table.
    pub predicate: Expr,
}

/// An entry of the per-column range lists.
#[derive(Debug, Clone)]
struct RangeEntry {
    op: BinaryOp,
    literal: Value,
    query_idx: usize,
}

/// The predicate index for one scan cycle.
#[derive(Debug, Default)]
pub struct PredicateIndex {
    queries: Vec<IndexedQuery>,
    /// column -> (value -> indices into `queries` with an equality conjunct).
    equality: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// column -> range conjuncts on that column.
    ranges: HashMap<usize, Vec<RangeEntry>>,
    /// Indices of queries that could not be indexed at all.
    residual: Vec<usize>,
}

impl PredicateIndex {
    /// Builds the index for a batch of queries.
    pub fn build(queries: Vec<IndexedQuery>) -> Self {
        let mut index = PredicateIndex {
            queries,
            ..Default::default()
        };
        for i in 0..index.queries.len() {
            let predicate = index.queries[i].predicate.clone();
            let conjuncts = predicate.split_conjuncts();
            // Prefer an equality conjunct; fall back to a range conjunct.
            let mut eq: Option<(usize, Value)> = None;
            let mut range: Option<(usize, BinaryOp, Value)> = None;
            for c in &conjuncts {
                if let Some((col, op, lit)) = c.as_column_literal_cmp() {
                    match op {
                        BinaryOp::Eq => {
                            eq = Some((col, lit.clone()));
                            break;
                        }
                        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
                            if range.is_none() =>
                        {
                            range = Some((col, op, lit.clone()));
                        }
                        _ => {}
                    }
                }
            }
            if let Some((col, value)) = eq {
                index
                    .equality
                    .entry(col)
                    .or_default()
                    .entry(value)
                    .or_default()
                    .push(i);
            } else if let Some((col, op, literal)) = range {
                index.ranges.entry(col).or_default().push(RangeEntry {
                    op,
                    literal,
                    query_idx: i,
                });
            } else {
                index.residual.push(i);
            }
        }
        index
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of queries that could not use any index class (diagnostics).
    pub fn residual_count(&self) -> usize {
        self.residual.len()
    }

    /// Probes the index with one data tuple and returns the set of queries
    /// that select it.
    pub fn matching_queries(&self, tuple: &Tuple) -> Result<QuerySet> {
        // Matches are accumulated in a plain vector and turned into a sorted
        // set once at the end: a query belongs to exactly one index class, so
        // no duplicates can arise, and building the set in one pass keeps the
        // per-row cost O(k log k) even when thousands of queries match.
        let mut out: Vec<QueryId> = Vec::new();
        let verify = |idx: usize, out: &mut Vec<QueryId>| -> Result<()> {
            let q = &self.queries[idx];
            if q.predicate.eval_predicate(tuple)? {
                out.push(q.query_id);
            }
            Ok(())
        };
        // 1. Equality candidates: one hash probe per indexed column, using the
        //    row's value in that column as the key (the query-data join).
        for (col, by_value) in &self.equality {
            let Some(v) = tuple.get(*col) else { continue };
            if let Some(candidates) = by_value.get(v) {
                for &idx in candidates {
                    verify(idx, &mut out)?;
                }
            }
        }
        // 2. Range candidates.
        for (col, entries) in &self.ranges {
            let Some(v) = tuple.get(*col) else { continue };
            for entry in entries {
                let cmp = v.sql_cmp(&entry.literal);
                let hit = match (entry.op, cmp) {
                    (_, None) => false,
                    (BinaryOp::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                    (BinaryOp::LtEq, Some(o)) => o != std::cmp::Ordering::Greater,
                    (BinaryOp::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                    (BinaryOp::GtEq, Some(o)) => o != std::cmp::Ordering::Less,
                    _ => false,
                };
                if hit {
                    verify(entry.query_idx, &mut out)?;
                }
            }
        }
        // 3. Residual queries are evaluated directly.
        for &idx in &self.residual {
            verify(idx, &mut out)?;
        }
        Ok(QuerySet::from_ids(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;

    fn q(id: u32, predicate: Expr) -> IndexedQuery {
        IndexedQuery {
            query_id: QueryId(id),
            predicate,
        }
    }

    #[test]
    fn equality_indexed_queries() {
        // Two queries on CATEGORY (= col 1), one on ID (= col 0).
        let index = PredicateIndex::build(vec![
            q(1, Expr::col(1).eq(Expr::lit("FICTION"))),
            q(2, Expr::col(1).eq(Expr::lit("HISTORY"))),
            q(3, Expr::col(0).eq(Expr::lit(7i64))),
        ]);
        assert_eq!(index.residual_count(), 0);
        let t = tuple![7i64, "FICTION"];
        let m = index.matching_queries(&t).unwrap();
        assert!(m.contains(QueryId(1)));
        assert!(!m.contains(QueryId(2)));
        assert!(m.contains(QueryId(3)));
        let t = tuple![9i64, "COOKING"];
        assert!(index.matching_queries(&t).unwrap().is_empty());
    }

    #[test]
    fn equality_with_residual_conjunct_still_verified() {
        // col1 = 'X' AND col0 > 5: indexed on the equality, verified fully.
        let index = PredicateIndex::build(vec![q(
            1,
            Expr::col(1)
                .eq(Expr::lit("X"))
                .and(Expr::col(0).gt(Expr::lit(5i64))),
        )]);
        assert!(index
            .matching_queries(&tuple![9i64, "X"])
            .unwrap()
            .contains(QueryId(1)));
        assert!(index
            .matching_queries(&tuple![3i64, "X"])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn range_indexed_queries() {
        let index = PredicateIndex::build(vec![
            q(1, Expr::col(0).gt(Expr::lit(10i64))),
            q(2, Expr::col(0).lt_eq(Expr::lit(3i64))),
            q(3, Expr::col(2).gt_eq(Expr::lit(1.5f64))),
        ]);
        let m = index.matching_queries(&tuple![11i64, "x", 2.0f64]).unwrap();
        assert_eq!(m, [1u32, 3].into_iter().collect());
        let m = index.matching_queries(&tuple![2i64, "x", 0.0f64]).unwrap();
        assert_eq!(m, [2u32].into_iter().collect());
    }

    #[test]
    fn residual_queries_like() {
        let index = PredicateIndex::build(vec![
            q(1, Expr::col(1).like(Expr::lit("%DB%"))),
            q(2, Expr::col(1).like(Expr::lit("%XYZ%"))),
        ]);
        assert_eq!(index.residual_count(), 2);
        let m = index
            .matching_queries(&tuple![1i64, "SharedDB paper"])
            .unwrap();
        assert_eq!(m, [1u32].into_iter().collect());
    }

    #[test]
    fn disjunction_is_residual_but_correct() {
        let index = PredicateIndex::build(vec![q(
            5,
            Expr::col(0)
                .eq(Expr::lit(1i64))
                .or(Expr::col(0).eq(Expr::lit(2i64))),
        )]);
        assert_eq!(index.residual_count(), 1);
        assert!(index
            .matching_queries(&tuple![2i64])
            .unwrap()
            .contains(QueryId(5)));
        assert!(index.matching_queries(&tuple![3i64]).unwrap().is_empty());
    }

    #[test]
    fn many_queries_same_value_share_probe() {
        // 100 queries all asking for the same category: one probe finds all.
        let queries: Vec<_> = (0..100)
            .map(|i| q(i, Expr::col(0).eq(Expr::lit("C"))))
            .collect();
        let index = PredicateIndex::build(queries);
        let m = index.matching_queries(&tuple!["C"]).unwrap();
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn empty_index() {
        let index = PredicateIndex::build(vec![]);
        assert!(index.is_empty());
        assert!(index.matching_queries(&tuple![1i64]).unwrap().is_empty());
    }
}

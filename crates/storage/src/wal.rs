//! Write-ahead logging and checkpointing.
//!
//! Crescando "keeps all data in main memory, but it also supports full
//! recovery by checkpointing and logging all data to disk" (Section 4.4).
//! SharedDB group-commits one log record batch per heartbeat, which keeps the
//! logging cost per query constant regardless of batch size.
//!
//! The log is *logical*: it records the applied [`UpdateOp`]s per table in
//! commit order. Recovery replays the log on top of the latest checkpoint.
//!
//! ## On-disk format
//!
//! Every record is wrapped in a **frame** (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic          b"SDBW" (0x53 0x44 0x42 0x57)
//! 4       2     format version u16, currently 1
//! 6       4     payload length u32
//! 10      8     LSN            u64, strictly monotone within a file
//! 18      4     CRC-32         over bytes 4..18 and the payload
//! 22      n     payload        UTF-8 record encoding (see below)
//! ```
//!
//! The CRC is the reflected IEEE CRC-32 from [`shareddb_common::crc32`].
//! A reader scans frames sequentially and **truncates at the first torn or
//! corrupt frame** (short header, bad magic, unknown version, short payload,
//! CRC mismatch, undecodable payload, or non-monotone LSN): everything before
//! that offset is valid, everything after is discarded — recovery never
//! errors on a tail the crash tore. [`committed_ops`] then additionally drops
//! the last batch if its `COMMIT` marker is missing, so a partially-framed
//! group commit is never replayed.
//!
//! The byte-level specification (field tables, CRC coverage, payload
//! grammar, durability matrix) lives in `docs/WAL_FORMAT.md`; the constants
//! there are asserted against [`FRAME_MAGIC`] / [`WAL_FORMAT_VERSION`] by
//! `tests/recovery.rs`.

use crate::update::UpdateOp;
use parking_lot::Mutex;
use shareddb_common::crc32::Crc32;
use shareddb_common::ids::Timestamp;
use shareddb_common::metrics::{Counter, Histogram, HistogramSnapshot};
use shareddb_common::{BinaryOp, Error, Expr, Result, Tuple, UnaryOp, Value};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening every frame: `SDBW`.
pub const FRAME_MAGIC: [u8; 4] = *b"SDBW";
/// Current frame format version.
pub const WAL_FORMAT_VERSION: u16 = 1;
/// Fixed frame-header size in bytes (magic + version + length + LSN + CRC).
pub const FRAME_HEADER_LEN: usize = 22;
/// Upper bound on a single frame payload; larger declared lengths are treated
/// as corruption (a bit flip in the length field must not make the reader
/// attempt a multi-gigabyte allocation).
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Start of a committed batch with its commit timestamp.
    BeginBatch(Timestamp),
    /// One applied operation: inserts log the full row, updates and deletes
    /// log their (bound) predicates and assignments. All of them replay
    /// deterministically because batches apply serially in commit order.
    Apply {
        /// Target table name.
        table: String,
        /// The operation.
        op: UpdateOp,
    },
    /// End of a committed batch.
    CommitBatch(Timestamp),
    /// Checkpoint metadata: the pinned snapshot timestamp the checkpoint's
    /// rows were read at and the WAL LSN that was current when the
    /// checkpoint started. Recovery replays only committed batches with a
    /// commit timestamp greater than `ts`.
    CheckpointMeta {
        /// Snapshot timestamp of the checkpointed rows.
        ts: Timestamp,
        /// WAL LSN at checkpoint time.
        wal_lsn: u64,
    },
}

// ---------------------------------------------------------------------------
// Frame encoding / scanning
// ---------------------------------------------------------------------------

/// Encodes one record as a self-checking frame.
pub fn encode_frame(lsn: u64, record: &LogRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let payload = payload.as_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&WAL_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&out[4..18]);
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`FileSink::recover`] hands back: the valid `(lsn, record)` prefix,
/// the next LSN to append with, and the torn tail it truncated (if any).
pub type RecoveredLog = (Vec<(u64, LogRecord)>, u64, Option<TornTail>);

/// Where and why a frame scan stopped before the end of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first invalid frame.
    pub offset: u64,
    /// Human-readable reason (torn header, CRC mismatch, ...).
    pub reason: String,
}

/// Result of scanning a byte stream of frames.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded `(lsn, record)` pairs of the valid prefix, in file order.
    pub records: Vec<(u64, LogRecord)>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// `Some` when the scan stopped at a torn or corrupt frame.
    pub torn: Option<TornTail>,
}

impl WalScan {
    /// The records without their LSNs.
    pub fn into_records(self) -> Vec<LogRecord> {
        self.records.into_iter().map(|(_, r)| r).collect()
    }

    /// The next LSN to append with (one past the largest valid LSN).
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(1, |(lsn, _)| lsn + 1)
    }
}

/// Scans a byte slice of frames, stopping (never erroring) at the first torn
/// or corrupt frame. This is the torn-tail truncation primitive: recovery
/// keeps `bytes[..valid_len]` and discards the rest.
pub fn scan_frames(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut last_lsn = 0u64;
    let torn = loop {
        if offset == bytes.len() {
            break None;
        }
        let cut = |reason: &str| TornTail {
            offset: offset as u64,
            reason: reason.to_string(),
        };
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER_LEN {
            break Some(cut("torn frame header (short read)"));
        }
        if rest[0..4] != FRAME_MAGIC {
            break Some(cut("bad frame magic"));
        }
        let version = u16::from_le_bytes([rest[4], rest[5]]);
        if version != WAL_FORMAT_VERSION {
            break Some(cut("unknown frame format version"));
        }
        let len = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]);
        if len > MAX_FRAME_PAYLOAD {
            break Some(cut("implausible payload length"));
        }
        let len = len as usize;
        if rest.len() < FRAME_HEADER_LEN + len {
            break Some(cut("torn frame payload (short read)"));
        }
        let lsn = u64::from_le_bytes(rest[10..18].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(rest[18..22].try_into().unwrap());
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let mut crc = Crc32::new();
        crc.update(&rest[4..18]);
        crc.update(payload);
        if crc.finish() != stored_crc {
            break Some(cut("CRC mismatch"));
        }
        if lsn <= last_lsn {
            break Some(cut("non-monotone LSN"));
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => break Some(cut("payload is not UTF-8")),
        };
        let record = match decode_record(text) {
            Ok(r) => r,
            Err(_) => break Some(cut("undecodable record payload")),
        };
        last_lsn = lsn;
        records.push((lsn, record));
        offset += FRAME_HEADER_LEN + len;
    };
    WalScan {
        records,
        valid_len: offset as u64,
        torn,
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Destination of encoded log frames. Implementations must persist frames in
/// append order. `flush` hands buffered bytes to the OS; `sync` additionally
/// makes them durable (fsync) — the default implementation just flushes,
/// which is correct for sinks without a durability boundary (memory).
pub trait WalSink: Send {
    /// Appends one encoded frame.
    fn append(&mut self, frame: &[u8]) -> Result<()>;
    /// Pushes buffered bytes to the underlying destination.
    fn flush(&mut self) -> Result<()>;
    /// Makes all appended frames durable (fsync for file sinks).
    fn sync(&mut self) -> Result<()> {
        self.flush()
    }
}

/// A sink that keeps frames in memory. Used by tests and by benchmark
/// configurations where logging is functionally enabled but not a measured
/// bottleneck (both baselines in the paper were CPU-bound).
#[derive(Debug, Default)]
pub struct MemorySink {
    bytes: Vec<u8>,
    flushes: usize,
    syncs: usize,
}

impl MemorySink {
    /// Creates an empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes the records appended so far.
    pub fn records(&self) -> Vec<LogRecord> {
        scan_frames(&self.bytes).into_records()
    }

    /// The raw frame bytes appended so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of flush calls (used to test group commit).
    pub fn flush_count(&self) -> usize {
        self.flushes
    }

    /// Number of sync calls (used to test sync policies).
    pub fn sync_count(&self) -> usize {
        self.syncs
    }
}

impl WalSink for MemorySink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        self.bytes.extend_from_slice(frame);
        Ok(())
    }
    fn flush(&mut self) -> Result<()> {
        self.flushes += 1;
        Ok(())
    }
    fn sync(&mut self) -> Result<()> {
        self.flushes += 1;
        self.syncs += 1;
        Ok(())
    }
}

/// A sink that appends frames to a file, with real fsync on [`WalSink::sync`].
pub struct FileSink {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (or appends to) a log file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileSink {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads all valid records back from a log file. A torn or corrupt tail
    /// is silently dropped (the truncation rule); only real I/O failures
    /// (missing file, permission) error.
    pub fn read_all(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        let bytes = std::fs::read(path.as_ref())?;
        Ok(scan_frames(&bytes).into_records())
    }

    /// Recovery open: scans the file, **physically truncates** it at the
    /// first torn/corrupt frame so later appends continue from a clean tail,
    /// and returns the valid records plus the next LSN to append with.
    pub fn recover(path: impl AsRef<Path>) -> Result<RecoveredLog> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_frames(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        let next_lsn = scan.next_lsn();
        Ok((scan.records, next_lsn, scan.torn))
    }
}

impl WalSink for FileSink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        self.writer.write_all(frame)?;
        Ok(())
    }
    fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }
    fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }
}

/// Write-side fault injection for recovery tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Torn write: bytes at absolute sink offsets `>= n` are silently
    /// dropped, as if the process was killed mid-`write(2)`.
    pub drop_after: Option<u64>,
    /// Bit flip: the lowest bit of the byte at this absolute sink offset is
    /// inverted as it passes through (silent media corruption).
    pub flip_bit_at: Option<u64>,
}

/// A [`WalSink`] wrapper that injects write faults (partial write, bit flip)
/// into the frame stream before it reaches the inner sink. The read-side
/// fault — a short read — is modelled by [`FaultSink::short_read`], which
/// scans only a prefix of a log file.
pub struct FaultSink {
    inner: Box<dyn WalSink>,
    config: FaultConfig,
    written: u64,
}

impl FaultSink {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Box<dyn WalSink>, config: FaultConfig) -> FaultSink {
        FaultSink {
            inner,
            config,
            written: 0,
        }
    }

    /// Scans at most `limit` bytes of a log file — a short read of the tail.
    pub fn short_read(path: impl AsRef<Path>, limit: u64) -> Result<WalScan> {
        let mut bytes = std::fs::read(path.as_ref())?;
        bytes.truncate(limit as usize);
        Ok(scan_frames(&bytes))
    }
}

impl WalSink for FaultSink {
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        let mut frame = frame.to_vec();
        let start = self.written;
        self.written += frame.len() as u64;
        if let Some(flip) = self.config.flip_bit_at {
            if flip >= start && flip < start + frame.len() as u64 {
                frame[(flip - start) as usize] ^= 1;
            }
        }
        if let Some(cut) = self.config.drop_after {
            if start >= cut {
                return Ok(()); // everything past the tear vanishes
            }
            let keep = ((cut - start) as usize).min(frame.len());
            frame.truncate(keep);
        }
        self.inner.append(&frame)
    }
    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

// ---------------------------------------------------------------------------
// The WAL
// ---------------------------------------------------------------------------

/// When group commits are made durable (fsync'd). See the durability matrix
/// in `docs/WAL_FORMAT.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync before every group commit acknowledges: an acknowledged write
    /// survives `kill -9` *and* power loss.
    Always,
    /// Write + flush to the OS per batch, no fsync: acknowledged writes
    /// survive a process crash (`kill -9`) but the tail may be lost on
    /// kernel panic or power loss.
    EveryBatch,
    /// Like `EveryBatch`, plus an fsync at most once per interval: bounds
    /// power-loss exposure to the interval without paying an fsync per
    /// heartbeat.
    Interval {
        /// Maximum milliseconds between fsyncs.
        ms: u64,
    },
}

/// WAL configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Group-commit durability policy.
    pub sync_policy: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync_policy: SyncPolicy::EveryBatch,
        }
    }
}

impl SyncPolicy {
    /// Parses the operator-facing spelling used by env knobs and the bench
    /// harnesses: `always`, `everybatch` / `every-batch`, or `interval:MS`.
    pub fn parse(s: &str) -> Result<SyncPolicy> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "always" => Ok(SyncPolicy::Always),
            "everybatch" | "every-batch" | "every_batch" => Ok(SyncPolicy::EveryBatch),
            _ => {
                if let Some(ms) = s.strip_prefix("interval:") {
                    let ms = ms
                        .parse()
                        .map_err(|_| Error::InvalidParameter(format!("bad sync interval: {s}")))?;
                    return Ok(SyncPolicy::Interval { ms });
                }
                Err(Error::InvalidParameter(format!("unknown sync policy: {s}")))
            }
        }
    }
}

/// Point-in-time view of the WAL's counters and histograms, rendered at
/// `/metrics` as `shareddb_wal_*`.
#[derive(Debug, Clone)]
pub struct WalStatsSnapshot {
    /// fsync latency distribution (microseconds).
    pub fsync_us: HistogramSnapshot,
    /// Encoded frame bytes appended.
    pub appended_bytes: u64,
    /// Operations per group commit (batch size distribution).
    pub group_commit_size: HistogramSnapshot,
    /// Group commits logged.
    pub batches: u64,
    /// fsyncs issued.
    pub syncs: u64,
    /// Last LSN handed out (0 = nothing logged yet).
    pub last_lsn: u64,
}

#[derive(Debug, Default)]
struct WalStats {
    fsync_us: Histogram,
    appended_bytes: Counter,
    group_commit_size: Histogram,
    batches: Counter,
    syncs: Counter,
}

struct WalInner {
    sink: Box<dyn WalSink>,
    next_lsn: u64,
    last_sync: Instant,
}

/// The write-ahead log: wraps a sink and provides batch-granular appends
/// (group commit per heartbeat) under a configurable fsync policy.
pub struct Wal {
    inner: Mutex<WalInner>,
    config: Mutex<WalConfig>,
    stats: WalStats,
}

impl Wal {
    /// Creates a WAL over the given sink with the default config.
    pub fn new(sink: Box<dyn WalSink>) -> Self {
        Wal::with_config(sink, WalConfig::default())
    }

    /// Creates a WAL over the given sink and config.
    pub fn with_config(sink: Box<dyn WalSink>, config: WalConfig) -> Self {
        Wal {
            inner: Mutex::new(WalInner {
                sink,
                next_lsn: 1,
                last_sync: Instant::now(),
            }),
            config: Mutex::new(config),
            stats: WalStats::default(),
        }
    }

    /// A WAL that discards nothing but keeps everything in memory.
    pub fn in_memory() -> Self {
        Wal::new(Box::new(MemorySink::new()))
    }

    /// The current configuration.
    pub fn config(&self) -> WalConfig {
        *self.config.lock()
    }

    /// Replaces the sync policy (takes effect from the next group commit).
    pub fn set_sync_policy(&self, policy: SyncPolicy) {
        self.config.lock().sync_policy = policy;
    }

    /// Replaces the sink and LSN counter — used by recovery to attach the
    /// truncated on-disk log tail after replaying it.
    pub fn install_sink(&self, sink: Box<dyn WalSink>, next_lsn: u64) {
        let mut inner = self.inner.lock();
        inner.sink = sink;
        inner.next_lsn = next_lsn;
    }

    /// Logs one committed batch: begin marker, all operations, commit marker,
    /// followed by one flush and — per [`SyncPolicy`] — one fsync (group
    /// commit). Returns only after the batch is as durable as the policy
    /// promises, so callers may acknowledge afterwards.
    pub fn log_batch(&self, ts: Timestamp, ops: &[(String, UpdateOp)]) -> Result<()> {
        let policy = self.config.lock().sync_policy;
        let mut inner = self.inner.lock();
        let mut bytes = 0u64;
        let mut append = |inner: &mut WalInner, record: &LogRecord| -> Result<()> {
            let lsn = inner.next_lsn;
            let frame = encode_frame(lsn, record);
            inner.sink.append(&frame)?;
            inner.next_lsn = lsn + 1;
            bytes += frame.len() as u64;
            Ok(())
        };
        append(&mut inner, &LogRecord::BeginBatch(ts))?;
        for (table, op) in ops {
            append(
                &mut inner,
                &LogRecord::Apply {
                    table: table.clone(),
                    op: op.clone(),
                },
            )?;
        }
        append(&mut inner, &LogRecord::CommitBatch(ts))?;
        inner.sink.flush()?;
        let need_sync = match policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryBatch => false,
            SyncPolicy::Interval { ms } => {
                inner.last_sync.elapsed() >= std::time::Duration::from_millis(ms)
            }
        };
        if need_sync {
            let started = Instant::now();
            inner.sink.sync()?;
            inner.last_sync = Instant::now();
            self.stats.fsync_us.record(started.elapsed());
            self.stats.syncs.inc();
        }
        self.stats.appended_bytes.add(bytes);
        self.stats.group_commit_size.record_us(ops.len() as u64);
        self.stats.batches.inc();
        Ok(())
    }

    /// Forces an fsync of everything appended so far (shutdown, checkpoint).
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let started = Instant::now();
        inner.sink.sync()?;
        inner.last_sync = Instant::now();
        self.stats.fsync_us.record(started.elapsed());
        self.stats.syncs.inc();
        Ok(())
    }

    /// Next LSN that would be assigned (1 = empty log).
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// Current counters and histograms.
    pub fn stats_snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            fsync_us: self.stats.fsync_us.snapshot(),
            appended_bytes: self.stats.appended_bytes.get(),
            group_commit_size: self.stats.group_commit_size.snapshot(),
            batches: self.stats.batches.get(),
            syncs: self.stats.syncs.get(),
            last_lsn: self.inner.lock().next_lsn - 1,
        }
    }

    /// Runs a closure against the underlying sink (test hook).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut dyn WalSink) -> R) -> R {
        let mut inner = self.inner.lock();
        f(inner.sink.as_mut())
    }
}

/// Extracts the committed operations of a record stream, dropping batches
/// without a commit marker (torn writes at the tail of the log) and
/// checkpoint metadata records.
pub fn committed_ops(records: &[LogRecord]) -> Vec<(Timestamp, Vec<(String, UpdateOp)>)> {
    let mut out = Vec::new();
    let mut current: Option<(Timestamp, Vec<(String, UpdateOp)>)> = None;
    for record in records {
        match record {
            LogRecord::BeginBatch(ts) => current = Some((*ts, Vec::new())),
            LogRecord::Apply { table, op } => {
                if let Some((_, ops)) = current.as_mut() {
                    ops.push((table.clone(), op.clone()));
                }
            }
            LogRecord::CommitBatch(ts) => {
                if let Some((begin_ts, ops)) = current.take() {
                    if begin_ts == *ts {
                        out.push((begin_ts, ops));
                    }
                }
            }
            LogRecord::CheckpointMeta { .. } => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Textual payload encoding
// ---------------------------------------------------------------------------

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('N'),
        Value::Int(i) => {
            let _ = write!(out, "I{i}");
        }
        Value::Float(f) => {
            let _ = write!(out, "F{}", f.to_bits());
        }
        Value::Bool(b) => {
            let _ = write!(out, "B{}", if *b { 1 } else { 0 });
        }
        Value::Date(d) => {
            let _ = write!(out, "D{d}");
        }
        Value::Text(s) => {
            // Length-prefixed to avoid any escaping concerns.
            let _ = write!(out, "T{}:{s}", s.len());
        }
    }
}

fn decode_value(s: &str) -> Result<(Value, &str)> {
    let bad = || Error::Recovery(format!("malformed value encoding: {s}"));
    let mut chars = s.char_indices();
    let (_, tag) = chars.next().ok_or_else(bad)?;
    let rest = &s[1..];
    match tag {
        'N' => Ok((Value::Null, rest)),
        'I' | 'D' | 'B' | 'F' => {
            let end = rest.find([',', ')', ';', ' ']).unwrap_or(rest.len());
            let (num, remainder) = rest.split_at(end);
            let v = match tag {
                'I' => Value::Int(num.parse().map_err(|_| bad())?),
                'D' => Value::Date(num.parse().map_err(|_| bad())?),
                'B' => Value::Bool(num == "1"),
                'F' => Value::Float(f64::from_bits(num.parse().map_err(|_| bad())?)),
                _ => unreachable!(),
            };
            Ok((v, remainder))
        }
        'T' => {
            let colon = rest.find(':').ok_or_else(bad)?;
            let len: usize = rest[..colon].parse().map_err(|_| bad())?;
            let start = colon + 1;
            if rest.len() < start + len || !rest.is_char_boundary(start + len) {
                return Err(bad());
            }
            let text = rest[start..start + len].to_string();
            Ok((Value::Text(text), &rest[start + len..]))
        }
        _ => Err(bad()),
    }
}

fn encode_tuple(t: &Tuple, out: &mut String) {
    out.push('(');
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(v, out);
    }
    out.push(')');
}

fn decode_tuple(s: &str) -> Result<(Tuple, &str)> {
    let bad = || Error::Recovery(format!("malformed tuple encoding: {s}"));
    let mut rest = s.strip_prefix('(').ok_or_else(bad)?;
    let mut values = Vec::new();
    loop {
        if let Some(r) = rest.strip_prefix(')') {
            return Ok((Tuple::new(values), r));
        }
        if !values.is_empty() {
            rest = rest.strip_prefix(',').ok_or_else(bad)?;
        }
        let (v, r) = decode_value(rest)?;
        values.push(v);
        rest = r;
    }
}

// --- expression codec: prefix form, every node self-delimiting -------------

fn binary_op_tag(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "EQ",
        BinaryOp::NotEq => "NE",
        BinaryOp::Lt => "LT",
        BinaryOp::LtEq => "LE",
        BinaryOp::Gt => "GT",
        BinaryOp::GtEq => "GE",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Add => "ADD",
        BinaryOp::Sub => "SUB",
        BinaryOp::Mul => "MUL",
        BinaryOp::Div => "DIV",
    }
}

fn binary_op_from_tag(tag: &str) -> Option<BinaryOp> {
    Some(match tag {
        "EQ" => BinaryOp::Eq,
        "NE" => BinaryOp::NotEq,
        "LT" => BinaryOp::Lt,
        "LE" => BinaryOp::LtEq,
        "GT" => BinaryOp::Gt,
        "GE" => BinaryOp::GtEq,
        "AND" => BinaryOp::And,
        "OR" => BinaryOp::Or,
        "ADD" => BinaryOp::Add,
        "SUB" => BinaryOp::Sub,
        "MUL" => BinaryOp::Mul,
        "DIV" => BinaryOp::Div,
        _ => return None,
    })
}

fn unary_op_tag(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Not => "NOT",
        UnaryOp::Neg => "NEG",
        UnaryOp::IsNull => "ISN",
        UnaryOp::IsNotNull => "INN",
    }
}

fn unary_op_from_tag(tag: &str) -> Option<UnaryOp> {
    Some(match tag {
        "NOT" => UnaryOp::Not,
        "NEG" => UnaryOp::Neg,
        "ISN" => UnaryOp::IsNull,
        "INN" => UnaryOp::IsNotNull,
        _ => return None,
    })
}

/// Encodes a (bound) expression in a self-delimiting prefix form; see
/// `docs/WAL_FORMAT.md` for the grammar. Inverse of [`decode_expr`].
fn encode_expr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Column(i) => {
            let _ = write!(out, "C{i};");
        }
        Expr::NamedColumn { qualifier, name } => {
            out.push('M');
            match qualifier {
                Some(q) => {
                    let _ = write!(out, "T{}:{q}", q.len());
                }
                None => out.push('N'),
            }
            let _ = write!(out, ";T{}:{name};", name.len());
        }
        Expr::Literal(v) => {
            out.push('V');
            encode_value(v, out);
            out.push(';');
        }
        Expr::Param(i) => {
            let _ = write!(out, "P{i};");
        }
        Expr::Binary { op, left, right } => {
            let _ = write!(out, "B{};", binary_op_tag(*op));
            encode_expr(left, out);
            encode_expr(right, out);
        }
        Expr::Unary { op, expr } => {
            let _ = write!(out, "U{};", unary_op_tag(*op));
            encode_expr(expr, out);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let _ = write!(out, "K{};", if *negated { 1 } else { 0 });
            encode_expr(expr, out);
            encode_expr(pattern, out);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let _ = write!(out, "I{},{};", if *negated { 1 } else { 0 }, list.len());
            encode_expr(expr, out);
            for item in list {
                encode_expr(item, out);
            }
        }
        Expr::Between { expr, low, high } => {
            out.push_str("W;");
            encode_expr(expr, out);
            encode_expr(low, out);
            encode_expr(high, out);
        }
    }
}

/// Decodes one expression from the head of `s`, returning the remainder.
fn decode_expr(s: &str) -> Result<(Expr, &str)> {
    let bad = || Error::Recovery(format!("malformed expr encoding: {s}"));
    let tag = s.chars().next().ok_or_else(bad)?;
    let rest = &s[1..];
    // Splits `rest` at the next ';', yielding the head token and the number
    // of bytes consumed including the separator.
    let split_head = |rest: &str| -> Result<(String, usize)> {
        let semi = rest.find(';').ok_or_else(bad)?;
        Ok((rest[..semi].to_string(), semi + 1))
    };
    match tag {
        'C' => {
            let (tok, used) = split_head(rest)?;
            Ok((Expr::Column(tok.parse().map_err(|_| bad())?), &rest[used..]))
        }
        'P' => {
            let (tok, used) = split_head(rest)?;
            Ok((Expr::Param(tok.parse().map_err(|_| bad())?), &rest[used..]))
        }
        'V' => {
            let (v, r) = decode_value(rest)?;
            let r = r.strip_prefix(';').ok_or_else(bad)?;
            Ok((Expr::Literal(v), r))
        }
        'M' => {
            let (qualifier, r) = match rest.chars().next() {
                Some('N') => (None, &rest[1..]),
                Some('T') => {
                    let (v, r) = decode_value(rest)?;
                    match v {
                        Value::Text(q) => (Some(q), r),
                        _ => return Err(bad()),
                    }
                }
                _ => return Err(bad()),
            };
            let r = r.strip_prefix(';').ok_or_else(bad)?;
            let (v, r) = decode_value(r)?;
            let name = match v {
                Value::Text(n) => n,
                _ => return Err(bad()),
            };
            let r = r.strip_prefix(';').ok_or_else(bad)?;
            Ok((Expr::NamedColumn { qualifier, name }, r))
        }
        'B' => {
            let (tok, used) = split_head(rest)?;
            let op = binary_op_from_tag(&tok).ok_or_else(bad)?;
            let (left, r) = decode_expr(&rest[used..])?;
            let (right, r) = decode_expr(r)?;
            Ok((
                Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                r,
            ))
        }
        'U' => {
            let (tok, used) = split_head(rest)?;
            let op = unary_op_from_tag(&tok).ok_or_else(bad)?;
            let (expr, r) = decode_expr(&rest[used..])?;
            Ok((
                Expr::Unary {
                    op,
                    expr: Box::new(expr),
                },
                r,
            ))
        }
        'K' => {
            let (tok, used) = split_head(rest)?;
            let negated = tok == "1";
            let (expr, r) = decode_expr(&rest[used..])?;
            let (pattern, r) = decode_expr(r)?;
            Ok((
                Expr::Like {
                    expr: Box::new(expr),
                    pattern: Box::new(pattern),
                    negated,
                },
                r,
            ))
        }
        'I' => {
            let (tok, used) = split_head(rest)?;
            let (neg, count) = tok.split_once(',').ok_or_else(bad)?;
            let negated = neg == "1";
            let count: usize = count.parse().map_err(|_| bad())?;
            let (expr, mut r) = decode_expr(&rest[used..])?;
            let mut list = Vec::with_capacity(count);
            for _ in 0..count {
                let (item, r2) = decode_expr(r)?;
                list.push(item);
                r = r2;
            }
            Ok((
                Expr::InList {
                    expr: Box::new(expr),
                    list,
                    negated,
                },
                r,
            ))
        }
        'W' => {
            let r = rest.strip_prefix(';').ok_or_else(bad)?;
            let (expr, r) = decode_expr(r)?;
            let (low, r) = decode_expr(r)?;
            let (high, r) = decode_expr(r)?;
            Ok((
                Expr::Between {
                    expr: Box::new(expr),
                    low: Box::new(low),
                    high: Box::new(high),
                },
                r,
            ))
        }
        _ => Err(bad()),
    }
}

/// Encodes one record's payload text. Inverse of [`decode_record`].
pub fn encode_record(record: &LogRecord) -> String {
    let mut out = String::new();
    match record {
        LogRecord::BeginBatch(ts) => {
            let _ = write!(out, "BEGIN {}", ts.0);
        }
        LogRecord::CommitBatch(ts) => {
            let _ = write!(out, "COMMIT {}", ts.0);
        }
        LogRecord::CheckpointMeta { ts, wal_lsn } => {
            let _ = write!(out, "CKPT {} {}", ts.0, wal_lsn);
        }
        LogRecord::Apply { table, op } => match op {
            UpdateOp::Insert { values } => {
                let _ = write!(out, "INSERT {table} ");
                encode_tuple(values, &mut out);
            }
            UpdateOp::Update {
                assignments,
                predicate,
            } => {
                let _ = write!(out, "UPDATE {table} {};", assignments.len());
                for (col, expr) in assignments {
                    let _ = write!(out, "{col};");
                    encode_expr(expr, &mut out);
                }
                encode_expr(predicate, &mut out);
            }
            UpdateOp::Delete { predicate } => {
                let _ = write!(out, "DELETE {table} ");
                encode_expr(predicate, &mut out);
            }
        },
    }
    out
}

/// Decodes one record payload.
pub fn decode_record(line: &str) -> Result<LogRecord> {
    let bad = || Error::Recovery(format!("malformed log record: {line}"));
    if let Some(ts) = line.strip_prefix("BEGIN ") {
        return Ok(LogRecord::BeginBatch(Timestamp(
            ts.trim().parse().map_err(|_| bad())?,
        )));
    }
    if let Some(ts) = line.strip_prefix("COMMIT ") {
        return Ok(LogRecord::CommitBatch(Timestamp(
            ts.trim().parse().map_err(|_| bad())?,
        )));
    }
    if let Some(rest) = line.strip_prefix("CKPT ") {
        let (ts, lsn) = rest.split_once(' ').ok_or_else(bad)?;
        return Ok(LogRecord::CheckpointMeta {
            ts: Timestamp(ts.parse().map_err(|_| bad())?),
            wal_lsn: lsn.trim().parse().map_err(|_| bad())?,
        });
    }
    if let Some(rest) = line.strip_prefix("INSERT ") {
        let (table, tuple_text) = rest.split_once(' ').ok_or_else(bad)?;
        let (values, trailing) = decode_tuple(tuple_text)?;
        if !trailing.is_empty() {
            return Err(bad());
        }
        return Ok(LogRecord::Apply {
            table: table.to_string(),
            op: UpdateOp::Insert { values },
        });
    }
    if let Some(rest) = line.strip_prefix("UPDATE ") {
        let (table, rest) = rest.split_once(' ').ok_or_else(bad)?;
        let (count, rest) = rest.split_once(';').ok_or_else(bad)?;
        let count: usize = count.parse().map_err(|_| bad())?;
        let mut assignments = Vec::with_capacity(count);
        let mut rest = rest;
        for _ in 0..count {
            let (col, r) = rest.split_once(';').ok_or_else(bad)?;
            let col: usize = col.parse().map_err(|_| bad())?;
            let (expr, r) = decode_expr(r)?;
            assignments.push((col, expr));
            rest = r;
        }
        let (predicate, trailing) = decode_expr(rest)?;
        if !trailing.is_empty() {
            return Err(bad());
        }
        return Ok(LogRecord::Apply {
            table: table.to_string(),
            op: UpdateOp::Update {
                assignments,
                predicate,
            },
        });
    }
    if let Some(rest) = line.strip_prefix("DELETE ") {
        let (table, rest) = rest.split_once(' ').ok_or_else(bad)?;
        let (predicate, trailing) = decode_expr(rest)?;
        if !trailing.is_empty() {
            return Err(bad());
        }
        return Ok(LogRecord::Apply {
            table: table.to_string(),
            op: UpdateOp::Delete { predicate },
        });
    }
    Err(bad())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareddb_common::tuple;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shareddb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn memory_sink_group_commit_flushes_once() {
        let wal = Wal::in_memory();
        wal.log_batch(
            Timestamp(3),
            &[
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![1i64, "x"],
                    },
                ),
                (
                    "ITEM".into(),
                    UpdateOp::Insert {
                        values: tuple![2i64, "y"],
                    },
                ),
            ],
        )
        .unwrap();
        let stats = wal.stats_snapshot();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.last_lsn, 4); // BEGIN + 2 ops + COMMIT
        assert!(stats.appended_bytes > 0);
        assert_eq!(stats.group_commit_size.count, 1);
    }

    #[test]
    fn sync_policy_always_fsyncs_per_batch() {
        let wal = Wal::with_config(
            Box::new(MemorySink::new()),
            WalConfig {
                sync_policy: SyncPolicy::Always,
            },
        );
        for i in 0..3i64 {
            wal.log_batch(
                Timestamp(i as u64 + 1),
                &[("T".into(), UpdateOp::Insert { values: tuple![i] })],
            )
            .unwrap();
        }
        assert_eq!(wal.stats_snapshot().syncs, 3);
        let wal = Wal::in_memory(); // EveryBatch default
        wal.log_batch(
            Timestamp(1),
            &[(
                "T".into(),
                UpdateOp::Insert {
                    values: tuple![1i64],
                },
            )],
        )
        .unwrap();
        assert_eq!(wal.stats_snapshot().syncs, 0);
    }

    #[test]
    fn sync_policy_parse() {
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(
            SyncPolicy::parse("every-batch").unwrap(),
            SyncPolicy::EveryBatch
        );
        assert_eq!(
            SyncPolicy::parse("interval:25").unwrap(),
            SyncPolicy::Interval { ms: 25 }
        );
        assert!(SyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn value_encoding_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Bool(true),
            Value::Date(15000),
            Value::text("hello, world"),
            Value::text("with)paren,and:colon; and space"),
            Value::text(""),
        ] {
            let mut s = String::new();
            encode_value(&v, &mut s);
            let (decoded, rest) = decode_value(&s).unwrap();
            assert!(rest.is_empty());
            // NaN != NaN under PartialEq for floats, compare via total order.
            assert_eq!(decoded.cmp(&v), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn tuple_encoding_roundtrip() {
        let t = tuple![1i64, "a,b)c", 2.5f64, Value::Null];
        let mut s = String::new();
        encode_tuple(&t, &mut s);
        let (decoded, rest) = decode_tuple(&s).unwrap();
        assert!(rest.is_empty());
        assert_eq!(decoded, t);
    }

    #[test]
    fn expr_encoding_roundtrip() {
        let exprs = vec![
            Expr::col(3),
            Expr::lit(42i64),
            Expr::lit("te;xt with spaces"),
            Expr::param(1),
            Expr::col(0).eq(Expr::lit(7i64)),
            Expr::col(1)
                .gt(Expr::lit(1.5f64))
                .and(Expr::col(2).lt_eq(Expr::lit(9i64)).or(Expr::col(3).not())),
            Expr::col(2).like(Expr::lit("%x_y%")),
            Expr::Like {
                expr: Box::new(Expr::col(1)),
                pattern: Box::new(Expr::lit("a%")),
                negated: true,
            },
            Expr::InList {
                expr: Box::new(Expr::col(0)),
                list: vec![Expr::lit(1i64), Expr::lit(2i64), Expr::lit(3i64)],
                negated: true,
            },
            Expr::Between {
                expr: Box::new(Expr::col(4)),
                low: Box::new(Expr::lit(-2i64)),
                high: Box::new(Expr::lit(-1i64)),
            },
            Expr::Unary {
                op: UnaryOp::IsNull,
                expr: Box::new(Expr::col(5)),
            },
            Expr::NamedColumn {
                qualifier: Some("ITEM".into()),
                name: "I_ID".into(),
            },
            Expr::NamedColumn {
                qualifier: None,
                name: "A".into(),
            },
            Expr::col(1).binary(BinaryOp::Add, Expr::col(2)).binary(
                BinaryOp::Mul,
                Expr::col(3).binary(BinaryOp::Sub, Expr::lit(1i64)),
            ),
        ];
        for e in exprs {
            let mut s = String::new();
            encode_expr(&e, &mut s);
            let (decoded, rest) = decode_expr(&s).unwrap_or_else(|err| panic!("{s}: {err}"));
            assert!(rest.is_empty(), "{s} left {rest}");
            assert_eq!(decoded, e, "{s}");
        }
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let records = vec![
            LogRecord::BeginBatch(Timestamp(17)),
            LogRecord::CommitBatch(Timestamp(17)),
            LogRecord::CheckpointMeta {
                ts: Timestamp(9),
                wal_lsn: 1234,
            },
            LogRecord::Apply {
                table: "ORDERS".into(),
                op: UpdateOp::Insert {
                    values: tuple![7i64, "2011-01-01", 99.5f64],
                },
            },
            LogRecord::Apply {
                table: "ITEM".into(),
                op: UpdateOp::Update {
                    assignments: vec![
                        (2, Expr::lit(9.0f64)),
                        (1, Expr::col(1).binary(BinaryOp::Add, Expr::lit(1i64))),
                    ],
                    predicate: Expr::col(0).eq(Expr::lit(1i64)).and(Expr::col(2).not()),
                },
            },
            LogRecord::Apply {
                table: "ITEM".into(),
                op: UpdateOp::Delete {
                    predicate: Expr::col(1).like(Expr::lit("obsolete%")),
                },
            },
        ];
        for rec in records {
            let encoded = encode_record(&rec);
            let decoded = decode_record(&encoded).unwrap_or_else(|e| panic!("{encoded}: {e}"));
            assert_eq!(decoded, rec, "{encoded}");
        }
        assert!(decode_record("GARBAGE").is_err());
        assert!(decode_record("INSERT T (I1) tail").is_err());
    }

    #[test]
    fn frame_roundtrip_and_scan() {
        let rec = LogRecord::Apply {
            table: "T".into(),
            op: UpdateOp::Insert {
                values: tuple![5i64, "row"],
            },
        };
        let mut bytes = encode_frame(1, &LogRecord::BeginBatch(Timestamp(1)));
        bytes.extend(encode_frame(2, &rec));
        bytes.extend(encode_frame(3, &LogRecord::CommitBatch(Timestamp(1))));
        let scan = scan_frames(&bytes);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[1], (2, rec));
        assert_eq!(scan.next_lsn(), 4);
    }

    #[test]
    fn scan_truncates_on_torn_tail_and_crc_corruption() {
        let mut bytes = encode_frame(1, &LogRecord::BeginBatch(Timestamp(1)));
        let first = bytes.len();
        bytes.extend(encode_frame(
            2,
            &LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![1i64, "hello world"],
                },
            },
        ));

        // Torn mid-record: cut the second frame short.
        let torn = &bytes[..first + 10];
        let scan = scan_frames(torn);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first as u64);
        let tail = scan.torn.unwrap();
        assert_eq!(tail.offset, first as u64);
        assert!(tail.reason.contains("torn"), "{}", tail.reason);

        // Bit flip in the second frame's payload: CRC catches it.
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 3] ^= 0x40;
        let scan = scan_frames(&flipped);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn.unwrap().reason, "CRC mismatch");

        // Bit flip in the length field: implausible length or CRC, never a
        // panic or huge allocation.
        let mut flipped = bytes.clone();
        flipped[first + 8] ^= 0xFF; // high byte of the payload length
        let scan = scan_frames(&flipped);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.is_some());

        // Garbage magic after a valid prefix.
        let mut garbage = bytes[..first].to_vec();
        garbage.extend_from_slice(b"not a frame at all........");
        let scan = scan_frames(&garbage);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn.unwrap().reason, "bad frame magic");
    }

    #[test]
    fn scan_rejects_non_monotone_lsn() {
        let mut bytes = encode_frame(5, &LogRecord::BeginBatch(Timestamp(1)));
        bytes.extend(encode_frame(5, &LogRecord::CommitBatch(Timestamp(1))));
        let scan = scan_frames(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn.unwrap().reason, "non-monotone LSN");
    }

    #[test]
    fn file_sink_roundtrip_and_recover() {
        let path = temp_path("roundtrip.wal");
        let wal = Wal::new(Box::new(FileSink::create(&path).unwrap()));
        wal.log_batch(
            Timestamp(1),
            &[(
                "T".into(),
                UpdateOp::Insert {
                    values: tuple![5i64, "row"],
                },
            )],
        )
        .unwrap();
        wal.sync().unwrap();
        let records = FileSink::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], LogRecord::BeginBatch(Timestamp(1)));
        let (records, next_lsn, torn) = FileSink::recover(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(next_lsn, 4);
        assert!(torn.is_none());
        // Recovering a missing file is an empty log, not an error.
        let (records, next_lsn, torn) = FileSink::recover(temp_path("missing.wal")).unwrap();
        assert!(records.is_empty());
        assert_eq!(next_lsn, 1);
        assert!(torn.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_truncates_torn_file_for_clean_appends() {
        let path = temp_path("torn-append.wal");
        {
            let wal = Wal::new(Box::new(FileSink::create(&path).unwrap()));
            wal.log_batch(
                Timestamp(1),
                &[(
                    "T".into(),
                    UpdateOp::Insert {
                        values: tuple![1i64],
                    },
                )],
            )
            .unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Tear the file mid-final-record.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);
        let (records, next_lsn, torn) = FileSink::recover(&path).unwrap();
        assert_eq!(records.len(), 2); // BEGIN + INSERT survive, COMMIT torn
        assert!(torn.is_some());
        // The file was physically truncated: appends resume cleanly.
        let wal = Wal::new(Box::new(FileSink::create(&path).unwrap()));
        wal.install_sink(Box::new(FileSink::create(&path).unwrap()), next_lsn);
        wal.log_batch(
            Timestamp(2),
            &[(
                "T".into(),
                UpdateOp::Insert {
                    values: tuple![2i64],
                },
            )],
        )
        .unwrap();
        wal.sync().unwrap();
        let records = FileSink::read_all(&path).unwrap();
        // Torn batch 1 has no COMMIT; batch 2 is complete.
        let committed = committed_ops(&records);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, Timestamp(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_sink_partial_write_and_bit_flip() {
        // Partial write: the tail past the cut never reaches the file.
        let path = temp_path("fault-partial.wal");
        {
            let inner = Box::new(FileSink::create(&path).unwrap());
            let mut sink = FaultSink::new(
                inner,
                FaultConfig {
                    drop_after: Some(40),
                    ..FaultConfig::default()
                },
            );
            for lsn in 1..=4u64 {
                sink.append(&encode_frame(lsn, &LogRecord::BeginBatch(Timestamp(lsn))))
                    .unwrap();
            }
            sink.sync().unwrap();
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 40);
        let scan = scan_frames(&std::fs::read(&path).unwrap());
        assert!(scan.torn.is_some());
        assert!(scan.records.len() < 4);

        // Bit flip: CRC detects, scan cuts at the flipped frame.
        let path2 = temp_path("fault-flip.wal");
        {
            let inner = Box::new(FileSink::create(&path2).unwrap());
            let frame1 = encode_frame(1, &LogRecord::BeginBatch(Timestamp(1)));
            let flip_at = frame1.len() as u64 + FRAME_HEADER_LEN as u64 + 1;
            let mut sink = FaultSink::new(
                inner,
                FaultConfig {
                    flip_bit_at: Some(flip_at),
                    ..FaultConfig::default()
                },
            );
            sink.append(&frame1).unwrap();
            sink.append(&encode_frame(2, &LogRecord::CommitBatch(Timestamp(1))))
                .unwrap();
            sink.sync().unwrap();
        }
        let scan = scan_frames(&std::fs::read(&path2).unwrap());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn.unwrap().reason, "CRC mismatch");

        // Short read: only a prefix of the file is visible.
        let scan = FaultSink::short_read(&path2, 10).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_some());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn committed_ops_drops_torn_tail() {
        let records = vec![
            LogRecord::BeginBatch(Timestamp(1)),
            LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![1i64],
                },
            },
            LogRecord::CommitBatch(Timestamp(1)),
            LogRecord::CheckpointMeta {
                ts: Timestamp(1),
                wal_lsn: 3,
            },
            LogRecord::BeginBatch(Timestamp(2)),
            LogRecord::Apply {
                table: "T".into(),
                op: UpdateOp::Insert {
                    values: tuple![2i64],
                },
            },
            // no commit for batch 2 (crash)
        ];
        let committed = committed_ops(&records);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, Timestamp(1));
        assert_eq!(committed[0].1.len(), 1);
    }
}
